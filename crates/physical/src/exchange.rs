//! Repartitioning (exchange) operators.
//!
//! The planner inserts exchanges to satisfy the distribution requirements
//! of the paper's skyline plans: `Single` realizes Spark's `AllTuples`
//! distribution (flat global skyline, sorts), `RoundRobin` re-balances,
//! `NullBitmap` is the §5.7 distribution that routes tuples with the same
//! NULL pattern in the skyline dimensions to the same executor, and
//! `Custom` plugs in a strategy from the partitioning subsystem
//! (`sparkline_exec::partitioner`): even, hash, angle-based, or grid with
//! dominated-cell pruning — selected by the planner from the session
//! configuration rather than hard-coded here.

use std::sync::Arc;

use sparkline_common::{Result, SchemaRef, SkylineSpec};
use sparkline_exec::{
    partition::{coalesce, flatten, hash_partition, split_evenly, total_rows},
    stream::breaker_streams,
    FaultSite, PartitionStream, Partitioner, TaskContext,
};
use sparkline_skyline::null_bitmap;

use crate::ExecutionPlan;

/// How the exchange redistributes rows.
#[derive(Debug, Clone)]
pub enum ExchangeMode {
    /// All rows into one partition (Spark's `AllTuples`).
    Single,
    /// Even redistribution over the executor count.
    RoundRobin,
    /// Partition by the null bitmap of the skyline dimensions (§5.7).
    NullBitmap(SkylineSpec),
    /// A pluggable strategy from the partitioning subsystem.
    Custom(Arc<dyn Partitioner>),
}

/// Repartitioning operator.
#[derive(Debug)]
pub struct ExchangeExec {
    mode: ExchangeMode,
    /// Planner-sample size behind an adaptively chosen `Custom` scheme
    /// (0 = statically configured); surfaced as the `sample_rows` metric.
    sample_rows: usize,
    input: Arc<dyn ExecutionPlan>,
}

impl ExchangeExec {
    /// Exchange with the given mode.
    pub fn new(mode: ExchangeMode, input: Arc<dyn ExecutionPlan>) -> Self {
        ExchangeExec {
            mode,
            sample_rows: 0,
            input,
        }
    }

    /// Convenience: gather everything onto one executor.
    pub fn single(input: Arc<dyn ExecutionPlan>) -> Self {
        ExchangeExec::new(ExchangeMode::Single, input)
    }

    /// Convenience: redistribute through a pluggable strategy.
    pub fn custom(partitioner: Arc<dyn Partitioner>, input: Arc<dyn ExecutionPlan>) -> Self {
        ExchangeExec::new(ExchangeMode::Custom(partitioner), input)
    }

    /// Record that an adaptive planner chose this exchange's strategy
    /// from a sample of `rows` rows (builder-style).
    pub fn with_sample_rows(mut self, rows: usize) -> Self {
        self.sample_rows = rows;
        self
    }
}

impl ExecutionPlan for ExchangeExec {
    fn name(&self) -> &'static str {
        "ExchangeExec"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        let mode = self.mode.clone();
        let sample_rows = self.sample_rows;
        let ctx2 = ctx.clone();
        let input_plan = Arc::clone(&self.input);
        let n = ctx.runtime.num_executors();
        // Every redistribution needs the full input (a gather is a stage
        // boundary even in Spark); the exchange is therefore a breaker
        // that drains the upstream pipelines in parallel — this is where
        // the local phases below an `AllTuples` gather actually run
        // concurrently — and re-emits the shuffled partitions.
        let n_outputs = match &mode {
            ExchangeMode::Single => 1,
            _ => n,
        };
        Ok(breaker_streams(self.schema(), ctx, n_outputs, move || {
            // A shuffle fault fails the whole stage (as in Spark, where a
            // lost map output fails the reduce task); recovery happens by
            // re-running this subtree through the consumer's retry path.
            ctx2.maybe_inject(FaultSite::Exchange, 0, 0)?;
            // Transient faults below the exchange are recovered here, at
            // the stage boundary: the failed upstream partition is
            // recomputed from the input plan's lineage while the sibling
            // partitions keep their drained results.
            let expected = inputs.len();
            let input = ctx2.drain_streams_retrying(inputs, |i| {
                crate::recreate_partition_stream(input_plan.as_ref(), &ctx2, expected, i)
            })?;
            ctx2.control.check()?;
            ctx2.metrics.rows_exchanged.fetch_add(
                total_rows(&input) as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            Ok(match &mode {
                ExchangeMode::Single => coalesce(input),
                ExchangeMode::RoundRobin => split_evenly(flatten(input), n),
                ExchangeMode::NullBitmap(spec) => {
                    hash_partition(input, n, |row| null_bitmap(row, spec))
                }
                ExchangeMode::Custom(partitioner) => {
                    // Surface the applied scheme and, for adaptive plans,
                    // the sample behind it (`EXPLAIN ANALYZE` reports
                    // both — even when the pre-filter is disabled).
                    ctx2.metrics.note_partitioning(partitioner.name());
                    ctx2.metrics.note_sample_rows(sample_rows as u64);
                    partitioner.repartition(input, n, &ctx2.metrics)
                }
            })
        }))
    }

    fn describe(&self) -> String {
        match &self.mode {
            ExchangeMode::Single => "ExchangeExec [AllTuples]".to_string(),
            ExchangeMode::RoundRobin => "ExchangeExec [RoundRobin]".to_string(),
            ExchangeMode::NullBitmap(spec) => {
                format!("ExchangeExec [NullBitmap on {} dims]", spec.dims.len())
            }
            ExchangeMode::Custom(partitioner) => {
                format!("ExchangeExec [{}]", partitioner.describe())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanExec;
    use sparkline_common::{DataType, Field, Row, Schema, SkylineDim, Value};
    use sparkline_exec::{AnglePartitioner, GridPartitioner};

    fn input(rows: Vec<Row>) -> Arc<dyn ExecutionPlan> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, true),
        ])
        .into_ref();
        Arc::new(ScanExec::new("t", Arc::new(rows), schema))
    }

    fn rows_with_nulls() -> Vec<Row> {
        (0..40)
            .map(|i| {
                let a = if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Int64(i)
                };
                let b = if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Int64(i)
                };
                Row::new(vec![a, b])
            })
            .collect()
    }

    #[test]
    fn single_gathers_everything() {
        let plan = ExchangeExec::single(input(rows_with_nulls()));
        let ctx = TaskContext::new(4);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 40);
        assert_eq!(
            ctx.metrics
                .rows_exchanged
                .load(std::sync::atomic::Ordering::Relaxed),
            40
        );
    }

    #[test]
    fn null_bitmap_groups_same_pattern() {
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let plan = ExchangeExec::new(
            ExchangeMode::NullBitmap(spec.clone()),
            input(rows_with_nulls()),
        );
        let ctx = TaskContext::new(3);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(total_rows(&parts), 40);
        // Every bitmap class must live in exactly one partition.
        for bitmap in 0u64..4 {
            let holders: Vec<usize> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|r| null_bitmap(r, &spec) == bitmap))
                .map(|(i, _)| i)
                .collect();
            assert!(holders.len() <= 1, "bitmap {bitmap} split: {holders:?}");
        }
    }

    #[test]
    fn custom_angle_exchange_partitions_by_trade_off() {
        // Points on two extreme trade-offs: low-a/high-b vs high-a/low-b
        // (both MIN dims) must land in different sectors.
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    Row::new(vec![Value::Int64(1), Value::Int64(100 + i)])
                } else {
                    Row::new(vec![Value::Int64(100 + i), Value::Int64(1)])
                }
            })
            .collect();
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let plan = ExchangeExec::custom(Arc::new(AnglePartitioner::new(spec)), input(rows));
        assert!(
            plan.describe().contains("AngleBased"),
            "{}",
            plan.describe()
        );
        let ctx = TaskContext::new(4);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(total_rows(&parts), 20);
        // Low-a points (steep angle) and low-b points (flat angle) are in
        // different partitions.
        let holding = |pred: &dyn Fn(&Row) -> bool| -> Vec<usize> {
            parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(pred))
                .map(|(i, _)| i)
                .collect()
        };
        let steep = holding(&|r| r.get(0) == &Value::Int64(1));
        let flat = holding(&|r| r.get(1) == &Value::Int64(1));
        assert!(
            steep.iter().all(|s| !flat.contains(s)),
            "{steep:?} vs {flat:?}"
        );
    }

    #[test]
    fn custom_grid_exchange_reports_pruning_metrics() {
        let mut rows: Vec<Row> = (0..10)
            .map(|i| Row::new(vec![Value::Int64(i % 2), Value::Int64(i % 3)]))
            .collect();
        rows.extend(
            (0..10).map(|i| Row::new(vec![Value::Int64(500 + i % 2), Value::Int64(500 + i % 3)])),
        );
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let plan = ExchangeExec::custom(Arc::new(GridPartitioner::new(spec, 4)), input(rows));
        assert!(plan.describe().contains("Grid"), "{}", plan.describe());
        let ctx = TaskContext::new(4);
        let parts = plan.execute(&ctx).unwrap();
        let snapshot = ctx.metrics.snapshot();
        assert!(snapshot.partitions_pruned >= 1, "{snapshot:?}");
        assert_eq!(total_rows(&parts) as u64 + snapshot.rows_pruned, 20);
    }

    #[test]
    fn round_robin_balances() {
        let plan = ExchangeExec::new(ExchangeMode::RoundRobin, input(rows_with_nulls()));
        let ctx = TaskContext::new(4);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.len() == 10));
    }
}
