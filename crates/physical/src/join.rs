//! Join operators: hash joins for equi-conditions and nested-loop joins
//! for everything else — in particular the `LeftAnti` nested-loop join
//! that executes the paper's *reference* plain-SQL skyline queries
//! (Listing 4). Its per-pair interpreted predicate evaluation and
//! quadratic scan are exactly why the reference algorithm scales poorly
//! in the evaluation (§6.4).

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use sparkline_common::{Result, Row, Schema, SchemaRef, Value};
use sparkline_exec::{
    partition::flatten, stream::LazyBuild, InFlightRows, MemoryReservation, PartitionStream,
    TaskContext,
};
use sparkline_plan::{Expr, JoinType};

use crate::ExecutionPlan;

/// Output schema of a join.
fn join_schema(left: &Schema, right: &Schema, join_type: JoinType) -> SchemaRef {
    match join_type {
        JoinType::LeftSemi | JoinType::LeftAnti => left.clone().into_ref(),
        JoinType::LeftOuter => {
            let right = Schema::new(
                right
                    .fields()
                    .iter()
                    .map(|f| f.with_nullable(true))
                    .collect(),
            );
            left.join(&right).into_ref()
        }
        _ => left.join(right).into_ref(),
    }
}

/// The shared hash-join build side: the buffered right rows, the key
/// index into them, and the accounting guards that keep the buffer
/// charged against the in-flight/memory gauges while probes run.
struct HashBuild {
    rows: Vec<Row>,
    table: HashMap<Vec<Value>, Vec<usize>>,
    _guard: InFlightRows,
    _reservation: MemoryReservation,
}

/// Hash join on equality columns, with an optional residual predicate
/// evaluated over the combined row. Supports `Inner` and `LeftOuter`.
#[derive(Debug)]
pub struct HashJoinExec {
    left: Arc<dyn ExecutionPlan>,
    right: Arc<dyn ExecutionPlan>,
    /// Pairs of (left column, right column) equality keys; right indices
    /// are relative to the right schema.
    keys: Vec<(usize, usize)>,
    /// Residual condition over the combined row (left columns first).
    residual: Option<Expr>,
    join_type: JoinType,
    schema: SchemaRef,
}

impl HashJoinExec {
    /// Build a hash join. `join_type` must be `Inner` or `LeftOuter`.
    pub fn new(
        left: Arc<dyn ExecutionPlan>,
        right: Arc<dyn ExecutionPlan>,
        keys: Vec<(usize, usize)>,
        residual: Option<Expr>,
        join_type: JoinType,
    ) -> Self {
        assert!(
            matches!(join_type, JoinType::Inner | JoinType::LeftOuter),
            "hash join supports inner and left outer joins"
        );
        assert!(!keys.is_empty(), "hash join requires equality keys");
        let schema = join_schema(&left.schema(), &right.schema(), join_type);
        HashJoinExec {
            left,
            right,
            keys,
            residual,
            join_type,
            schema,
        }
    }
}

impl ExecutionPlan for HashJoinExec {
    fn name(&self) -> &'static str {
        "HashJoinExec"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.left, &self.right]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let left_streams = crate::input_streams(&self.left, ctx)?;
        let right_width = self.right.schema().len();
        let left_width = self.left.schema().len();

        // Build side: a pipeline breaker shared by every probe stream —
        // the first probe batch pulled drains the right input (fanned over
        // the executor pool) and hashes it on the key columns. Rows with a
        // NULL key never match (SQL equality semantics).
        let right = Arc::clone(&self.right);
        let keys = self.keys.clone();
        let build_ctx = ctx.clone();
        let build = LazyBuild::new(move || {
            let rows = flatten(
                build_ctx
                    .runtime
                    .drain_streams(crate::input_streams(&right, &build_ctx)?)?,
            );
            let bytes: usize = rows.iter().map(|r| r.estimated_bytes()).sum();
            let guard = InFlightRows::new(Arc::clone(&build_ctx.metrics), rows.len());
            let reservation = build_ctx.memory.reserve(bytes + rows.len() * 48);
            let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                let key: Vec<Value> = keys.iter().map(|&(_, r)| row.get(r).clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                table.entry(key).or_default().push(i);
            }
            Ok(HashBuild {
                rows,
                table,
                _guard: guard,
                _reservation: reservation,
            })
        });

        // Probe side: pipelined over the left streams.
        Ok(left_streams
            .into_iter()
            .map(|mut input| {
                let build = Arc::clone(&build);
                let keys = self.keys.clone();
                let residual = self.residual.clone();
                let join_type = self.join_type;
                let ctx = ctx.clone();
                PartitionStream::new(self.schema(), Arc::clone(&ctx.metrics), move || loop {
                    ctx.control.check()?;
                    let Some(batch) = input.next_batch()? else {
                        return Ok(None);
                    };
                    let build = build.get()?;
                    let mut rows: Vec<Row> = Vec::new();
                    for left_row in &batch {
                        let key: Vec<Value> =
                            keys.iter().map(|&(l, _)| left_row.get(l).clone()).collect();
                        let mut matched = false;
                        if !key.iter().any(Value::is_null) {
                            if let Some(candidates) = build.table.get(&key) {
                                for &r in candidates {
                                    let right_row = &build.rows[r];
                                    ctx.metrics.join_comparisons.fetch_add(1, Ordering::Relaxed);
                                    let keep = match &residual {
                                        Some(p) => {
                                            p.evaluate_joined(left_row, right_row, left_width)?
                                                == Value::Boolean(true)
                                        }
                                        None => true,
                                    };
                                    if keep {
                                        matched = true;
                                        rows.push(left_row.concat(right_row));
                                    }
                                }
                            }
                        }
                        if !matched && join_type == JoinType::LeftOuter {
                            rows.push(
                                left_row.extend(std::iter::repeat_n(Value::Null, right_width)),
                            );
                        }
                    }
                    if !rows.is_empty() {
                        return Ok(Some(rows));
                    }
                })
            })
            .collect())
    }

    fn describe(&self) -> String {
        format!(
            "HashJoinExec [{:?}, keys: {:?}{}]",
            self.join_type,
            self.keys,
            match &self.residual {
                Some(r) => format!(", residual: {r}"),
                None => String::new(),
            }
        )
    }
}

/// The shared nested-loop inner side with its accounting guards.
struct NestedLoopBuild {
    rows: Vec<Row>,
    _guard: InFlightRows,
    _reservation: MemoryReservation,
}

/// Nested-loop join evaluating an arbitrary predicate per pair. Supports
/// all join types; it is the execution strategy of the paper's reference
/// queries (`LeftAnti` with pure inequality conditions).
#[derive(Debug)]
pub struct NestedLoopJoinExec {
    left: Arc<dyn ExecutionPlan>,
    right: Arc<dyn ExecutionPlan>,
    /// Predicate over the combined row; `None` means always-true (cross).
    predicate: Option<Expr>,
    join_type: JoinType,
    schema: SchemaRef,
}

impl NestedLoopJoinExec {
    /// Build a nested-loop join.
    pub fn new(
        left: Arc<dyn ExecutionPlan>,
        right: Arc<dyn ExecutionPlan>,
        predicate: Option<Expr>,
        join_type: JoinType,
    ) -> Self {
        let schema = join_schema(&left.schema(), &right.schema(), join_type);
        NestedLoopJoinExec {
            left,
            right,
            predicate,
            join_type,
            schema,
        }
    }
}

/// Evaluate the join predicate for one (left, right) pair, counting the
/// comparison.
fn pair_matches(
    predicate: &Option<Expr>,
    left_row: &Row,
    right_row: &Row,
    left_width: usize,
    ctx: &TaskContext,
) -> Result<bool> {
    ctx.metrics.join_comparisons.fetch_add(1, Ordering::Relaxed);
    match predicate {
        Some(p) => Ok(p.evaluate_joined(left_row, right_row, left_width)? == Value::Boolean(true)),
        None => Ok(true),
    }
}

impl ExecutionPlan for NestedLoopJoinExec {
    fn name(&self) -> &'static str {
        "NestedLoopJoinExec"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.left, &self.right]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let left_streams = crate::input_streams(&self.left, ctx)?;
        let right_width = self.right.schema().len();
        let left_width = self.left.schema().len();

        // Inner side: buffered once, shared by every probe stream.
        let right = Arc::clone(&self.right);
        let build_ctx = ctx.clone();
        let build = LazyBuild::new(move || {
            let rows = flatten(
                build_ctx
                    .runtime
                    .drain_streams(crate::input_streams(&right, &build_ctx)?)?,
            );
            let bytes: usize = rows.iter().map(|r| r.estimated_bytes()).sum();
            let guard = InFlightRows::new(Arc::clone(&build_ctx.metrics), rows.len());
            let reservation = build_ctx.memory.reserve(bytes);
            Ok(NestedLoopBuild {
                rows,
                _guard: guard,
                _reservation: reservation,
            })
        });

        // The paper notes the reference plan is "still somewhat
        // distributed": the outer loop pipelines over left batches while
        // every probe scans the whole right side.
        Ok(left_streams
            .into_iter()
            .map(|mut input| {
                let build = Arc::clone(&build);
                let predicate = self.predicate.clone();
                let join_type = self.join_type;
                let ctx = ctx.clone();
                PartitionStream::new(self.schema(), Arc::clone(&ctx.metrics), move || loop {
                    let Some(batch) = input.next_batch()? else {
                        return Ok(None);
                    };
                    let right_rows = &build.get()?.rows;
                    let mut rows: Vec<Row> = Vec::new();
                    for left_row in &batch {
                        ctx.control.check()?;
                        match join_type {
                            JoinType::Inner | JoinType::Cross => {
                                for right_row in right_rows {
                                    if pair_matches(
                                        &predicate, left_row, right_row, left_width, &ctx,
                                    )? {
                                        rows.push(left_row.concat(right_row));
                                    }
                                }
                            }
                            JoinType::LeftOuter => {
                                let mut matched = false;
                                for right_row in right_rows {
                                    if pair_matches(
                                        &predicate, left_row, right_row, left_width, &ctx,
                                    )? {
                                        matched = true;
                                        rows.push(left_row.concat(right_row));
                                    }
                                }
                                if !matched {
                                    rows.push(
                                        left_row
                                            .extend(std::iter::repeat_n(Value::Null, right_width)),
                                    );
                                }
                            }
                            JoinType::LeftSemi => {
                                for right_row in right_rows {
                                    if pair_matches(
                                        &predicate, left_row, right_row, left_width, &ctx,
                                    )? {
                                        rows.push(left_row.clone());
                                        break;
                                    }
                                }
                            }
                            JoinType::LeftAnti => {
                                let mut matched = false;
                                for right_row in right_rows {
                                    if pair_matches(
                                        &predicate, left_row, right_row, left_width, &ctx,
                                    )? {
                                        matched = true;
                                        break;
                                    }
                                }
                                if !matched {
                                    rows.push(left_row.clone());
                                }
                            }
                        }
                    }
                    if !rows.is_empty() {
                        return Ok(Some(rows));
                    }
                })
            })
            .collect())
    }

    fn describe(&self) -> String {
        format!(
            "NestedLoopJoinExec [{:?}{}]",
            self.join_type,
            match &self.predicate {
                Some(p) => format!(", on: {p}"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanExec;
    use sparkline_common::{DataType, Field};
    use sparkline_plan::BoundColumn;

    fn table(name: &str, data: &[(i64, i64)], nullable_key: bool) -> Arc<dyn ExecutionPlan> {
        let schema = Schema::new(vec![
            Field::qualified(name, "k", DataType::Int64, nullable_key),
            Field::qualified(name, "v", DataType::Int64, false),
        ])
        .into_ref();
        let rows: Vec<Row> = data
            .iter()
            .map(|&(k, v)| Row::new(vec![Value::Int64(k), Value::Int64(v)]))
            .collect();
        Arc::new(ScanExec::new(name, Arc::new(rows), schema))
    }

    fn col(i: usize) -> Expr {
        Expr::BoundColumn(BoundColumn {
            index: i,
            field: Field::new("c", DataType::Int64, true),
        })
    }

    fn run(plan: &dyn ExecutionPlan, executors: usize) -> Vec<Row> {
        let ctx = TaskContext::new(executors);
        let mut rows = flatten(plan.execute(&ctx).unwrap());
        rows.sort_by_key(|a| a.to_string());
        rows
    }

    #[test]
    fn inner_hash_join() {
        let l = table("l", &[(1, 10), (2, 20), (3, 30)], false);
        let r = table("r", &[(1, 100), (1, 101), (3, 300)], false);
        let join = HashJoinExec::new(l, r, vec![(0, 0)], None, JoinType::Inner);
        let rows = run(&join, 2);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.width() == 4));
    }

    #[test]
    fn left_outer_hash_join_pads_nulls() {
        let l = table("l", &[(1, 10), (2, 20)], false);
        let r = table("r", &[(1, 100)], false);
        let join = HashJoinExec::new(l, r, vec![(0, 0)], None, JoinType::LeftOuter);
        let rows = run(&join, 2);
        assert_eq!(rows.len(), 2);
        let unmatched = rows.iter().find(|r| r.get(0) == &Value::Int64(2)).unwrap();
        assert!(unmatched.get(2).is_null() && unmatched.get(3).is_null());
    }

    #[test]
    fn null_keys_never_match_but_outer_preserves() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64, true),
            Field::new("v", DataType::Int64, false),
        ])
        .into_ref();
        let l_rows = vec![Row::new(vec![Value::Null, Value::Int64(1)])];
        let l: Arc<dyn ExecutionPlan> =
            Arc::new(ScanExec::new("l", Arc::new(l_rows), Arc::clone(&schema)));
        let r = table("r", &[(1, 100)], false);

        let inner = HashJoinExec::new(
            Arc::clone(&l),
            Arc::clone(&r),
            vec![(0, 0)],
            None,
            JoinType::Inner,
        );
        assert_eq!(run(&inner, 1).len(), 0);

        let outer = HashJoinExec::new(l, r, vec![(0, 0)], None, JoinType::LeftOuter);
        let rows = run(&outer, 1);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get(2).is_null());
    }

    #[test]
    fn hash_join_residual_predicate() {
        let l = table("l", &[(1, 10), (1, 5)], false);
        let r = table("r", &[(1, 7)], false);
        // ON l.k = r.k AND l.v > r.v
        let residual = col(1).gt(col(3));
        let join = HashJoinExec::new(l, r, vec![(0, 0)], Some(residual), JoinType::Inner);
        let rows = run(&join, 2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Int64(10));
    }

    #[test]
    fn nested_loop_cross_join() {
        let l = table("l", &[(1, 1), (2, 2)], false);
        let r = table("r", &[(3, 3), (4, 4), (5, 5)], false);
        let join = NestedLoopJoinExec::new(l, r, None, JoinType::Cross);
        assert_eq!(run(&join, 2).len(), 6);
    }

    #[test]
    fn nested_loop_anti_join_reference_shape() {
        // Single MIN dimension skyline via NOT EXISTS: keep rows where no
        // other row has a strictly smaller v.
        let l = table("l", &[(1, 10), (2, 5), (3, 7)], false);
        let r = table("r", &[(1, 10), (2, 5), (3, 7)], false);
        // anti predicate: r.v < l.v  (combined index 3 < index 1)
        let pred = col(3).lt(col(1));
        let join = NestedLoopJoinExec::new(l, r, Some(pred), JoinType::LeftAnti);
        let rows = run(&join, 3);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Int64(5));
    }

    #[test]
    fn nested_loop_semi_join() {
        let l = table("l", &[(1, 10), (2, 5)], false);
        let r = table("r", &[(9, 6)], false);
        // semi predicate: r.v > l.v
        let pred = col(3).gt(col(1));
        let join = NestedLoopJoinExec::new(l, r, Some(pred), JoinType::LeftSemi);
        let rows = run(&join, 2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Int64(5));
        assert_eq!(rows[0].width(), 2, "semi join emits left columns only");
    }

    #[test]
    fn join_comparisons_metric_recorded() {
        let l = table("l", &[(1, 1), (2, 2)], false);
        let r = table("r", &[(1, 1), (2, 2)], false);
        let join = NestedLoopJoinExec::new(l, r, None, JoinType::Cross);
        let ctx = TaskContext::new(2);
        join.execute(&ctx).unwrap();
        assert_eq!(ctx.metrics.join_comparisons.load(Ordering::Relaxed), 4);
    }
}
