//! The out-of-core scan: streams a [`DiskTable`]'s blocks, skipping whole
//! blocks from metadata — static min/max pruning for pushed-down filter
//! conjuncts and dominance pruning against representative pre-filter
//! points — before any I/O or decode happens.

use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

use sparkline_common::{Result, SchemaRef, SkylineType, Value};
use sparkline_exec::{partition::even_ranges, FaultSite, PartitionStream, TaskContext};
use sparkline_plan::{BinaryOp, Expr};
use sparkline_skyline::columnar::PointBlock;
use sparkline_storage::{BlockDecoder, BlockMeta, DiskTable};

use crate::ExecutionPlan;

/// One pushed-down comparison `column <op> literal` a block's min/max can
/// refute. The `FilterExec` above the scan still evaluates the predicate
/// exactly — pruning only discards blocks *no* row of which can pass, so
/// results are identical with pruning on or off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnPredicate {
    /// Column position in the scan schema.
    pub col: usize,
    /// The comparison, normalized to `column <op> value`.
    pub op: BinaryOp,
    /// The literal, as a finite f64.
    pub value: f64,
}

impl ColumnPredicate {
    /// Whether the block provably contains no row satisfying this
    /// predicate. NULL rows never satisfy a comparison (SQL three-valued
    /// logic: the filter keeps only `TRUE`), so the decision rests on the
    /// numeric `[min, max]` alone — unless the column holds non-numeric
    /// values (strings, NaN), which the bounds don't cover; those blocks
    /// are never pruned.
    fn refutes(&self, meta: &BlockMeta) -> bool {
        let Some(col) = meta.columns.get(self.col) else {
            return false;
        };
        if col.non_numeric > 0 {
            return false;
        }
        let (Some(min), Some(max)) = (col.min, col.max) else {
            // Every row is NULL: no row satisfies any comparison.
            return true;
        };
        let v = self.value;
        match self.op {
            BinaryOp::Lt => min >= v,
            BinaryOp::LtEq => min > v,
            BinaryOp::Gt => max <= v,
            BinaryOp::GtEq => max < v,
            BinaryOp::Eq => v < min || v > max,
            _ => false,
        }
    }
}

/// Extract the min/max-prunable conjuncts of a filter predicate sitting
/// directly on a disk scan: `BoundColumn <op> numeric-literal` (either
/// orientation) joined by `AND`. Everything else is ignored — the filter
/// still runs, so missing a conjunct costs only pruning power.
pub fn extract_column_predicates(predicate: &Expr) -> Vec<ColumnPredicate> {
    fn literal_f64(e: &Expr) -> Option<f64> {
        match e {
            Expr::Literal(Value::Int64(i)) => Some(*i as f64),
            Expr::Literal(Value::Float64(f)) if !f.is_nan() => Some(*f),
            _ => None,
        }
    }
    fn flip(op: BinaryOp) -> Option<BinaryOp> {
        Some(match op {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            BinaryOp::Eq => BinaryOp::Eq,
            _ => return None,
        })
    }
    fn walk(e: &Expr, out: &mut Vec<ColumnPredicate>) {
        match e {
            Expr::BinaryOp {
                left,
                op: BinaryOp::And,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::BinaryOp { left, op, right } => {
                if let (Expr::BoundColumn(c), Some(value)) = (left.as_ref(), literal_f64(right)) {
                    if matches!(
                        op,
                        BinaryOp::Lt
                            | BinaryOp::LtEq
                            | BinaryOp::Gt
                            | BinaryOp::GtEq
                            | BinaryOp::Eq
                    ) {
                        out.push(ColumnPredicate {
                            col: c.index,
                            op: *op,
                            value,
                        });
                    }
                } else if let (Some(value), Expr::BoundColumn(c)) =
                    (literal_f64(left), right.as_ref())
                {
                    if let Some(op) = flip(*op) {
                        out.push(ColumnPredicate {
                            col: c.index,
                            op,
                            value,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(predicate, &mut out);
    out
}

/// Dominance-skipping state: the scan's ranked dimensions in folded
/// (smaller-is-better) order and the representative pre-filter points,
/// folded the same way. Installed by the skyline planner *after* the scan
/// is built (the points come from the sampled skyline input), hence the
/// write-once slot.
#[derive(Debug)]
pub struct DominanceSkip {
    /// `(column, negate)` per ranked dimension: a MIN dimension folds as
    /// `v`, a MAX dimension as `-v` (matching the block corner fold).
    dims: Vec<(usize, bool)>,
    /// Folded representative points (real rows of the skyline's filtered
    /// input that survive to its operator).
    points: PointBlock,
}

impl DominanceSkip {
    /// Build the skip set from raw-space representative rows. Returns
    /// `None` when no point folds cleanly (a non-numeric dimension value
    /// disqualifies the point, not the whole set) or when `dims` contains
    /// a DIFF dimension — corner dominance is only defined over ranked
    /// MIN/MAX dimensions.
    pub fn from_points(
        dims: &[sparkline_common::SkylineDim],
        points: &[sparkline_common::Row],
        kernel: sparkline_common::DominanceKernel,
    ) -> Option<Self> {
        let folded_dims: Vec<(usize, bool)> = dims
            .iter()
            .map(|d| match d.ty {
                SkylineType::Min => Some((d.index, false)),
                SkylineType::Max => Some((d.index, true)),
                SkylineType::Diff => None,
            })
            .collect::<Option<_>>()?;
        let mut block = PointBlock::with_kernel(folded_dims.len(), kernel);
        let mut folded = Vec::with_capacity(folded_dims.len());
        'points: for p in points {
            folded.clear();
            for &(col, negate) in &folded_dims {
                match sparkline_common::stats::numeric_value(p.get(col)) {
                    Some(v) => folded.push(if negate { -v } else { v }),
                    None => continue 'points,
                }
            }
            block.push(&folded);
        }
        if block.is_empty() {
            return None;
        }
        Some(DominanceSkip {
            dims: folded_dims,
            points: block,
        })
    }

    /// Whether some representative point strictly dominates the block's
    /// best corner — then it dominates every row of the block (corner ≤
    /// row component-wise, dominance is transitive on the complete
    /// relation) and the block can be skipped unread. Requires the ranked
    /// columns fully numeric (no NULLs, no strings/NaN), else the corner
    /// doesn't bound every row and the block must be read. Returns the
    /// corner tests spent alongside the verdict.
    fn skips(&self, meta: &BlockMeta) -> (u64, bool) {
        let mut corner = Vec::with_capacity(self.dims.len());
        for &(col, negate) in &self.dims {
            let Some(c) = meta.columns.get(col) else {
                return (0, false);
            };
            if !c.fully_numeric() {
                return (0, false);
            }
            match c.folded_best(negate) {
                Some(v) => corner.push(v),
                None => return (0, false),
            }
        }
        let (tests, dominator) = self.points.first_dominator(&corner);
        (tests, dominator.is_some())
    }
}

/// Scans a persistent [`DiskTable`], distributing whole blocks across
/// `num_executors` partition streams. Each stream holds at most one
/// block's *encoded* payload (budget-reserved against the query's
/// [`MemoryTracker`](sparkline_exec::MemoryTracker)) and decodes it
/// batch-by-batch, so peak scan memory is one raw block plus one decoded
/// batch per executor — independent of file size. Blocks refuted by the
/// min/max bounds or dominated through the skip slot are never read.
#[derive(Debug)]
pub struct DiskScanExec {
    label: String,
    table: Arc<DiskTable>,
    schema: SchemaRef,
    bounds: Vec<ColumnPredicate>,
    skip: Arc<OnceLock<DominanceSkip>>,
    minmax_enabled: bool,
    dominance_enabled: bool,
}

impl DiskScanExec {
    /// Scan over an opened disk table. `schema` is the analyzer's (its
    /// qualified field names), structurally identical to the file's.
    pub fn new(label: impl Into<String>, table: Arc<DiskTable>, schema: SchemaRef) -> Self {
        DiskScanExec {
            label: label.into(),
            table,
            schema,
            bounds: Vec::new(),
            skip: Arc::new(OnceLock::new()),
            minmax_enabled: true,
            dominance_enabled: true,
        }
    }

    /// Attach pushed-down min/max bounds (the planner extracts them from
    /// the `Filter` directly above the scan).
    pub fn with_bounds(mut self, bounds: Vec<ColumnPredicate>) -> Self {
        self.bounds = bounds;
        self
    }

    /// Gate the two skipping tiers (the `SessionConfig` A/B knobs).
    pub fn with_skipping(mut self, minmax: bool, dominance: bool) -> Self {
        self.minmax_enabled = minmax;
        self.dominance_enabled = dominance;
        self
    }

    /// The scanned table.
    pub fn table(&self) -> &Arc<DiskTable> {
        &self.table
    }

    /// Skip decision for one block (see [`skip_verdict`]).
    fn block_skip(&self, meta: &BlockMeta) -> (u64, Option<SkipKind>) {
        skip_verdict(
            &self.bounds,
            &self.skip,
            self.minmax_enabled,
            self.dominance_enabled,
            meta,
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SkipKind {
    MinMax,
    Dominance,
}

/// Skip decision for one block: `(corner tests, Some(kind))` with `kind`
/// telling which tier fired. Min/max runs first — it is cheaper (no
/// dominance tests) and its skips don't depend on the skyline plan.
fn skip_verdict(
    bounds: &[ColumnPredicate],
    skip: &OnceLock<DominanceSkip>,
    minmax_enabled: bool,
    dominance_enabled: bool,
    meta: &BlockMeta,
) -> (u64, Option<SkipKind>) {
    if minmax_enabled && bounds.iter().any(|b| b.refutes(meta)) {
        return (0, Some(SkipKind::MinMax));
    }
    if dominance_enabled {
        if let Some(skip) = skip.get() {
            let (tests, skips) = skip.skips(meta);
            if skips {
                return (tests, Some(SkipKind::Dominance));
            }
            return (tests, None);
        }
    }
    (0, None)
}

impl ExecutionPlan for DiskScanExec {
    fn name(&self) -> &'static str {
        "DiskScanExec"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![]
    }

    fn dominance_skip_slot(&self) -> Option<&OnceLock<DominanceSkip>> {
        Some(&self.skip)
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        ctx.control.check()?;
        // Whole blocks are the distribution unit: a block decodes on
        // exactly one executor, and the metadata skip happens before its
        // bytes are touched.
        let ranges = even_ranges(self.table.num_blocks(), ctx.runtime.num_executors());
        let batch_size = ctx.batch_size.max(1);
        Ok(ranges
            .into_iter()
            .enumerate()
            .map(|(part, (start, end))| {
                let table = Arc::clone(&self.table);
                let schema = self.schema();
                let bounds = self.bounds.clone();
                let skip = Arc::clone(&self.skip);
                let minmax_enabled = self.minmax_enabled;
                let dominance_enabled = self.dominance_enabled;
                let ctx = ctx.clone();
                let mut block = start;
                let mut seq = 0u64;
                // (decoder, next row, reservation): the raw payload stays
                // reserved until the last batch of the block is decoded.
                let mut current: Option<(BlockDecoder, usize, sparkline_exec::MemoryReservation)> =
                    None;
                PartitionStream::new(
                    Arc::clone(&schema),
                    Arc::clone(&ctx.metrics),
                    move || loop {
                        ctx.control.check()?;
                        if let Some((decoder, pos, _res)) = current.as_mut() {
                            ctx.maybe_inject(FaultSite::Scan, part, seq)?;
                            seq += 1;
                            let upto = (*pos + batch_size).min(decoder.rows());
                            let batch = decoder.decode_range(*pos, upto)?;
                            *pos = upto;
                            if *pos >= decoder.rows() {
                                current = None;
                            }
                            ctx.metrics
                                .rows_scanned
                                .fetch_add(batch.len() as u64, Ordering::Relaxed);
                            return Ok(Some(batch));
                        }
                        let Some(i) = (block < end).then_some(block) else {
                            return Ok(None);
                        };
                        block += 1;
                        let meta = table.block_meta(i);
                        let (tests, verdict) =
                            skip_verdict(&bounds, &skip, minmax_enabled, dominance_enabled, meta);
                        if tests > 0 {
                            ctx.metrics.corner_tests.fetch_add(tests, Ordering::Relaxed);
                        }
                        match verdict {
                            Some(SkipKind::MinMax) => {
                                ctx.metrics.add_block_skipped_minmax();
                                continue;
                            }
                            Some(SkipKind::Dominance) => {
                                ctx.metrics.add_block_skipped_dominance();
                                continue;
                            }
                            None => {}
                        }
                        ctx.maybe_inject(FaultSite::Scan, part, seq)?;
                        seq += 1;
                        let raw = table.read_block_raw(i)?;
                        let reservation = ctx.try_reserve(raw.len())?;
                        ctx.metrics.add_block_read(raw.len() as u64);
                        let decoder = BlockDecoder::new(raw, Arc::clone(&schema))?;
                        if decoder.rows() == 0 {
                            continue;
                        }
                        current = Some((decoder, 0, reservation));
                    },
                )
            })
            .collect())
    }

    fn describe(&self) -> String {
        // The skip decision is pure metadata, so the EXPLAIN tag can
        // report it exactly without executing anything.
        let mut minmax = 0usize;
        let mut dominance = 0usize;
        for meta in self.table.blocks() {
            match self.block_skip(meta).1 {
                Some(SkipKind::MinMax) => minmax += 1,
                Some(SkipKind::Dominance) => dominance += 1,
                None => {}
            }
        }
        format!(
            "DiskScanExec [{}: {} rows, disk(blocks={}, skipped={} minmax + {} dominance)]",
            self.label,
            self.table.total_rows(),
            self.table.num_blocks(),
            minmax,
            dominance,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{
        DataType, DominanceKernel, Field, Row, Schema, SkylineDim, SkylineType,
    };
    use sparkline_plan::BoundColumn;
    use sparkline_storage::{write_table, WriterOptions};

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sparkline-diskscan-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.spk")
    }

    fn disk_table(name: &str, rows: &[Row], block_rows: usize) -> (Arc<DiskTable>, SchemaRef) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Float64, false),
            Field::new("b", DataType::Float64, false),
        ])
        .into_ref();
        let path = temp_file(name);
        write_table(
            &path,
            Arc::clone(&schema),
            rows,
            WriterOptions {
                block_rows,
                ..WriterOptions::default()
            },
        )
        .unwrap();
        (Arc::new(DiskTable::open(&path).unwrap()), schema)
    }

    fn ascending(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Float64(i as f64),
                    Value::Float64((n - i) as f64),
                ])
            })
            .collect()
    }

    #[test]
    fn full_scan_returns_every_row_in_order() {
        let rows = ascending(1000);
        let (table, schema) = disk_table("full", &rows, 128);
        let scan = DiskScanExec::new("t", table, schema);
        let ctx = TaskContext::new(3);
        let parts = scan.execute(&ctx).unwrap();
        let got = sparkline_exec::partition::flatten(parts);
        assert_eq!(got, rows);
        let snap = ctx.metrics.snapshot();
        assert_eq!(snap.rows_scanned, 1000);
        assert_eq!(snap.blocks_read, 8, "ceil(1000/128)");
        assert!(snap.bytes_decoded > 0);
    }

    #[test]
    fn minmax_bounds_skip_blocks_without_changing_results() {
        let rows = ascending(1000);
        let (table, schema) = disk_table("minmax", &rows, 100);
        // a < 250 refutes blocks whose min >= 250 (blocks 3..9).
        let bound = ColumnPredicate {
            col: 0,
            op: BinaryOp::Lt,
            value: 250.0,
        };
        let scan = DiskScanExec::new("t", Arc::clone(&table), Arc::clone(&schema))
            .with_bounds(vec![bound]);
        let ctx = TaskContext::new(2);
        let got = sparkline_exec::partition::flatten(scan.execute(&ctx).unwrap());
        let snap = ctx.metrics.snapshot();
        assert_eq!(snap.blocks_skipped_minmax, 7, "blocks [300..1000) pruned");
        assert_eq!(snap.blocks_read, 3);
        // Pruning is a superset guarantee: every row satisfying the
        // predicate is still present (the filter above does the exact cut).
        let kept: Vec<&Row> = rows.iter().filter(|r| f(r, 0) < 250.0).collect();
        assert!(kept.iter().all(|r| got.contains(r)));
        // Skipping off reads everything and returns a superset too.
        let all = DiskScanExec::new("t", table, schema)
            .with_bounds(vec![bound])
            .with_skipping(false, true);
        let ctx2 = TaskContext::new(2);
        let everything = sparkline_exec::partition::flatten(all.execute(&ctx2).unwrap());
        assert_eq!(everything, rows);
        assert_eq!(ctx2.metrics.snapshot().blocks_skipped_minmax, 0);
    }

    fn f(row: &Row, i: usize) -> f64 {
        match row.get(i) {
            Value::Float64(v) => *v,
            other => panic!("not a float: {other:?}"),
        }
    }

    #[test]
    fn refutation_rules_match_predicate_semantics() {
        // One block with a in [100, 199].
        let rows: Vec<Row> = (100..200)
            .map(|i| Row::new(vec![Value::Float64(i as f64), Value::Float64(0.0)]))
            .collect();
        let (table, _) = disk_table("rules", &rows, 1000);
        let meta = table.block_meta(0);
        let refutes = |op, value| ColumnPredicate { col: 0, op, value }.refutes(meta);
        assert!(refutes(BinaryOp::Lt, 100.0));
        assert!(!refutes(BinaryOp::Lt, 100.5));
        assert!(refutes(BinaryOp::LtEq, 99.0));
        assert!(!refutes(BinaryOp::LtEq, 100.0));
        assert!(refutes(BinaryOp::Gt, 199.0));
        assert!(!refutes(BinaryOp::Gt, 198.5));
        assert!(refutes(BinaryOp::GtEq, 199.5));
        assert!(!refutes(BinaryOp::GtEq, 199.0));
        assert!(refutes(BinaryOp::Eq, 99.5));
        assert!(refutes(BinaryOp::Eq, 200.0));
        assert!(!refutes(BinaryOp::Eq, 150.0));
    }

    #[test]
    fn dominance_skip_drops_dominated_blocks() {
        // Blocks of 100 rows; rows in block k have a = b = k*100 + i, so
        // block 0's rows dominate every later block's corner.
        let n = 500;
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Float64(i as f64), Value::Float64(i as f64)]))
            .collect();
        let (table, schema) = disk_table("dom", &rows, 100);
        let scan = DiskScanExec::new("t", table, schema);
        let dims = [
            SkylineDim::new(0, SkylineType::Min),
            SkylineDim::new(1, SkylineType::Min),
        ];
        // Representative point: the global optimum (0, 0) — strictly
        // dominates the best corner of every block but its own.
        let points = vec![rows[0].clone()];
        let skip = DominanceSkip::from_points(&dims, &points, DominanceKernel::Auto).unwrap();
        scan.dominance_skip_slot().unwrap().set(skip).unwrap();
        let ctx = TaskContext::new(2);
        let got = sparkline_exec::partition::flatten(scan.execute(&ctx).unwrap());
        let snap = ctx.metrics.snapshot();
        assert_eq!(snap.blocks_skipped_dominance, 4, "blocks 1..5 dominated");
        assert_eq!(snap.blocks_read, 1);
        assert!(snap.corner_tests > 0);
        assert_eq!(got, rows[..100].to_vec(), "only block 0 survives");
        assert!(scan.describe().contains("skipped=0 minmax + 4 dominance"));
    }

    #[test]
    fn blocks_with_nulls_or_max_dims_fold_correctly() {
        // MAX dimension: corner is -max; a point with a larger value
        // dominates blocks of smaller values.
        let rows: Vec<Row> = (0..300)
            .map(|i| Row::new(vec![Value::Float64(i as f64), Value::Float64(i as f64)]))
            .collect();
        let (table, schema) = disk_table("maxdim", &rows, 100);
        let scan = DiskScanExec::new("t", table, schema);
        let dims = [
            SkylineDim::new(0, SkylineType::Max),
            SkylineDim::new(1, SkylineType::Max),
        ];
        let points = vec![rows[299].clone()];
        let skip = DominanceSkip::from_points(&dims, &points, DominanceKernel::Auto).unwrap();
        scan.dominance_skip_slot().unwrap().set(skip).unwrap();
        let ctx = TaskContext::new(1);
        let got = sparkline_exec::partition::flatten(scan.execute(&ctx).unwrap());
        assert_eq!(got, rows[200..].to_vec(), "only the top block survives");
        assert_eq!(ctx.metrics.snapshot().blocks_skipped_dominance, 2);
    }

    #[test]
    fn diff_dims_disable_dominance_skipping() {
        let dims = [
            SkylineDim::new(0, SkylineType::Min),
            SkylineDim::new(1, SkylineType::Diff),
        ];
        let points = vec![Row::new(vec![Value::Float64(0.0), Value::Float64(0.0)])];
        assert!(DominanceSkip::from_points(&dims, &points, DominanceKernel::Auto).is_none());
    }

    #[test]
    fn predicate_extraction_normalizes_orientation() {
        let field = Field::new("a", DataType::Float64, false);
        let col = Expr::BoundColumn(BoundColumn {
            index: 0,
            field: field.clone(),
        });
        let lit = |v: f64| Expr::Literal(Value::Float64(v));
        // a < 5 AND 10 > a AND a = 3
        let pred = col
            .clone()
            .lt(lit(5.0))
            .and(Expr::BinaryOp {
                left: Box::new(lit(10.0)),
                op: BinaryOp::Gt,
                right: Box::new(col.clone()),
            })
            .and(col.clone().eq(lit(3.0)));
        let got = extract_column_predicates(&pred);
        assert_eq!(
            got,
            vec![
                ColumnPredicate {
                    col: 0,
                    op: BinaryOp::Lt,
                    value: 5.0
                },
                ColumnPredicate {
                    col: 0,
                    op: BinaryOp::Lt,
                    value: 10.0
                },
                ColumnPredicate {
                    col: 0,
                    op: BinaryOp::Eq,
                    value: 3.0
                },
            ]
        );
        // NaN literals and non-column comparisons are ignored.
        assert!(extract_column_predicates(&col.clone().lt(lit(f64::NAN))).is_empty());
        assert!(extract_column_predicates(&lit(1.0).lt(lit(2.0))).is_empty());
    }

    #[test]
    fn decode_buffers_are_charged_to_the_memory_budget() {
        let rows = ascending(2000);
        let (table, schema) = disk_table("budget", &rows, 500);
        let scan = DiskScanExec::new("t", Arc::clone(&table), schema);
        let block_bytes = table.block_meta(0).bytes as usize;
        // A budget below one encoded block must deny the scan.
        let ctx = TaskContext::new(1).with_memory_budget(Some(block_bytes / 2));
        let err = scan.execute(&ctx).unwrap_err();
        assert!(err.is_resource_exhausted(), "{err}");
        assert!(ctx.metrics.snapshot().budget_denials > 0);
        // A budget of ~one block per executor succeeds: blocks are
        // released as they drain.
        let ctx = TaskContext::new(1).with_memory_budget(Some(block_bytes * 2));
        let got = sparkline_exec::partition::flatten(scan.execute(&ctx).unwrap());
        assert_eq!(got.len(), 2000);
    }
}
