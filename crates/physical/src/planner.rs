//! The physical planner: optimized logical plans → executable operator
//! trees, including the paper's skyline algorithm selection (Listing 8).

use std::sync::Arc;

use sparkline_common::{
    reservoir_sample, DataType, DatasetStats, Error, MergeStrategy, Result, Row, Schema, SchemaRef,
    SessionConfig, SkylineDim, SkylineMeta, SkylinePartitioning, SkylinePlan, SkylineSpec,
    SkylineStrategy, Value,
};
use sparkline_plan::{
    AggregateFunction, BinaryOp, BoundColumn, Expr, JoinCondition, JoinType, LogicalPlan,
    SkylineDimension,
};

use crate::aggregate::AggCall;
use crate::exchange::{ExchangeExec, ExchangeMode};
use crate::join::{HashJoinExec, NestedLoopJoinExec};
use crate::skyline_exec::{
    GlobalSkylineExec, IncompleteGlobalSkylineExec, LocalSkylineExec, MinMaxFilterExec,
    SkylinePreFilterExec,
};
use crate::{
    basic::{DistinctExec, FilterExec, LimitExec, ProjectExec, SortExec},
    scan::ScanExec,
    ExecutionPlan,
};

/// Source of table *data* for scans (the session catalog implements this).
pub trait ExecTableSource: Send + Sync {
    /// The rows of a registered in-memory table, if it exists.
    fn table_rows(&self, name: &str) -> Option<Arc<Vec<Row>>>;

    /// The disk-resident table registered under `name`, if any. Disk
    /// tables take precedence over in-memory rows when both exist.
    fn disk_table(&self, _name: &str) -> Option<Arc<sparkline_storage::DiskTable>> {
        None
    }
}

/// Translates logical plans into physical operator trees.
pub struct PhysicalPlanner<'a> {
    config: &'a SessionConfig,
    source: &'a dyn ExecTableSource,
}

impl<'a> PhysicalPlanner<'a> {
    /// Planner over a session configuration and a data source.
    pub fn new(config: &'a SessionConfig, source: &'a dyn ExecTableSource) -> Self {
        PhysicalPlanner { config, source }
    }

    /// Create the physical plan for a resolved, optimized logical plan.
    pub fn create(&self, plan: &LogicalPlan) -> Result<Arc<dyn ExecutionPlan>> {
        Ok(match plan {
            LogicalPlan::UnresolvedRelation { name } => {
                return Err(Error::internal(format!(
                    "cannot execute unresolved relation '{name}'"
                )))
            }
            LogicalPlan::TableScan { name, schema } => {
                if let Some(table) = self.source.disk_table(name) {
                    return Ok(Arc::new(self.disk_scan(name, table, schema, None)));
                }
                let rows = self
                    .source
                    .table_rows(name)
                    .ok_or_else(|| Error::plan(format!("no data registered for table '{name}'")))?;
                Arc::new(ScanExec::new(name.clone(), rows, Arc::clone(schema)))
            }
            LogicalPlan::Values { schema, rows } => Arc::new(ScanExec::new(
                "values",
                Arc::new(rows.as_ref().clone()),
                Arc::clone(schema),
            )),
            LogicalPlan::Projection { exprs, input } => {
                let child = self.create(input)?;
                Arc::new(ProjectExec::new(exprs.clone(), plan.schema()?, child))
            }
            LogicalPlan::Filter { predicate, input } => {
                // A filter directly on a disk scan hands its prunable
                // conjuncts to the scan as static min/max bounds; the
                // filter itself stays in the plan for the exact cut.
                let child: Arc<dyn ExecutionPlan> = match input.as_ref() {
                    LogicalPlan::TableScan { name, schema } => match self.source.disk_table(name) {
                        Some(table) => {
                            Arc::new(self.disk_scan(name, table, schema, Some(predicate)))
                        }
                        None => self.create(input)?,
                    },
                    _ => self.create(input)?,
                };
                Arc::new(FilterExec::new(predicate.clone(), child))
            }
            LogicalPlan::Aggregate {
                group_exprs,
                aggr_exprs,
                input,
            } => {
                let child = self.create(input)?;
                let input_schema = input.schema()?;
                let (calls, result_exprs) =
                    compile_aggregate(group_exprs, aggr_exprs, &input_schema)?;
                Arc::new(crate::aggregate::HashAggregateExec::new(
                    group_exprs.clone(),
                    calls,
                    result_exprs,
                    plan.schema()?,
                    child,
                ))
            }
            LogicalPlan::Sort { exprs, input } => {
                let child = self.create(input)?;
                Arc::new(SortExec::new(exprs.clone(), child))
            }
            LogicalPlan::Limit { n, input } => {
                let child = self.create(input)?;
                Arc::new(LimitExec::new(*n, child))
            }
            LogicalPlan::Distinct { input } => {
                let child = self.create(input)?;
                Arc::new(DistinctExec::new(child))
            }
            LogicalPlan::SubqueryAlias { input, .. } => self.create(input)?,
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
            } => self.plan_join(left, right, *join_type, condition)?,
            LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                input,
            } => self.plan_skyline(*distinct, *complete, dims, input)?,
            LogicalPlan::MinMaxFilter {
                expr,
                direction,
                distinct,
                input,
            } => {
                let child = self.create(input)?;
                Arc::new(MinMaxFilterExec::new(
                    expr.clone(),
                    *direction,
                    *distinct,
                    child,
                ))
            }
        })
    }

    /// Build a [`DiskScanExec`] over an opened table, with the session's
    /// skipping knobs and (when a filter sits directly on the scan) the
    /// statically extracted min/max bounds.
    fn disk_scan(
        &self,
        name: &str,
        table: Arc<sparkline_storage::DiskTable>,
        schema: &SchemaRef,
        filter: Option<&Expr>,
    ) -> crate::scan_disk::DiskScanExec {
        let bounds = filter
            .map(crate::scan_disk::extract_column_predicates)
            .unwrap_or_default();
        crate::scan_disk::DiskScanExec::new(name.to_string(), table, Arc::clone(schema))
            .with_bounds(bounds)
            .with_skipping(
                self.config.disk_minmax_skipping,
                self.config.disk_dominance_skipping,
            )
    }

    /// Build the exchange strategy object for the selected partitioning;
    /// `None` keeps the child's distribution (`Standard`). `grid_cells`
    /// comes from the [`SkylinePlan`] (the config knob for static plans,
    /// a statistics-derived granularity for adaptive ones).
    fn partitioner_for(
        &self,
        partitioning: SkylinePartitioning,
        spec: &SkylineSpec,
        grid_cells: usize,
    ) -> Option<Arc<dyn sparkline_exec::Partitioner>> {
        match partitioning {
            SkylinePartitioning::Standard => None,
            SkylinePartitioning::Even => Some(Arc::new(sparkline_exec::EvenPartitioner)),
            SkylinePartitioning::Hash => Some(Arc::new(
                sparkline_exec::SkylineHashPartitioner::new(spec.clone()),
            )),
            SkylinePartitioning::AngleBased => Some(Arc::new(
                sparkline_exec::AnglePartitioner::new(spec.clone()),
            )),
            SkylinePartitioning::Grid => Some(Arc::new(sparkline_exec::GridPartitioner::new(
                spec.clone(),
                grid_cells.max(2),
            ))),
        }
    }

    /// Plan-time sample of a skyline input: the base relation is streamed
    /// through the chain of filters/projections above it into a seeded
    /// reservoir, so the sample is a uniform `cap`-row draw from the
    /// operator's *actual* input — a selective `WHERE` shrinks the
    /// population, not the sample, and every pre-filter point is a real
    /// input row (the soundness requirement). The reported population is
    /// exact (rows surviving the chain). Costs one pass of the chain's
    /// expressions over the base rows, the same order of work one
    /// execution of those operators performs anyway.
    ///
    /// Returns `None` when the input shape is not sampleable — joins,
    /// aggregates, and nested skylines reshape rows beyond plan-time
    /// evaluation, and a `LIMIT` drops rows the sample might contain —
    /// in which case the adaptive planner falls back to the static knobs.
    fn sample_input(&self, plan: &LogicalPlan, cap: usize, seed: u64) -> Option<(Vec<Row>, usize)> {
        enum Step<'p> {
            Filter(&'p Expr),
            Project(&'p [Expr]),
        }
        // Walk down to the base relation, collecting the transforms.
        // SubqueryAlias/Sort/Distinct are value-preserving: every sampled
        // row's dimension values still occur in the node's output.
        let mut steps: Vec<Step<'_>> = Vec::new();
        let mut node = plan;
        // Disk tables are sampled through their footer reservoir — a
        // uniform whole-table draw written during the single writer pass —
        // so planning costs zero block I/O. The filtered population is
        // then estimated by scaling the sample's survivor fraction to the
        // file's exact row count.
        let mut disk_scale: Option<(usize, u64)> = None;
        let base_rows: Arc<Vec<Row>> = loop {
            match node {
                LogicalPlan::TableScan { name, .. } => {
                    if let Some(table) = self.source.disk_table(name) {
                        let sample = Arc::clone(table.sample());
                        disk_scale = Some((sample.len(), table.total_rows()));
                        break sample;
                    }
                    break self.source.table_rows(name)?;
                }
                LogicalPlan::Values { rows, .. } => break Arc::clone(rows),
                LogicalPlan::Filter { predicate, input } => {
                    steps.push(Step::Filter(predicate));
                    node = input;
                }
                LogicalPlan::Projection { exprs, input } => {
                    steps.push(Step::Project(exprs));
                    node = input;
                }
                LogicalPlan::SubqueryAlias { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Distinct { input } => node = input,
                _ => return None,
            }
        };
        steps.reverse(); // innermost transform first
        let mut reservoir = sparkline_common::stats::Reservoir::new(cap, seed);
        'rows: for row in base_rows.iter() {
            let mut row = row.clone();
            for step in &steps {
                match step {
                    Step::Filter(predicate) => match predicate.evaluate(&row) {
                        Ok(Value::Boolean(true)) => {}
                        Ok(_) => continue 'rows,
                        Err(_) => return None,
                    },
                    Step::Project(exprs) => {
                        let values: std::result::Result<Vec<Value>, _> =
                            exprs.iter().map(|e| e.evaluate(&row)).collect();
                        row = Row::new(values.ok()?);
                    }
                }
            }
            reservoir.push(row);
        }
        let survivors = reservoir.seen();
        let total = match disk_scale {
            Some((sample_len, total_rows)) if sample_len > 0 => {
                ((survivors as u64).saturating_mul(total_rows) / sample_len as u64) as usize
            }
            Some(_) => 0,
            None => survivors,
        };
        Some((reservoir.into_rows(), total))
    }

    /// The disk table a skyline input resolves to when nothing between
    /// the operator and the scan reshapes rows or changes the column
    /// space (aliases, sorts, and DISTINCT are value-preserving).
    fn bare_disk_table(&self, mut node: &LogicalPlan) -> Option<Arc<sparkline_storage::DiskTable>> {
        loop {
            match node {
                LogicalPlan::TableScan { name, .. } => return self.source.disk_table(name),
                LogicalPlan::SubqueryAlias { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Distinct { input } => node = input,
                _ => return None,
            }
        }
    }

    fn plan_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        join_type: JoinType,
        condition: &JoinCondition,
    ) -> Result<Arc<dyn ExecutionPlan>> {
        let left_exec = self.create(left)?;
        let right_exec = self.create(right)?;
        let left_len = left.schema()?.len();
        let on = match condition {
            JoinCondition::On(e) => Some(e.clone()),
            JoinCondition::None => None,
            JoinCondition::Using(_) => return Err(Error::internal("USING survived analysis")),
        };
        // Equality pairs enable a hash join for inner/left-outer joins.
        if matches!(join_type, JoinType::Inner | JoinType::LeftOuter) {
            if let Some(on) = &on {
                let (keys, residual) = split_equi_condition(on, left_len);
                if !keys.is_empty() {
                    return Ok(Arc::new(HashJoinExec::new(
                        left_exec, right_exec, keys, residual, join_type,
                    )));
                }
            }
        }
        Ok(Arc::new(NestedLoopJoinExec::new(
            left_exec, right_exec, on, join_type,
        )))
    }

    /// The paper's Listing 8: select skyline nodes for the physical plan.
    fn plan_skyline(
        &self,
        distinct: bool,
        complete: bool,
        dims: &[SkylineDimension],
        input: &LogicalPlan,
    ) -> Result<Arc<dyn ExecutionPlan>> {
        let mut input_exec = self.create(input)?;
        let input_schema = input.schema()?;

        // Resolve dimensions to row positions. Computed dimensions (e.g.
        // `price / accommodates MIN`) are appended as extra columns by a
        // projection and stripped again afterwards.
        let base_len = input_schema.len();
        let mut extra_exprs: Vec<Expr> = Vec::new();
        let mut resolved: Vec<SkylineDim> = Vec::new();
        let mut skyline_nullable = false;
        for d in dims {
            let (_, nullable) = d.child.data_type_and_nullable(&input_schema)?;
            skyline_nullable |= nullable;
            match &d.child {
                Expr::BoundColumn(c) => resolved.push(SkylineDim::new(c.index, d.ty)),
                computed => {
                    let index = base_len + extra_exprs.len();
                    extra_exprs.push(computed.clone());
                    resolved.push(SkylineDim::new(index, d.ty));
                }
            }
        }
        let needs_wrap = !extra_exprs.is_empty();
        if needs_wrap {
            let mut exprs: Vec<Expr> = (0..base_len)
                .map(|i| {
                    Expr::BoundColumn(BoundColumn {
                        index: i,
                        field: input_schema.field(i).clone(),
                    })
                })
                .collect();
            let mut fields = input_schema.fields().to_vec();
            for (k, e) in extra_exprs.iter().enumerate() {
                fields.push(
                    e.to_field(&input_schema)?
                        .with_name(format!("__skyline_dim_{k}")),
                );
                exprs.push(e.clone());
            }
            input_exec = Arc::new(ProjectExec::new(
                exprs,
                Schema::new(fields).into_ref(),
                input_exec,
            ));
        }

        let spec = SkylineSpec {
            dims: resolved,
            distinct,
        };

        // Strategy selection: algorithm family, local-phase partitioning,
        // and global merge are fixed in one place from the session
        // configuration and the skyline's plan metadata (Listing 8,
        // extended — see `sparkline_common::strategy`). Under the
        // `Adaptive` strategy a seeded reservoir sample of the input
        // additionally supplies dataset statistics (and, from the same
        // sample, the representative pre-filter points); the sampling is
        // deterministic per session config, so repeated `EXPLAIN`s of one
        // query agree on the chosen plan.
        let meta = SkylineMeta::new(&spec, skyline_nullable, complete);
        let sample = if self.config.skyline_strategy == SkylineStrategy::Adaptive {
            self.sample_input(input, self.config.sample_size, self.config.sample_seed)
                .map(|(mut rows, total)| {
                    // Mirror the computed-dimension wrapper on the sample
                    // so the resolved dim indices stay valid.
                    if needs_wrap {
                        rows.retain_mut(|row| {
                            let mut values = row.values().to_vec();
                            for e in &extra_exprs {
                                match e.evaluate(row) {
                                    Ok(v) => values.push(v),
                                    Err(_) => return false,
                                }
                            }
                            *row = Row::new(values);
                            true
                        });
                    }
                    (rows, total)
                })
        } else {
            None
        };
        let mut sample_stats = sample
            .as_ref()
            .map(|(rows, total)| DatasetStats::from_sample(rows, *total, &spec));
        // Footer-exact refinement: a skyline directly over a disk scan
        // (dims bound to scan columns, no filter/projection between) gets
        // its per-dimension min/max and NULL fractions from the block
        // directory's aggregates — exact whole-table figures, zero I/O —
        // instead of the sample estimates.
        if !needs_wrap {
            if let (Some(stats), Some(table)) = (sample_stats.as_mut(), self.bare_disk_table(input))
            {
                let agg = table.column_stats();
                let total = table.total_rows();
                stats.total_rows = total as usize;
                for (k, dim) in spec.dims.iter().enumerate() {
                    if let Some(col) = agg.get(dim.index) {
                        stats.per_dim[k].min = col.min;
                        stats.per_dim[k].max = col.max;
                        stats.per_dim[k].null_fraction = if total == 0 {
                            0.0
                        } else {
                            (col.nulls + col.non_numeric) as f64 / total as f64
                        };
                    }
                }
            }
        }
        let choice = match &sample_stats {
            Some(stats) => SkylinePlan::select_adaptive(self.config, &meta, stats),
            None => SkylinePlan::select(self.config, &meta),
        };

        let mut result: Arc<dyn ExecutionPlan> = if choice.use_complete {
            // Representative pre-filter (adaptive plans): discard tuples
            // strictly dominated by the sample skyline during the scan,
            // before the exchange and the local windows ever see them.
            let mut input_exec = input_exec;
            if choice.prefilter_max_points > 0 {
                if let Some((rows, _)) = &sample {
                    // Cap the sample-skyline computation: a few hundred
                    // rows already saturate a <=64-point budget, and the
                    // plan-time BNL pass is O(rows × window). Re-sample
                    // (seeded) rather than slicing a prefix — the sample
                    // preserves input order when the table fits the
                    // reservoir, and a prefix of a sorted table would
                    // yield a one-sided filter.
                    const PREFILTER_SAMPLE_CAP: usize = 512;
                    let capped;
                    let filter_input: &[Row] = if rows.len() > PREFILTER_SAMPLE_CAP {
                        capped = reservoir_sample(
                            rows,
                            PREFILTER_SAMPLE_CAP,
                            self.config.sample_seed.wrapping_add(1),
                        );
                        &capped
                    } else {
                        rows
                    };
                    let points = sparkline_skyline::representative_points(
                        filter_input,
                        &spec,
                        choice.prefilter_max_points,
                    );
                    if !points.is_empty() {
                        // Dominance-based data skipping: hand the same
                        // representative points to a disk scan reachable
                        // through value-preserving operators (the walk
                        // stops at projections, which change the column
                        // space). A block whose best corner is strictly
                        // dominated by a point is then skipped unread —
                        // sound because the complete relation is
                        // transitive (see `sparkline_storage`'s crate
                        // docs; `DominanceSkip::from_points` additionally
                        // refuses DIFF dimensions).
                        if self.config.disk_dominance_skipping {
                            if let Some(slot) = crate::find_dominance_skip_slot(input_exec.as_ref())
                            {
                                if let Some(skip) = crate::scan_disk::DominanceSkip::from_points(
                                    &spec.dims,
                                    &points,
                                    choice.kernel,
                                ) {
                                    let _ = slot.set(skip);
                                }
                            }
                        }
                        input_exec = Arc::new(
                            SkylinePreFilterExec::new(spec.clone(), points, rows.len(), input_exec)
                                .with_kernel(choice.kernel),
                        );
                    }
                }
            }
            // Optional pluggable redistribution before the local phase
            // (the paper's default inherits the distribution).
            let sample_rows = if choice.adaptive {
                sample.as_ref().map_or(0, |(rows, _)| rows.len())
            } else {
                0
            };
            let local_input: Arc<dyn ExecutionPlan> =
                match self.partitioner_for(choice.partitioning, &spec, choice.grid_cells_per_dim) {
                    Some(partitioner) if choice.distributed => Arc::new(
                        ExchangeExec::custom(partitioner, input_exec).with_sample_rows(sample_rows),
                    ),
                    _ => input_exec,
                };
            let local: Arc<dyn ExecutionPlan> = if !choice.distributed {
                local_input
            } else if choice.use_sfs {
                Arc::new(
                    LocalSkylineExec::sort_filter(spec.clone(), local_input)
                        .with_kernel(choice.kernel),
                )
            } else {
                Arc::new(
                    LocalSkylineExec::new(spec.clone(), false, local_input)
                        .with_kernel(choice.kernel),
                )
            };
            // The flat merge needs the `AllTuples` gather the paper
            // describes; the hierarchical merge consumes the local
            // skylines' distribution directly and fans merge rounds over
            // the executor pool.
            let (global_input, merge): (Arc<dyn ExecutionPlan>, MergeStrategy) = match choice.merge
            {
                MergeStrategy::Flat => (Arc::new(ExchangeExec::single(local)), MergeStrategy::Flat),
                hierarchical => (local, hierarchical),
            };
            let global = if choice.use_sfs {
                GlobalSkylineExec::sort_filter(spec, global_input)
            } else {
                GlobalSkylineExec::new(spec, global_input)
            };
            Arc::new(global.with_merge(merge).with_kernel(choice.kernel))
        } else {
            // §5.7: distribute by null bitmap, then the global phase —
            // the paper's plan (per-class local skylines + an all-pairs
            // pass on one executor) when flat, or the deferred-deletion
            // tree merge consuming the exchange's distribution directly:
            // its leaf builders *are* the per-class local phase (plus the
            // cross-class closure), so a separate `LocalSkylineExec`
            // would only repeat the window work.
            let redistributed = Arc::new(ExchangeExec::new(
                ExchangeMode::NullBitmap(spec.clone()),
                input_exec,
            ));
            // Adaptive plans surface *why* the merge was chosen or refused
            // — the per-dimension NULL fractions now drive strategy, not
            // just the Listing 8 semantics decision.
            let note = match (&sample_stats, choice.adaptive) {
                (Some(stats), true) => Some(match choice.merge {
                    MergeStrategy::Flat => format!(
                        "adaptive: flat (max NULL fraction {:.2} in {} sampled rows)",
                        stats.max_null_fraction(),
                        stats.sample_rows,
                    ),
                    MergeStrategy::Hierarchical { .. } => format!(
                        "adaptive: tree (max NULL fraction {:.2} in {} sampled rows, {} executors)",
                        stats.max_null_fraction(),
                        stats.sample_rows,
                        self.config.num_executors,
                    ),
                }),
                _ => None,
            };
            let (global_input, merge): (Arc<dyn ExecutionPlan>, MergeStrategy) = match choice.merge
            {
                MergeStrategy::Flat => {
                    let local = Arc::new(
                        LocalSkylineExec::new(spec.clone(), true, redistributed)
                            .with_kernel(choice.kernel),
                    );
                    (Arc::new(ExchangeExec::single(local)), MergeStrategy::Flat)
                }
                hierarchical => (redistributed, hierarchical),
            };
            Arc::new(
                IncompleteGlobalSkylineExec::new(spec, global_input)
                    .with_merge(merge)
                    .with_kernel(choice.kernel)
                    .with_plan_note(note),
            )
        };

        if needs_wrap {
            let exprs: Vec<Expr> = (0..base_len)
                .map(|i| {
                    Expr::BoundColumn(BoundColumn {
                        index: i,
                        field: input_schema.field(i).clone(),
                    })
                })
                .collect();
            result = Arc::new(ProjectExec::new(exprs, Arc::clone(&input_schema), result));
        }
        Ok(result)
    }
}

/// Split a join condition into hashable equality key pairs and a residual
/// predicate.
fn split_equi_condition(on: &Expr, left_len: usize) -> (Vec<(usize, usize)>, Option<Expr>) {
    fn conjuncts(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::BinaryOp {
                left,
                op: BinaryOp::And,
                right,
            } => {
                conjuncts(left, out);
                conjuncts(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    let mut all = Vec::new();
    conjuncts(on, &mut all);
    let mut keys = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for c in all {
        if let Expr::BinaryOp {
            left,
            op: BinaryOp::Eq,
            right,
        } = &c
        {
            if let (Expr::BoundColumn(a), Expr::BoundColumn(b)) = (left.as_ref(), right.as_ref()) {
                if a.index < left_len && b.index >= left_len {
                    keys.push((a.index, b.index - left_len));
                    continue;
                }
                if b.index < left_len && a.index >= left_len {
                    keys.push((b.index, a.index - left_len));
                    continue;
                }
            }
        }
        residual.push(c);
    }
    let residual = residual.into_iter().reduce(|a, b| a.and(b));
    (keys, residual)
}

/// Compile an `Aggregate`'s result expressions: extract the distinct
/// aggregate calls and rewrite each result expression against the internal
/// row layout `[group values..., aggregate values...]`.
pub fn compile_aggregate(
    group_exprs: &[Expr],
    result_exprs: &[Expr],
    input_schema: &Schema,
) -> Result<(Vec<AggCall>, Vec<Expr>)> {
    fn strip(e: &Expr) -> &Expr {
        match e {
            Expr::Alias { expr, .. } => strip(expr),
            other => other,
        }
    }
    let group_len = group_exprs.len();
    let mut calls: Vec<AggCall> = Vec::new();
    let mut rewritten = Vec::with_capacity(result_exprs.len());
    for expr in result_exprs {
        let input_schema = input_schema.clone();
        let group_fields: Vec<sparkline_common::Field> = group_exprs
            .iter()
            .map(|g| g.to_field(&input_schema))
            .collect::<Result<_>>()?;
        let new_expr = expr.clone().transform_down(&mut |node| {
            // A subtree equal to a group expression becomes a reference to
            // the group-key slot.
            if let Some(i) = group_exprs.iter().position(|g| strip(g) == strip(&node)) {
                return Ok(Expr::BoundColumn(BoundColumn {
                    index: i,
                    field: group_fields[i].clone(),
                }));
            }
            // An aggregate call becomes a reference to its accumulator slot.
            if let Expr::Aggregate { func, arg } = &node {
                let arg_expr = arg.as_deref().cloned();
                let input_type = match &arg_expr {
                    Some(a) => a.data_type_and_nullable(&input_schema)?.0,
                    None => DataType::Int64,
                };
                let position = calls
                    .iter()
                    .position(|c| c.func == *func && c.arg == arg_expr)
                    .unwrap_or_else(|| {
                        calls.push(AggCall {
                            func: *func,
                            arg: arg_expr.clone(),
                            input_type,
                        });
                        calls.len() - 1
                    });
                let out_type = func.output_type(input_type);
                return Ok(Expr::BoundColumn(BoundColumn {
                    index: group_len + position,
                    field: sparkline_common::Field::new(
                        node.output_name(),
                        out_type,
                        !matches!(func, AggregateFunction::Count),
                    ),
                }));
            }
            Ok(node)
        })?;
        rewritten.push(new_expr);
    }
    Ok((calls, rewritten))
}

/// Helper for callers (core, tests): execute a physical plan and gather
/// all rows.
pub fn collect(
    plan: &Arc<dyn ExecutionPlan>,
    ctx: &sparkline_exec::TaskContext,
) -> Result<Vec<Row>> {
    let parts = plan.execute(ctx)?;
    ctx.metrics.rows_output.store(
        sparkline_exec::partition::total_rows(&parts) as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
    Ok(sparkline_exec::partition::flatten(parts))
}

/// Schema helper re-exported for `core`.
pub fn output_schema(plan: &LogicalPlan) -> Result<SchemaRef> {
    plan.schema()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{SkylineStrategy, Value};
    use sparkline_exec::TaskContext;
    use std::collections::HashMap;

    struct MapSource(HashMap<String, Arc<Vec<Row>>>);

    impl ExecTableSource for MapSource {
        fn table_rows(&self, name: &str) -> Option<Arc<Vec<Row>>> {
            self.0.get(&name.to_ascii_lowercase()).cloned()
        }
    }

    fn hotels_scan() -> (LogicalPlan, MapSource) {
        let schema = Schema::new(vec![
            sparkline_common::Field::qualified("hotels", "price", DataType::Int64, false),
            sparkline_common::Field::qualified("hotels", "rating", DataType::Int64, false),
        ])
        .into_ref();
        let rows: Vec<Row> = [(50, 9), (60, 9), (40, 5), (70, 10), (45, 9)]
            .iter()
            .map(|&(p, r)| Row::new(vec![Value::Int64(p), Value::Int64(r)]))
            .collect();
        let mut tables = HashMap::new();
        tables.insert("hotels".to_string(), Arc::new(rows));
        (
            LogicalPlan::TableScan {
                name: "hotels".into(),
                schema,
            },
            MapSource(tables),
        )
    }

    fn dim(
        plan: &LogicalPlan,
        index: usize,
        ty: sparkline_common::SkylineType,
    ) -> SkylineDimension {
        let schema = plan.schema().unwrap();
        SkylineDimension::new(
            Expr::BoundColumn(BoundColumn {
                index,
                field: schema.field(index).clone(),
            }),
            ty,
        )
    }

    #[test]
    fn skyline_plan_selects_complete_nodes_listing_8() {
        use sparkline_common::SkylineType;
        let (scan, source) = hotels_scan();
        let logical = LogicalPlan::Skyline {
            distinct: false,
            complete: false,
            dims: vec![
                dim(&scan, 0, SkylineType::Min),
                dim(&scan, 1, SkylineType::Max),
            ],
            input: Arc::new(scan),
        };
        let config = SessionConfig::default();
        let planner = PhysicalPlanner::new(&config, &source);
        let physical = planner.create(&logical).unwrap();
        let display = crate::display_physical(&physical);
        // Non-nullable dims => complete algorithm even without COMPLETE.
        assert!(display.contains("GlobalSkylineExec"), "{display}");
        assert!(display.contains("LocalSkylineExec"), "{display}");
        assert!(display.contains("ExchangeExec [AllTuples]"), "{display}");
        assert!(!display.contains("Incomplete"), "{display}");

        let ctx = TaskContext::new(3);
        let rows = collect(&physical, &ctx).unwrap();
        // Skyline of the hotel data: (40,5) is dominated by nothing? It has
        // min price. (70,10) max rating. (45,9) dominates (50,9)/(60,9).
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn incomplete_strategy_changes_physical_nodes() {
        use sparkline_common::SkylineType;
        let (scan, source) = hotels_scan();
        let logical = LogicalPlan::Skyline {
            distinct: false,
            complete: false,
            dims: vec![
                dim(&scan, 0, SkylineType::Min),
                dim(&scan, 1, SkylineType::Max),
            ],
            input: Arc::new(scan),
        };
        let config =
            SessionConfig::default().with_skyline_strategy(SkylineStrategy::DistributedIncomplete);
        let planner = PhysicalPlanner::new(&config, &source);
        let physical = planner.create(&logical).unwrap();
        let display = crate::display_physical(&physical);
        assert!(display.contains("IncompleteGlobalSkylineExec"), "{display}");
        assert!(display.contains("NullBitmap"), "{display}");
        // Same answer as the complete plan on complete data.
        let ctx = TaskContext::new(3);
        assert_eq!(collect(&physical, &ctx).unwrap().len(), 3);
    }

    #[test]
    fn non_distributed_strategy_skips_local_phase() {
        use sparkline_common::SkylineType;
        let (scan, source) = hotels_scan();
        let logical = LogicalPlan::Skyline {
            distinct: false,
            complete: true,
            dims: vec![dim(&scan, 0, SkylineType::Min)],
            input: Arc::new(scan),
        };
        let config =
            SessionConfig::default().with_skyline_strategy(SkylineStrategy::NonDistributedComplete);
        let planner = PhysicalPlanner::new(&config, &source);
        let physical = planner.create(&logical).unwrap();
        let display = crate::display_physical(&physical);
        assert!(!display.contains("LocalSkylineExec"), "{display}");
        assert!(display.contains("GlobalSkylineExec"), "{display}");
    }

    #[test]
    fn computed_dimension_gets_projection_wrap() {
        use sparkline_common::SkylineType;
        let (scan, source) = hotels_scan();
        let schema = scan.schema().unwrap();
        let computed = Expr::BoundColumn(BoundColumn {
            index: 0,
            field: schema.field(0).clone(),
        })
        .binary(
            BinaryOp::Plus,
            Expr::BoundColumn(BoundColumn {
                index: 1,
                field: schema.field(1).clone(),
            }),
        );
        let logical = LogicalPlan::Skyline {
            distinct: false,
            complete: true,
            dims: vec![SkylineDimension::new(computed, SkylineType::Min)],
            input: Arc::new(scan),
        };
        let config = SessionConfig::default();
        let planner = PhysicalPlanner::new(&config, &source);
        let physical = planner.create(&logical).unwrap();
        assert_eq!(physical.schema().len(), 2, "wrapper restores the schema");
        let ctx = TaskContext::new(2);
        let rows = collect(&physical, &ctx).unwrap();
        // min(price+rating) = 45 for (40,5): single optimum row.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int64(40));
    }

    #[test]
    fn equi_condition_split() {
        let a = Expr::BoundColumn(BoundColumn {
            index: 0,
            field: sparkline_common::Field::new("a", DataType::Int64, false),
        });
        let b = Expr::BoundColumn(BoundColumn {
            index: 2,
            field: sparkline_common::Field::new("b", DataType::Int64, false),
        });
        let cond = a.clone().eq(b.clone()).and(a.clone().lt(b.clone()));
        let (keys, residual) = split_equi_condition(&cond, 2);
        assert_eq!(keys, vec![(0, 0)]);
        assert!(residual.is_some());
        let (keys, residual) = split_equi_condition(&a.lt(b), 2);
        assert!(keys.is_empty());
        assert!(residual.is_some());
    }

    #[test]
    fn aggregate_compilation_dedups_calls() {
        let input_schema = Schema::new(vec![
            sparkline_common::Field::new("k", DataType::Int64, false),
            sparkline_common::Field::new("v", DataType::Int64, true),
        ]);
        let k = Expr::BoundColumn(BoundColumn {
            index: 0,
            field: input_schema.field(0).clone(),
        });
        let v = Expr::BoundColumn(BoundColumn {
            index: 1,
            field: input_schema.field(1).clone(),
        });
        let sum = Expr::Aggregate {
            func: AggregateFunction::Sum,
            arg: Some(Box::new(v.clone())),
        };
        // SELECT k, sum(v) AS total, sum(v) + count(*) FROM ... GROUP BY k
        let results = vec![
            k.clone(),
            sum.clone().alias("total"),
            sum.clone().binary(
                BinaryOp::Plus,
                Expr::Aggregate {
                    func: AggregateFunction::Count,
                    arg: None,
                },
            ),
        ];
        let (calls, rewritten) =
            compile_aggregate(std::slice::from_ref(&k), &results, &input_schema).unwrap();
        assert_eq!(calls.len(), 2, "sum(v) deduplicated");
        // Internal layout: [k, sum, count].
        assert_eq!(rewritten[0].to_string(), "k#0");
        assert_eq!(rewritten[1].to_string(), "sum(v#1)#1 AS total");
        assert_eq!(rewritten[2].to_string(), "(sum(v#1)#1 + count(*)#2)");
    }
}
