//! Physical skyline operators (paper §5.5–§5.7):
//!
//! * [`LocalSkylineExec`] — distributed local skyline: each executor runs
//!   the Block-Nested-Loop algorithm on its partition. In incomplete mode
//!   it additionally groups the partition's tuples by null bitmap first, so
//!   correctness never depends on how the exchange mapped bitmaps to
//!   executors (Lemma 5.1 applies per bitmap class).
//! * [`GlobalSkylineExec`] — complete-data global skyline over the local
//!   skylines: either the paper's flat single-executor pass (`AllTuples`
//!   distribution) or the hierarchical k-way tree merge that fans merge
//!   rounds over the executor pool (see [`MergeStrategy`]).
//! * [`IncompleteGlobalSkylineExec`] — global skyline over the per-class
//!   local skylines of incomplete data: either the paper's single-executor
//!   all-pairs pass with deferred deletion (immune to cyclic dominance,
//!   Appendix A) or the bitmap-class-aware hierarchical merge, whose
//!   partial results carry their deferred-deletion sets as traveling
//!   witnesses (see `sparkline_skyline::incomplete`).
//! * [`MinMaxFilterExec`] — the O(n) single-dimension rewrite target
//!   (§5.4): two linear passes, keeping optimum tuples (and NULL tuples,
//!   which are incomparable and hence skyline members).

use std::sync::Arc;

use sparkline_common::{
    DominanceKernel, Error, MergeStrategy, QueryControl, Result, Row, SchemaRef, SkylineSpec,
    Value, CONTROL_CHECK_ROWS,
};
use sparkline_exec::{
    partition::flatten, stream::breaker_streams, FaultSite, InFlightRows, Partition,
    PartitionStream, TaskContext,
};
use sparkline_plan::{Expr, MinMaxDirection};
use sparkline_skyline::{
    bnl_skyline_into_kernel, incomplete_global_skyline, kernel_label,
    merge_incomplete_partials_kernel, sfs_skyline_kernel, BnlBuilder, DominanceChecker,
    GroupedBnlBuilder, IncompletePartial, IncompletePartialBuilder, RepresentativeFilter,
    SkylineStats,
};

use crate::ExecutionPlan;

/// The incremental consumer of one skyline phase: input batches are fed
/// straight into the phase's algorithm state — the columnar kernel's
/// encode-once BNL window, the per-bitmap-class window map, or (for the
/// sort-based variants, which inherently need all rows) a plain buffer.
enum SkylineSink {
    /// Complete-data BNL window (scalar or columnar).
    Bnl(BnlBuilder),
    /// Sort-Filter-Skyline: buffers, then sorts and scans at finish.
    Sfs {
        rows: Vec<Row>,
        checker: DominanceChecker,
        kernel: DominanceKernel,
    },
    /// Incomplete local phase: one BNL window per null-bitmap class.
    Grouped(GroupedBnlBuilder),
    /// Incomplete global phase: buffers for the all-pairs deferred-
    /// deletion pass.
    AllPairs {
        rows: Vec<Row>,
        checker: DominanceChecker,
    },
}

impl SkylineSink {
    /// Fold one batch into the phase state, checking the query control at
    /// [`CONTROL_CHECK_ROWS`] granularity inside the window sinks (whose
    /// admission loops do the dominance work; the buffering sinks only
    /// append and rely on the per-batch check in the stream loop).
    fn push_batch_checked(&mut self, batch: Vec<Row>, control: &QueryControl) -> Result<()> {
        match self {
            SkylineSink::Bnl(b) => b.push_batch_checked(batch, control),
            SkylineSink::Grouped(g) => g.push_batch_checked(batch, control),
            SkylineSink::Sfs { rows, .. } | SkylineSink::AllPairs { rows, .. } => {
                rows.extend(batch);
                Ok(())
            }
        }
    }

    /// Rows currently buffered (the phase's working-set size — for the
    /// BNL sinks this is the running skyline, not the consumed input).
    fn buffered(&self) -> usize {
        match self {
            SkylineSink::Bnl(b) => b.window_len(),
            SkylineSink::Grouped(g) => g.window_len(),
            SkylineSink::Sfs { rows, .. } | SkylineSink::AllPairs { rows, .. } => rows.len(),
        }
    }

    /// Whether the sink buffers its raw input (the sort-based and
    /// all-pairs variants) rather than folding it into a window.
    fn buffers_input(&self) -> bool {
        matches!(self, SkylineSink::Sfs { .. } | SkylineSink::AllPairs { .. })
    }

    fn finish(self, ctx: &TaskContext) -> Result<(Vec<Row>, SkylineStats)> {
        match self {
            SkylineSink::Bnl(b) => Ok(b.finish()),
            SkylineSink::Grouped(g) => Ok(g.finish()),
            SkylineSink::Sfs {
                rows,
                checker,
                kernel,
            } => {
                let mut stats = SkylineStats::default();
                let result = sfs_skyline_kernel(rows, &checker, &mut stats, kernel);
                Ok((result, stats))
            }
            SkylineSink::AllPairs { rows, checker } => {
                let mut stats = SkylineStats::default();
                let candidates = rows.len();
                let result = incomplete_global_with_deadline(rows, &checker, &mut stats, ctx)?;
                // Every dropped candidate carried a deferred-deletion flag
                // until this final filter.
                ctx.metrics
                    .add_deferred_deletions((candidates - result.len()) as u64);
                Ok((result, stats))
            }
        }
    }
}

/// One skyline phase as a stream: pull the input streams (in order) to
/// exhaustion feeding the sink, record the stats, then emit the resulting
/// skyline in batches. The in-flight gauge follows the sink's working
/// set, so a BNL phase charges only its window — the memory story that
/// makes the streamed local phase survive inputs the materialized model
/// cannot hold.
fn skyline_phase_stream(
    schema: SchemaRef,
    ctx: &TaskContext,
    part: usize,
    inputs: Vec<PartitionStream>,
    sink: SkylineSink,
) -> PartitionStream {
    let ctx = ctx.clone();
    let batch_size = ctx.batch_size.max(1);
    let mut input =
        sparkline_exec::stream::chain_streams(schema.clone(), Arc::clone(&ctx.metrics), inputs);
    let mut sink = Some(sink);
    let mut guard = InFlightRows::new(Arc::clone(&ctx.metrics), 0);
    // Byte accounting mirrors the row gauge: buffering sinks charge their
    // input as it accumulates, every sink charges its result while it is
    // being emitted. Growth is budget-checked: a phase whose buffer would
    // exceed the query's memory budget fails with `ResourceExhausted`
    // instead of allocating past the limit.
    let mut reservation = Some(ctx.memory.reserve(0));
    let mut seq = 0u64;
    let mut emit: Option<std::vec::IntoIter<Row>> = None;
    PartitionStream::new(schema, Arc::clone(&ctx.metrics), move || loop {
        if let Some(iter) = emit.as_mut() {
            let batch: Vec<Row> = iter.by_ref().take(batch_size).collect();
            if batch.is_empty() {
                guard.set(0);
                reservation.take();
                return Ok(None);
            }
            return Ok(Some(batch));
        }
        ctx.control.check()?;
        match input.next_batch()? {
            Some(batch) => {
                ctx.maybe_inject(FaultSite::SkylineSink, part, seq)?;
                seq += 1;
                let sink = sink
                    .as_mut()
                    .ok_or_else(|| Error::internal("skyline sink gone while input remains"))?;
                if sink.buffers_input() {
                    if let Some(r) = reservation.as_mut() {
                        ctx.try_grow(r, batch.iter().map(Row::estimated_bytes).sum())?;
                    }
                }
                sink.push_batch_checked(batch, &ctx.control)?;
                guard.set(sink.buffered());
            }
            None => {
                // The sink consumes its buffer into the result; release
                // the input reservation before charging the output so the
                // two are not double counted.
                reservation.take();
                let (rows, stats) = sink
                    .take()
                    .ok_or_else(|| Error::internal("skyline sink finished twice"))?
                    .finish(&ctx)?;
                record_stats(&ctx, &stats);
                guard.set(rows.len());
                reservation = Some(ctx.try_reserve(rows.iter().map(Row::estimated_bytes).sum())?);
                emit = Some(rows.into_iter());
            }
        }
    })
}

fn record_stats(ctx: &TaskContext, stats: &SkylineStats) {
    ctx.metrics.add_dominance_tests(stats.dominance_tests);
    ctx.metrics
        .add_dominance_breakdown(stats.batched_tests, stats.scalar_tests);
    ctx.metrics
        .add_kernel_breakdown(stats.simd_tests, stats.multi_candidate_passes);
    ctx.metrics.add_sfs_fallbacks(stats.sfs_fallbacks);
    ctx.metrics.observe_window(stats.max_window);
}

/// The EXPLAIN fragment naming the operator's compare kernel: empty for
/// the scalar path, `", vectorized: simd(avx2), lanes=8"`-style otherwise.
fn kernel_fragment(kernel: DominanceKernel) -> String {
    if kernel.is_vectorized() {
        format!(", vectorized: {}", kernel_label(kernel))
    } else {
        String::new()
    }
}

/// Builder-compat mapping of the old boolean knob onto the kernel enum.
fn kernel_from_flag(on: bool) -> DominanceKernel {
    if on {
        DominanceKernel::Auto
    } else {
        DominanceKernel::Scalar
    }
}

/// How a complete-data skyline phase computes its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkylineAlgo {
    /// Block-Nested-Loop window (the paper's algorithm, §5.6).
    Bnl,
    /// Sort-Filter-Skyline: presorted, insert-only window (the §7
    /// future-work extension).
    SortFilter,
}

/// Distributed local skyline phase.
#[derive(Debug)]
pub struct LocalSkylineExec {
    spec: SkylineSpec,
    incomplete: bool,
    algo: SkylineAlgo,
    kernel: DominanceKernel,
    input: Arc<dyn ExecutionPlan>,
}

impl LocalSkylineExec {
    /// Local skyline with the chosen dominance relation (BNL windows).
    pub fn new(spec: SkylineSpec, incomplete: bool, input: Arc<dyn ExecutionPlan>) -> Self {
        LocalSkylineExec {
            spec,
            incomplete,
            algo: SkylineAlgo::Bnl,
            kernel: DominanceKernel::Auto,
            input,
        }
    }

    /// Local Sort-Filter-Skyline (complete data only).
    pub fn sort_filter(spec: SkylineSpec, input: Arc<dyn ExecutionPlan>) -> Self {
        LocalSkylineExec {
            spec,
            incomplete: false,
            algo: SkylineAlgo::SortFilter,
            kernel: DominanceKernel::Auto,
            input,
        }
    }

    /// Choose scalar vs columnar dominance testing (builder-style).
    pub fn with_vectorized(self, on: bool) -> Self {
        self.with_kernel(kernel_from_flag(on))
    }

    /// Choose the compare kernel (builder-style).
    pub fn with_kernel(mut self, kernel: DominanceKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

impl ExecutionPlan for LocalSkylineExec {
    fn name(&self) -> &'static str {
        "LocalSkylineExec"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        let checker = if self.incomplete {
            DominanceChecker::incomplete(self.spec.clone())
        } else {
            DominanceChecker::complete(self.spec.clone())
        };
        Ok(inputs
            .into_iter()
            .enumerate()
            .map(|(part, input)| {
                let sink = if self.incomplete {
                    // Route by null bitmap inside the partition: within one
                    // class the restricted dominance relation is transitive,
                    // so plain BNL is sound (paper §5.7) — and because a
                    // class shares its NULL positions, every column is
                    // uniformly NULL or non-NULL, exactly what the columnar
                    // kernel encodes.
                    SkylineSink::Grouped(GroupedBnlBuilder::with_kernel(
                        checker.clone(),
                        self.kernel,
                    ))
                } else if self.algo == SkylineAlgo::SortFilter {
                    SkylineSink::Sfs {
                        rows: Vec::new(),
                        checker: checker.clone(),
                        kernel: self.kernel,
                    }
                } else {
                    SkylineSink::Bnl(BnlBuilder::with_kernel(checker.clone(), self.kernel))
                };
                skyline_phase_stream(self.schema(), ctx, part, vec![input], sink)
            })
            .collect())
    }

    fn describe(&self) -> String {
        format!(
            "LocalSkylineExec [{} dims, {}{}{}{}]",
            self.spec.dims.len(),
            if self.incomplete {
                "incomplete"
            } else {
                "complete"
            },
            if self.algo == SkylineAlgo::SortFilter {
                ", SFS"
            } else {
                ""
            },
            if self.spec.distinct { ", distinct" } else { "" },
            kernel_fragment(self.kernel),
        )
    }
}

/// Global skyline for complete data over the local skylines.
///
/// Two merge strategies (selected by the planner through
/// [`MergeStrategy`]):
///
/// * **Flat** — the paper's plan: a single BNL/SFS pass over everything,
///   fed one partition via an `AllTuples` exchange. The global phase runs
///   on one executor — the serial bottleneck of §6.4.
/// * **Hierarchical** — a k-way tree merge: partitions are combined in
///   groups of `fan_in` per round, each group on its own executor, until
///   one partition remains. Because BNL evictions are order-preserving
///   (`Vec::remove`), a BNL pass always yields the skyline members of its
///   input in arrival order — so the tree merge, which consumes groups in
///   partition order, is row-for-row identical to the flat merge no
///   matter how rounds interleave; only the wall-clock distribution of
///   the dominance tests changes. SFS merges yield the same *set* — the
///   final round re-sorts
///   by monotone score, but when `sfs_skyline`'s non-numeric fallback
///   engages, the fallback's BNL order depends on arrival order and may
///   differ from the flat plan's. Round and task counts are reported
///   through `exec::metrics`.
///
/// Input contract: the **hierarchical** merge requires every input
/// partition to already be a skyline (the planner guarantees this — a
/// `LocalSkylineExec` always sits below, and later rounds consume earlier
/// merge outputs), because each merge task seeds its BNL window with the
/// group's first partition unscanned. The **flat** merge keeps the
/// defensive any-input behavior: it re-scans everything, so correctness
/// does not depend on the planner having inserted the gather exchange.
#[derive(Debug)]
pub struct GlobalSkylineExec {
    spec: SkylineSpec,
    algo: SkylineAlgo,
    merge: MergeStrategy,
    kernel: DominanceKernel,
    input: Arc<dyn ExecutionPlan>,
}

impl GlobalSkylineExec {
    /// Flat global complete skyline; the planner feeds it a single
    /// partition via an `AllTuples` exchange.
    pub fn new(spec: SkylineSpec, input: Arc<dyn ExecutionPlan>) -> Self {
        GlobalSkylineExec {
            spec,
            algo: SkylineAlgo::Bnl,
            merge: MergeStrategy::Flat,
            kernel: DominanceKernel::Auto,
            input,
        }
    }

    /// Flat global Sort-Filter-Skyline.
    pub fn sort_filter(spec: SkylineSpec, input: Arc<dyn ExecutionPlan>) -> Self {
        GlobalSkylineExec {
            spec,
            algo: SkylineAlgo::SortFilter,
            merge: MergeStrategy::Flat,
            kernel: DominanceKernel::Auto,
            input,
        }
    }

    /// Choose the merge strategy (builder-style).
    pub fn with_merge(mut self, merge: MergeStrategy) -> Self {
        if let MergeStrategy::Hierarchical { fan_in } = merge {
            assert!(fan_in >= 2, "merge fan-in must be at least 2");
        }
        self.merge = merge;
        self
    }

    /// Choose scalar vs columnar dominance testing (builder-style).
    pub fn with_vectorized(self, on: bool) -> Self {
        self.with_kernel(kernel_from_flag(on))
    }

    /// Choose the compare kernel (builder-style).
    pub fn with_kernel(mut self, kernel: DominanceKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// One k-way merge task: BNL/SFS over the concatenated group.
///
/// With `seed_window` the first partition of the group — which the
/// caller guarantees to be a skyline already (a local skyline or the
/// result of an earlier merge round) — becomes the initial BNL window
/// without being re-scanned against itself. A skyline fed through a
/// BNL window passes unchanged in order, so the merged result is
/// row-for-row identical to the unseeded pass; only the wasted
/// self-tests disappear. (SFS re-sorts the whole group and cannot
/// seed.)
fn merge_group(
    ctx: &TaskContext,
    spec: &SkylineSpec,
    algo: SkylineAlgo,
    kernel: DominanceKernel,
    group: Vec<Partition>,
    seed_window: bool,
) -> Result<Partition> {
    ctx.control.check()?;
    let checker = DominanceChecker::complete(spec.clone());
    let mut stats = SkylineStats::default();
    let merged = if algo == SkylineAlgo::SortFilter {
        let rows = flatten(group);
        let reservation = ctx.try_reserve(rows.iter().map(Row::estimated_bytes).sum())?;
        let merged = sfs_skyline_kernel(rows, &checker, &mut stats, kernel);
        drop(reservation);
        merged
    } else {
        let mut parts = group.into_iter();
        let mut window: Partition = if seed_window {
            parts.next().unwrap_or_default()
        } else {
            Vec::new()
        };
        let rest: Vec<Row> = parts.flatten().collect();
        let bytes = window.iter().chain(&rest).map(Row::estimated_bytes).sum();
        let reservation = ctx.try_reserve(bytes)?;
        // Admit candidates in CONTROL_CHECK_ROWS chunks so a timeout or
        // cancel lands between multi-candidate kernel passes instead of
        // waiting out an entire merge task. BNL admission is sequential
        // per candidate, so the chunked result is row-for-row identical.
        let mut rest = rest.into_iter().peekable();
        while rest.peek().is_some() {
            ctx.control.check()?;
            let chunk: Vec<Row> = rest.by_ref().take(CONTROL_CHECK_ROWS).collect();
            bnl_skyline_into_kernel(chunk, &checker, &mut stats, &mut window, kernel);
        }
        drop(reservation);
        window
    };
    record_stats(ctx, &stats);
    Ok(merged)
}

/// The k-way round scheduler shared by the complete and incomplete
/// hierarchical merges: combine `parts` in groups of `fan_in` per round,
/// each group merged by `merge` on its own executor, until at most one
/// remains. A trailing singleton group is already a merged result —
/// carrying it over unchanged skips a useless re-scan, so only real merges
/// count as tasks (and toward `merge_rounds` / `max_merge_fanout`).
fn kway_merge_rounds<T: Send>(
    ctx: &TaskContext,
    mut parts: Vec<T>,
    fan_in: usize,
    merge: impl Fn(Vec<T>) -> Result<T> + Sync,
) -> Result<Option<T>> {
    let mut round = 0u64;
    while parts.len() > 1 {
        ctx.control.check()?;
        let groups: Vec<Vec<T>> = {
            let mut groups = Vec::with_capacity(parts.len().div_ceil(fan_in));
            let mut iter = parts.into_iter().peekable();
            while iter.peek().is_some() {
                groups.push(iter.by_ref().take(fan_in).collect());
            }
            groups
        };
        let merging = groups.iter().filter(|g| g.len() > 1).count();
        ctx.metrics.add_merge_round(merging);
        parts = ctx.runtime.map_indexed(groups, |gi, mut group| {
            if group.len() == 1 {
                return group
                    .pop()
                    .ok_or_else(|| Error::internal("empty merge group"));
            }
            // A lost merge task fails the stage; the consumer's retry
            // path recomputes the subtree from lineage.
            ctx.maybe_inject(FaultSite::Merge, gi, round)?;
            merge(group)
        })?;
        round += 1;
    }
    Ok(parts.pop())
}

impl ExecutionPlan for GlobalSkylineExec {
    fn name(&self) -> &'static str {
        "GlobalSkylineExec"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        match self.merge {
            MergeStrategy::Flat => {
                // The paper's plan: one pass over the gathered local
                // skylines on a single executor. Streamed, the pass feeds
                // input batches straight into an (unseeded) BNL window —
                // the gathered concatenation is *not* a skyline, and
                // correctness does not depend on the planner having
                // inserted the exchange — so the only buffered state is
                // the window itself. SFS must buffer: it re-sorts.
                let checker = DominanceChecker::complete(self.spec.clone());
                let sink = if self.algo == SkylineAlgo::SortFilter {
                    SkylineSink::Sfs {
                        rows: Vec::new(),
                        checker,
                        kernel: self.kernel,
                    }
                } else {
                    SkylineSink::Bnl(BnlBuilder::with_kernel(checker, self.kernel))
                };
                Ok(vec![skyline_phase_stream(
                    self.schema(),
                    ctx,
                    0,
                    inputs,
                    sink,
                )])
            }
            MergeStrategy::Hierarchical { fan_in } => {
                // A breaker: the input streams (each a local skyline
                // pipeline) are drained in parallel over the executor
                // pool, then merged in k-way rounds.
                let spec = self.spec.clone();
                let algo = self.algo;
                let kernel = self.kernel;
                let ctx2 = ctx.clone();
                let input_plan = Arc::clone(&self.input);
                Ok(breaker_streams(self.schema(), ctx, 1, move || {
                    // Transient faults in a local-skyline pipeline are
                    // recovered per partition: recompute only the failed
                    // stream from the input plan's lineage.
                    let expected = inputs.len();
                    let input = ctx2.drain_streams_retrying(inputs, |i| {
                        crate::recreate_partition_stream(input_plan.as_ref(), &ctx2, expected, i)
                    })?;
                    ctx2.control.check()?;
                    let parts: Vec<Partition> =
                        input.into_iter().filter(|p| !p.is_empty()).collect();
                    let merged = kway_merge_rounds(&ctx2, parts, fan_in, |group| {
                        // Every partition entering a merge round is a
                        // skyline (a local skyline or an earlier round's
                        // output): the first one seeds the window,
                        // encode-once.
                        merge_group(&ctx2, &spec, algo, kernel, group, true)
                    })?;
                    Ok(vec![merged.unwrap_or_default()])
                }))
            }
        }
    }

    fn describe(&self) -> String {
        let merge = match self.merge {
            MergeStrategy::Flat => String::new(),
            MergeStrategy::Hierarchical { fan_in } => {
                format!(", hierarchical fan-in {fan_in}")
            }
        };
        format!(
            "GlobalSkylineExec [{} dims{}{}{}{}]",
            self.spec.dims.len(),
            if self.algo == SkylineAlgo::SortFilter {
                ", SFS"
            } else {
                ""
            },
            if self.spec.distinct { ", distinct" } else { "" },
            merge,
            kernel_fragment(self.kernel),
        )
    }
}

/// Representative-point pre-filter (adaptive plans): tests every scanned
/// tuple against a small broadcast set of sample-skyline points and drops
/// the strictly dominated ones before they reach the exchange or any BNL
/// window — Ciaccia & Martinenghi's representative filtering, complementing
/// the grid partitioner's cell pruning exactly where the grid is weakest
/// (correlation structures no axis-aligned cell captures).
///
/// A pipelined narrow operator: each partition stream encodes the filter
/// set once into the columnar kernel (`sparkline_skyline::prefilter`) and
/// filters batch-at-a-time, so the stream model's memory story is
/// unchanged. Sound only under the complete-data relation — the planner
/// never inserts this node for the incomplete family (see the prefilter
/// module docs). Dropped rows flow into `prefilter_rows_dropped`; the
/// planner's sample size is surfaced as `sample_rows`.
#[derive(Debug)]
pub struct SkylinePreFilterExec {
    spec: SkylineSpec,
    points: Arc<Vec<Row>>,
    sample_rows: usize,
    kernel: DominanceKernel,
    input: Arc<dyn ExecutionPlan>,
}

impl SkylinePreFilterExec {
    /// Pre-filter with `points` (the capped sample skyline) computed by
    /// the planner from a `sample_rows`-row reservoir sample.
    pub fn new(
        spec: SkylineSpec,
        points: Vec<Row>,
        sample_rows: usize,
        input: Arc<dyn ExecutionPlan>,
    ) -> Self {
        SkylinePreFilterExec {
            spec,
            points: Arc::new(points),
            sample_rows,
            kernel: DominanceKernel::Auto,
            input,
        }
    }

    /// Choose scalar vs columnar dominance testing (builder-style).
    pub fn with_vectorized(self, on: bool) -> Self {
        self.with_kernel(kernel_from_flag(on))
    }

    /// Choose the compare kernel (builder-style).
    pub fn with_kernel(mut self, kernel: DominanceKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

impl ExecutionPlan for SkylinePreFilterExec {
    fn name(&self) -> &'static str {
        "SkylinePreFilterExec"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        ctx.metrics.note_sample_rows(self.sample_rows as u64);
        Ok(inputs
            .into_iter()
            .map(|mut input| {
                let mut filter = RepresentativeFilter::with_kernel(
                    self.points.as_ref().clone(),
                    &self.spec,
                    self.kernel,
                );
                let ctx = ctx.clone();
                PartitionStream::new(self.schema(), Arc::clone(&ctx.metrics), move || loop {
                    ctx.control.check()?;
                    let Some(batch) = input.next_batch()? else {
                        return Ok(None);
                    };
                    let mut stats = SkylineStats::default();
                    let (kept, dropped) = filter.retain_batch(batch, &mut stats);
                    record_stats(&ctx, &stats);
                    ctx.metrics.add_prefilter_dropped(dropped);
                    // Like FilterExec: keep pulling until something
                    // survives, so downstream never sees empty batches.
                    if !kept.is_empty() {
                        return Ok(Some(kept));
                    }
                })
            })
            .collect())
    }

    fn describe(&self) -> String {
        format!(
            "SkylinePreFilterExec [{} representative points from {} sampled rows{}]",
            self.points.len(),
            self.sample_rows,
            kernel_fragment(self.kernel),
        )
    }
}

/// Global skyline for (potentially) incomplete data (§5.7 / Appendix A).
///
/// Two merge strategies, mirroring [`GlobalSkylineExec`]:
///
/// * **Flat** — the paper's plan: every candidate is gathered onto one
///   executor (`AllTuples`) for the all-pairs deferred-deletion pass —
///   the engine's last serial bottleneck before this operator learned to
///   tree-merge.
/// * **Hierarchical** — the bitmap-class-aware tree merge: each input
///   partition is consumed incrementally into an
///   [`IncompletePartialBuilder`] (per-class BNL windows + cross-class
///   flag closure), and the resulting [`IncompletePartial`]s — per-class
///   candidate windows plus the deferred-deletion set that must keep
///   traveling as dominance witnesses — are combined in k-way rounds over
///   the executor pool. The leaf builders *fuse the local phase*: the
///   planner feeds this operator the null-bitmap exchange directly (no
///   `LocalSkylineExec` below, whose window work the leaves would only
///   repeat), and input that already is a per-class local skyline passes
///   through the leaf windows unchanged. Byte-identical to the flat pass
///   (same rows, same order — see `sparkline_skyline::incomplete` for the
///   argument); `merge_rounds` / `merge_tasks` / `deferred_deletions` /
///   `classes_merged` flow through `exec::metrics`.
#[derive(Debug)]
pub struct IncompleteGlobalSkylineExec {
    spec: SkylineSpec,
    merge: MergeStrategy,
    kernel: DominanceKernel,
    /// Planner-provided note on how the merge strategy was chosen
    /// (adaptive plans); rendered in EXPLAIN.
    plan_note: Option<String>,
    input: Arc<dyn ExecutionPlan>,
}

impl IncompleteGlobalSkylineExec {
    /// Flat global incomplete skyline; the planner feeds it a single
    /// partition via an `AllTuples` exchange.
    pub fn new(spec: SkylineSpec, input: Arc<dyn ExecutionPlan>) -> Self {
        IncompleteGlobalSkylineExec {
            spec,
            merge: MergeStrategy::Flat,
            kernel: DominanceKernel::Auto,
            plan_note: None,
            input,
        }
    }

    /// Choose the merge strategy (builder-style).
    pub fn with_merge(mut self, merge: MergeStrategy) -> Self {
        if let MergeStrategy::Hierarchical { fan_in } = merge {
            assert!(fan_in >= 2, "merge fan-in must be at least 2");
        }
        self.merge = merge;
        self
    }

    /// Choose scalar vs columnar dominance testing inside the tree merge
    /// (builder-style; the flat all-pairs pass is scalar either way).
    pub fn with_vectorized(self, on: bool) -> Self {
        self.with_kernel(kernel_from_flag(on))
    }

    /// Choose the compare kernel (builder-style).
    pub fn with_kernel(mut self, kernel: DominanceKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Attach the planner's merge-selection note for EXPLAIN.
    pub fn with_plan_note(mut self, note: Option<String>) -> Self {
        self.plan_note = note;
        self
    }
}

impl ExecutionPlan for IncompleteGlobalSkylineExec {
    fn name(&self) -> &'static str {
        "IncompleteGlobalSkylineExec"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        match self.merge {
            MergeStrategy::Flat => {
                // The all-pairs pass needs every candidate buffered; the
                // sink consumes the gathered stream batch-by-batch and
                // runs the deadline-chunked flag loop at finish.
                let sink = SkylineSink::AllPairs {
                    rows: Vec::new(),
                    checker: DominanceChecker::incomplete(self.spec.clone()),
                };
                Ok(vec![skyline_phase_stream(
                    self.schema(),
                    ctx,
                    0,
                    inputs,
                    sink,
                )])
            }
            MergeStrategy::Hierarchical { fan_in } => {
                let spec = self.spec.clone();
                let kernel = self.kernel;
                let ctx2 = ctx.clone();
                let input_plan = Arc::clone(&self.input);
                Ok(breaker_streams(self.schema(), ctx, 1, move || {
                    let checker = DominanceChecker::incomplete(spec.clone());
                    // Leaf phase (parallel over the pool): consume each
                    // input partition stream incrementally into a
                    // per-class partial. The builder fuses the local phase
                    // — its per-class windows plus one batch are the only
                    // buffered state while the stream drains, which the
                    // in-flight gauge charges like any other window sink.
                    // A transient fault mid-stream restarts only this
                    // leaf: the stream is recomputed from the input plan's
                    // lineage and the builder starts over, up to the
                    // context's retry budget.
                    let expected = inputs.len();
                    let mut parts: Vec<IncompletePartial> =
                        ctx2.runtime.map_indexed(inputs, |i, stream| {
                            sparkline_exec::retry_loop(
                                &ctx2.control,
                                ctx2.max_retries,
                                ctx2.retry_backoff,
                                stream,
                                |mut s| {
                                    consume_incomplete_partial(&ctx2, &checker, kernel, i, &mut s)
                                },
                                |_, _| {
                                    ctx2.metrics.add_retry_attempted();
                                    crate::recreate_partition_stream(
                                        input_plan.as_ref(),
                                        &ctx2,
                                        expected,
                                        i,
                                    )
                                },
                            )
                        })?;
                    parts.retain(|p| !p.is_empty());
                    // k-way rounds, exactly like the complete tree merge;
                    // deferred candidates travel with their partial.
                    let merged = kway_merge_rounds(&ctx2, parts, fan_in, |group| {
                        ctx2.control.check()?;
                        let mut stats = SkylineStats::default();
                        let mut iter = group.into_iter();
                        let mut acc = iter
                            .next()
                            .ok_or_else(|| Error::internal("empty merge group"))?;
                        for next in iter {
                            acc = merge_incomplete_partials_kernel(
                                acc, next, &checker, kernel, &mut stats,
                            );
                        }
                        record_stats(&ctx2, &stats);
                        Ok(acc)
                    })?;
                    let Some(root) = merged else {
                        return Ok(vec![Vec::new()]);
                    };
                    ctx2.metrics
                        .add_deferred_deletions(root.deferred_len() as u64);
                    ctx2.metrics.add_classes_merged(root.class_count() as u64);
                    Ok(vec![root.finish()])
                }))
            }
        }
    }

    fn describe(&self) -> String {
        let merge = match self.merge {
            MergeStrategy::Flat => String::new(),
            MergeStrategy::Hierarchical { fan_in } => {
                format!(", hierarchical fan-in {fan_in}")
            }
        };
        let note = match &self.plan_note {
            Some(note) => format!(", {note}"),
            None => String::new(),
        };
        format!(
            "IncompleteGlobalSkylineExec [{} dims{}{}{}{}]",
            self.spec.dims.len(),
            if self.spec.distinct { ", distinct" } else { "" },
            merge,
            if matches!(self.merge, MergeStrategy::Flat) {
                String::new()
            } else {
                kernel_fragment(self.kernel)
            },
            note,
        )
    }
}

/// Drain one input partition stream into an incomplete-skyline partial —
/// the leaf task of the bitmap-class-aware tree merge. Fault-injection
/// site `skyline-sink` fires here (per consumed batch), and the window
/// work runs control-checked at [`CONTROL_CHECK_ROWS`] granularity.
fn consume_incomplete_partial(
    ctx: &TaskContext,
    checker: &DominanceChecker,
    kernel: DominanceKernel,
    part: usize,
    stream: &mut PartitionStream,
) -> Result<IncompletePartial> {
    let mut builder = IncompletePartialBuilder::with_kernel(checker.clone(), kernel);
    let mut guard = InFlightRows::new(Arc::clone(&ctx.metrics), 0);
    let mut seq = 0u64;
    while let Some(batch) = stream.next_batch()? {
        ctx.control.check()?;
        ctx.maybe_inject(FaultSite::SkylineSink, part, seq)?;
        seq += 1;
        builder.push_batch_checked(batch, &ctx.control)?;
        guard.set(builder.window_len());
    }
    let (partial, stats) = builder.finish();
    record_stats(ctx, &stats);
    guard.set(partial.len());
    Ok(partial)
}

/// All-pairs global skyline in deadline-checked chunks.
fn incomplete_global_with_deadline(
    rows: Vec<Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    ctx: &TaskContext,
) -> Result<Vec<Row>> {
    // Small inputs: run directly.
    if rows.len() <= 2048 {
        ctx.control.check()?;
        return Ok(incomplete_global_skyline(rows, checker, stats));
    }
    // Large inputs: reuse the library routine but check the deadline
    // between row-blocks by replicating its flag loop.
    let n = rows.len();
    stats.max_window = stats.max_window.max(n);
    let mut dominated = vec![false; n];
    let distinct = checker.distinct();
    for i in 0..n {
        if i % 64 == 0 {
            ctx.control.check()?;
        }
        for j in (i + 1)..n {
            if dominated[i] && dominated[j] {
                continue;
            }
            stats.dominance_tests += 1;
            match checker.compare(&rows[i], &rows[j]) {
                sparkline_skyline::Dominance::Dominates => dominated[j] = true,
                sparkline_skyline::Dominance::DominatedBy => dominated[i] = true,
                sparkline_skyline::Dominance::Equal => {
                    if distinct && checker.identical_dims(&rows[i], &rows[j]) {
                        dominated[j] = true;
                    }
                }
                sparkline_skyline::Dominance::Incomparable => {}
            }
        }
    }
    Ok(rows
        .into_iter()
        .zip(dominated)
        .filter_map(|(row, dom)| (!dom).then_some(row))
        .collect())
}

/// Two-pass single-dimension optimum filter (§5.4 rewrite target).
#[derive(Debug)]
pub struct MinMaxFilterExec {
    expr: Expr,
    direction: MinMaxDirection,
    distinct: bool,
    input: Arc<dyn ExecutionPlan>,
}

impl MinMaxFilterExec {
    /// Filter keeping tuples that attain the optimum of `expr` (plus NULL
    /// tuples, which are incomparable under skyline semantics).
    pub fn new(
        expr: Expr,
        direction: MinMaxDirection,
        distinct: bool,
        input: Arc<dyn ExecutionPlan>,
    ) -> Self {
        MinMaxFilterExec {
            expr,
            direction,
            distinct,
            input,
        }
    }
}

/// Whether `a` beats `b` in the filter's direction.
fn minmax_better(direction: MinMaxDirection, a: &Value, b: &Value) -> bool {
    match a.sql_compare(b) {
        Some(ord) => match direction {
            MinMaxDirection::Min => ord == std::cmp::Ordering::Less,
            MinMaxDirection::Max => ord == std::cmp::Ordering::Greater,
        },
        None => false,
    }
}

impl ExecutionPlan for MinMaxFilterExec {
    fn name(&self) -> &'static str {
        "MinMaxFilterExec"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        // The filter needs two passes over its input, so it is a breaker:
        // the streamed input is drained (fanned over the executor pool)
        // and the two O(n) passes run on the buffer.
        let n_outputs = if self.distinct {
            1
        } else {
            inputs.len().max(1)
        };
        let expr = self.expr.clone();
        let direction = self.direction;
        let distinct = self.distinct;
        let ctx2 = ctx.clone();
        Ok(breaker_streams(self.schema(), ctx, n_outputs, move || {
            let input = ctx2.runtime.drain_streams(inputs)?;
            // Pass 1 (parallel): the best non-NULL value per partition.
            let bests: Vec<Option<Value>> =
                ctx2.runtime
                    .map_indexed(input.iter().collect::<Vec<_>>(), |_, part| {
                        ctx2.control.check()?;
                        let mut best: Option<Value> = None;
                        for row in part {
                            let v = expr.evaluate(row)?;
                            if v.is_null() {
                                continue;
                            }
                            let take = match &best {
                                None => true,
                                Some(b) => minmax_better(direction, &v, b),
                            };
                            if take {
                                best = Some(v);
                            }
                        }
                        Ok(best)
                    })?;
            let mut global_best: Option<Value> = None;
            for b in bests.into_iter().flatten() {
                let take = match &global_best {
                    None => true,
                    Some(g) => minmax_better(direction, &b, g),
                };
                if take {
                    global_best = Some(b);
                }
            }
            // Pass 2 (parallel): keep NULL tuples and optimum tuples.
            let mut out = ctx2.runtime.map_indexed(input, |_, part| {
                ctx2.control.check()?;
                let mut rows = Vec::new();
                for row in part {
                    let v = expr.evaluate(&row)?;
                    let keep = v.is_null()
                        || global_best
                            .as_ref()
                            .is_some_and(|b| v.sql_compare(b) == Some(std::cmp::Ordering::Equal));
                    if keep {
                        rows.push(row);
                    }
                }
                Ok(rows)
            })?;
            // DISTINCT: one representative per distinct dimension value —
            // at most one NULL tuple and one optimum tuple.
            if distinct {
                let rows = flatten(out);
                let mut null_rep: Option<Row> = None;
                let mut best_rep: Option<Row> = None;
                for row in rows {
                    let v = expr.evaluate(&row)?;
                    if v.is_null() {
                        null_rep.get_or_insert(row);
                    } else {
                        best_rep.get_or_insert(row);
                    }
                }
                out = vec![null_rep.into_iter().chain(best_rep).collect()];
            }
            Ok(out)
        }))
    }

    fn describe(&self) -> String {
        format!(
            "MinMaxFilterExec [{} {}{}]",
            self.direction,
            self.expr,
            if self.distinct { ", distinct" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::ExchangeExec;
    use crate::scan::ScanExec;
    use sparkline_common::{DataType, Field, Schema, SkylineDim};
    use sparkline_plan::BoundColumn;

    fn input(rows: Vec<Vec<Value>>) -> Arc<dyn ExecutionPlan> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, true),
        ])
        .into_ref();
        Arc::new(ScanExec::new(
            "t",
            Arc::new(rows.into_iter().map(Row::new).collect()),
            schema,
        ))
    }

    fn int_rows(data: &[(i64, i64)]) -> Vec<Vec<Value>> {
        data.iter()
            .map(|&(a, b)| vec![Value::Int64(a), Value::Int64(b)])
            .collect()
    }

    fn run(plan: &dyn ExecutionPlan, executors: usize) -> Vec<Row> {
        let ctx = TaskContext::new(executors);
        let mut rows = flatten(plan.execute(&ctx).unwrap());
        rows.sort_by_key(|r| r.to_string());
        rows
    }

    fn spec2() -> SkylineSpec {
        SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)])
    }

    #[test]
    fn two_phase_complete_plan_produces_skyline() {
        let data = int_rows(&[(1, 9), (2, 7), (3, 8), (4, 4), (5, 5), (6, 1), (7, 2)]);
        let local = Arc::new(LocalSkylineExec::new(spec2(), false, input(data)));
        let gathered = Arc::new(ExchangeExec::single(local));
        let global = GlobalSkylineExec::new(spec2(), gathered);
        let rows = run(&global, 3);
        assert_eq!(rows.len(), 4);
        // Same result with one executor.
        let data = int_rows(&[(1, 9), (2, 7), (3, 8), (4, 4), (5, 5), (6, 1), (7, 2)]);
        let local = Arc::new(LocalSkylineExec::new(spec2(), false, input(data)));
        let gathered = Arc::new(ExchangeExec::single(local));
        let global = GlobalSkylineExec::new(spec2(), gathered);
        assert_eq!(run(&global, 1).len(), 4);
    }

    #[test]
    fn incomplete_plan_handles_cycles() {
        // Appendix A cycle must yield an empty skyline.
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        // Build a 2-dim cycle analogue: a=(1,*), b=(*,1) are incomparable;
        // use the 3-dim example instead via 2 columns is impossible, so
        // check the operator end-to-end with 3 columns.
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64, true),
            Field::new("y", DataType::Int64, true),
            Field::new("z", DataType::Int64, true),
        ])
        .into_ref();
        let rows = vec![
            Row::new(vec![Value::Int64(1), Value::Null, Value::Int64(10)]),
            Row::new(vec![Value::Int64(3), Value::Int64(2), Value::Null]),
            Row::new(vec![Value::Null, Value::Int64(5), Value::Int64(3)]),
        ];
        let spec3 = SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::min(2),
        ]);
        let scan: Arc<dyn ExecutionPlan> = Arc::new(ScanExec::new("t", Arc::new(rows), schema));
        let bitmap_exchange = Arc::new(ExchangeExec::new(
            crate::exchange::ExchangeMode::NullBitmap(spec3.clone()),
            scan,
        ));
        let local = Arc::new(LocalSkylineExec::new(spec3.clone(), true, bitmap_exchange));
        let gathered = Arc::new(ExchangeExec::single(local));
        let global = IncompleteGlobalSkylineExec::new(spec3, gathered);
        assert!(run(&global, 2).is_empty(), "cycle must cancel out");
        let _ = spec; // silence unused in this branch
    }

    #[test]
    fn incomplete_hierarchical_merge_is_byte_identical_to_flat() {
        // Mixed-bitmap data over several partitions: the deferred-deletion
        // tree merge must produce the same rows in the same order as the
        // paper's flat all-pairs pass, and flag the same tuples.
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64, true),
            Field::new("y", DataType::Int64, true),
            Field::new("z", DataType::Int64, true),
        ])
        .into_ref();
        let rows: Vec<Row> = (0..180)
            .map(|i: i64| {
                let v = |k: i64| {
                    if (i * 7 + k * 3) % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int64((i * (11 + k)) % 9)
                    }
                };
                Row::new(vec![v(0), v(1), v(2)])
            })
            .collect();
        let spec3 = SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::min(2),
        ]);
        let build = |merge: Option<(usize, bool)>| {
            let scan: Arc<dyn ExecutionPlan> =
                Arc::new(ScanExec::new("t", Arc::new(rows.clone()), schema.clone()));
            let bitmap_exchange = Arc::new(ExchangeExec::new(
                crate::exchange::ExchangeMode::NullBitmap(spec3.clone()),
                scan,
            ));
            let local = Arc::new(LocalSkylineExec::new(spec3.clone(), true, bitmap_exchange));
            match merge {
                None => Arc::new(IncompleteGlobalSkylineExec::new(
                    spec3.clone(),
                    Arc::new(ExchangeExec::single(local)),
                )),
                Some((fan_in, vectorized)) => Arc::new(
                    IncompleteGlobalSkylineExec::new(spec3.clone(), local)
                        .with_merge(MergeStrategy::Hierarchical { fan_in })
                        .with_vectorized(vectorized),
                ),
            }
        };
        let flat_ctx = TaskContext::new(6);
        let flat = flatten(build(None).execute(&flat_ctx).unwrap());
        let flat_deferred = flat_ctx.metrics.snapshot().deferred_deletions;
        assert!(!flat.is_empty());
        for fan_in in [2usize, 3] {
            for vectorized in [false, true] {
                let ctx = TaskContext::new(6);
                let plan = build(Some((fan_in, vectorized)));
                let parts = plan.execute(&ctx).unwrap();
                assert_eq!(parts.len(), 1, "global phase yields one partition");
                let tree = flatten(parts);
                assert_eq!(tree, flat, "fan-in {fan_in}, vectorized {vectorized}");
                let m = ctx.metrics.snapshot();
                assert_eq!(
                    m.deferred_deletions, flat_deferred,
                    "flat and tree flag the same tuples"
                );
                assert!(m.classes_merged > 0, "{m:?}");
                assert!(m.merge_rounds >= 1, "{m:?}");
            }
        }
    }

    #[test]
    fn incomplete_hierarchical_merge_handles_cycles_and_empty_input() {
        let spec3 = SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::min(2),
        ]);
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64, true),
            Field::new("y", DataType::Int64, true),
            Field::new("z", DataType::Int64, true),
        ])
        .into_ref();
        let cycle = vec![
            Row::new(vec![Value::Int64(1), Value::Null, Value::Int64(10)]),
            Row::new(vec![Value::Int64(3), Value::Int64(2), Value::Null]),
            Row::new(vec![Value::Null, Value::Int64(5), Value::Int64(3)]),
        ];
        let build = |rows: Vec<Row>| {
            let scan: Arc<dyn ExecutionPlan> =
                Arc::new(ScanExec::new("t", Arc::new(rows), schema.clone()));
            let bitmap_exchange = Arc::new(ExchangeExec::new(
                crate::exchange::ExchangeMode::NullBitmap(spec3.clone()),
                scan,
            ));
            let local = Arc::new(LocalSkylineExec::new(spec3.clone(), true, bitmap_exchange));
            IncompleteGlobalSkylineExec::new(spec3.clone(), local)
                .with_merge(MergeStrategy::Hierarchical { fan_in: 2 })
        };
        let ctx = TaskContext::new(3);
        assert!(
            flatten(build(cycle).execute(&ctx).unwrap()).is_empty(),
            "cycle must cancel out across merge tasks"
        );
        assert_eq!(ctx.metrics.snapshot().deferred_deletions, 3);
        assert!(flatten(build(Vec::new()).execute(&ctx).unwrap()).is_empty());
    }

    #[test]
    fn incomplete_describe_names_the_merge() {
        let spec3 = SkylineSpec::new(vec![SkylineDim::min(0)]);
        let flat = IncompleteGlobalSkylineExec::new(spec3.clone(), input(Vec::new()));
        assert!(
            !flat.describe().contains("hierarchical"),
            "{}",
            flat.describe()
        );
        let tree = IncompleteGlobalSkylineExec::new(spec3.clone(), input(Vec::new()))
            .with_merge(MergeStrategy::Hierarchical { fan_in: 3 })
            .with_plan_note(Some("adaptive: tree (max NULL fraction 0.25)".into()));
        let describe = tree.describe();
        assert!(describe.contains("hierarchical fan-in 3"), "{describe}");
        assert!(describe.contains("adaptive: tree"), "{describe}");
        assert!(describe.contains("vectorized"), "{describe}");
    }

    #[test]
    fn minmax_filter_keeps_all_optima() {
        let col = Expr::BoundColumn(BoundColumn {
            index: 0,
            field: Field::new("a", DataType::Int64, true),
        });
        let plan = MinMaxFilterExec::new(
            col,
            MinMaxDirection::Min,
            false,
            input(int_rows(&[(2, 1), (1, 2), (1, 3), (5, 4)])),
        );
        let rows = run(&plan, 2);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.get(0) == &Value::Int64(1)));
    }

    #[test]
    fn minmax_filter_keeps_null_tuples() {
        let col = Expr::BoundColumn(BoundColumn {
            index: 0,
            field: Field::new("a", DataType::Int64, true),
        });
        let plan = MinMaxFilterExec::new(
            col,
            MinMaxDirection::Min,
            false,
            Arc::new(ScanExec::new(
                "t",
                Arc::new(vec![
                    Row::new(vec![Value::Null, Value::Int64(1)]),
                    Row::new(vec![Value::Int64(3), Value::Int64(2)]),
                    Row::new(vec![Value::Int64(7), Value::Int64(3)]),
                ]),
                Schema::new(vec![
                    Field::new("a", DataType::Int64, true),
                    Field::new("b", DataType::Int64, false),
                ])
                .into_ref(),
            )),
        );
        let rows = run(&plan, 2);
        // NULL tuple is incomparable => skyline member; 3 is the minimum.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn minmax_distinct_keeps_single_representatives() {
        let col = Expr::BoundColumn(BoundColumn {
            index: 0,
            field: Field::new("a", DataType::Int64, true),
        });
        let plan = MinMaxFilterExec::new(
            col,
            MinMaxDirection::Max,
            true,
            input(int_rows(&[(5, 1), (5, 2), (5, 3), (1, 4)])),
        );
        let rows = run(&plan, 2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int64(5));
    }

    #[test]
    fn local_incomplete_groups_by_bitmap_within_partition() {
        // Force everything into ONE partition: grouping inside the
        // operator must still separate bitmap classes, so the cycle
        // tuples all survive the local phase.
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64, true),
            Field::new("y", DataType::Int64, true),
            Field::new("z", DataType::Int64, true),
        ])
        .into_ref();
        let rows = vec![
            Row::new(vec![Value::Int64(1), Value::Null, Value::Int64(10)]),
            Row::new(vec![Value::Int64(3), Value::Int64(2), Value::Null]),
            Row::new(vec![Value::Null, Value::Int64(5), Value::Int64(3)]),
        ];
        let spec3 = SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::min(2),
        ]);
        let scan: Arc<dyn ExecutionPlan> = Arc::new(ScanExec::new("t", Arc::new(rows), schema));
        let local = LocalSkylineExec::new(spec3, true, scan);
        // One executor => single partition holding all three bitmaps.
        let rows = run(&local, 1);
        assert_eq!(rows.len(), 3, "local phase must not delete cycle members");
    }

    #[test]
    fn hierarchical_merge_is_byte_identical_to_flat() {
        // Many partitions of mixed data: the tree merge must produce the
        // same rows in the same order as the flat single-executor merge.
        let data: Vec<Vec<Value>> = (0..200)
            .map(|i: i64| vec![Value::Int64((i * 37) % 100), Value::Int64((i * 53) % 100)])
            .collect();
        let run_with = |merge: MergeStrategy, executors: usize| {
            let local = Arc::new(LocalSkylineExec::new(
                spec2(),
                false,
                Arc::new(ExchangeExec::new(
                    crate::exchange::ExchangeMode::RoundRobin,
                    input(data.clone()),
                )),
            ));
            let global: Arc<dyn ExecutionPlan> = match merge {
                MergeStrategy::Flat => Arc::new(GlobalSkylineExec::new(
                    spec2(),
                    Arc::new(ExchangeExec::single(local)),
                )),
                hierarchical => {
                    Arc::new(GlobalSkylineExec::new(spec2(), local).with_merge(hierarchical))
                }
            };
            let ctx = TaskContext::new(executors);
            let parts = global.execute(&ctx).unwrap();
            assert_eq!(parts.len(), 1, "global phase yields one partition");
            (parts.into_iter().next().unwrap(), ctx.metrics.snapshot())
        };
        let (flat, flat_metrics) = run_with(MergeStrategy::Flat, 8);
        assert_eq!(flat_metrics.merge_rounds, 0);
        for fan_in in [2usize, 3, 4] {
            let (tree, metrics) = run_with(MergeStrategy::Hierarchical { fan_in }, 8);
            assert_eq!(tree, flat, "fan-in {fan_in}");
            assert!(metrics.merge_rounds >= 1, "fan-in {fan_in}: {metrics:?}");
            assert!(
                metrics.max_merge_fanout > 1,
                "merge work must parallelize over executors: {metrics:?}"
            );
        }
    }

    #[test]
    fn hierarchical_merge_handles_empty_input() {
        let global = GlobalSkylineExec::new(spec2(), input(Vec::new()))
            .with_merge(MergeStrategy::Hierarchical { fan_in: 2 });
        assert!(run(&global, 4).is_empty());
    }

    #[test]
    fn hierarchical_sfs_merge_matches_flat_as_a_set() {
        // SFS order can differ between flat and tree when its fallback
        // engages; the row *set* must always match (compared sorted).
        let data: Vec<Vec<Value>> = (0..120)
            .map(|i: i64| vec![Value::Int64((i * 29) % 60), Value::Int64((i * 41) % 60)])
            .collect();
        let build = |merge: Option<usize>| {
            let local = Arc::new(LocalSkylineExec::sort_filter(
                spec2(),
                Arc::new(ExchangeExec::new(
                    crate::exchange::ExchangeMode::RoundRobin,
                    input(data.clone()),
                )),
            ));
            match merge {
                None => {
                    GlobalSkylineExec::sort_filter(spec2(), Arc::new(ExchangeExec::single(local)))
                }
                Some(fan_in) => GlobalSkylineExec::sort_filter(spec2(), local)
                    .with_merge(MergeStrategy::Hierarchical { fan_in }),
            }
        };
        let flat = run(&build(None), 6);
        let tree = run(&build(Some(2)), 6);
        assert_eq!(flat, tree, "run() sorts, so this is set equality");
        assert!(!flat.is_empty());
    }

    #[test]
    fn hierarchical_describe_names_the_strategy() {
        let global = GlobalSkylineExec::new(spec2(), input(Vec::new()))
            .with_merge(MergeStrategy::Hierarchical { fan_in: 4 });
        assert!(
            global.describe().contains("hierarchical fan-in 4"),
            "{}",
            global.describe()
        );
    }

    #[test]
    fn vectorized_and_scalar_plans_are_byte_identical() {
        let data: Vec<Vec<Value>> = (0..200)
            .map(|i: i64| vec![Value::Int64((i * 37) % 80), Value::Int64((i * 53) % 80)])
            .collect();
        let run_plan = |vectorized: bool, merge: MergeStrategy| {
            let local = Arc::new(
                LocalSkylineExec::new(
                    spec2(),
                    false,
                    Arc::new(ExchangeExec::new(
                        crate::exchange::ExchangeMode::RoundRobin,
                        input(data.clone()),
                    )),
                )
                .with_vectorized(vectorized),
            );
            let global: Arc<dyn ExecutionPlan> = match merge {
                MergeStrategy::Flat => Arc::new(
                    GlobalSkylineExec::new(spec2(), Arc::new(ExchangeExec::single(local)))
                        .with_vectorized(vectorized),
                ),
                hierarchical => Arc::new(
                    GlobalSkylineExec::new(spec2(), local)
                        .with_merge(hierarchical)
                        .with_vectorized(vectorized),
                ),
            };
            let ctx = TaskContext::new(6);
            let parts = global.execute(&ctx).unwrap();
            (flatten(parts), ctx.metrics.snapshot())
        };
        let (scalar_rows, s) = run_plan(false, MergeStrategy::Flat);
        assert_eq!(s.batched_tests, 0, "scalar plan must not batch: {s:?}");
        assert!(s.scalar_tests > 0);
        assert_eq!(s.scalar_tests, s.dominance_tests);
        for merge in [
            MergeStrategy::Flat,
            MergeStrategy::Hierarchical { fan_in: 2 },
        ] {
            let (vec_rows, v) = run_plan(true, merge);
            // Row-for-row identical, including order.
            assert_eq!(scalar_rows, vec_rows, "{merge:?}");
            assert!(v.batched_tests > 0, "{merge:?}: {v:?}");
            assert_eq!(v.scalar_tests, 0, "{merge:?}: {v:?}");
        }
    }

    #[test]
    fn vectorized_describe_names_the_kernel() {
        // The default (Auto) must resolve to a concrete tier label; the
        // exact tier depends on the host CPU, so assert via kernel_label.
        let auto_label = kernel_label(DominanceKernel::Auto);
        let local = LocalSkylineExec::new(spec2(), false, input(Vec::new()));
        assert!(
            local
                .describe()
                .contains(&format!("vectorized: {auto_label}")),
            "{}",
            local.describe()
        );
        let scalar =
            LocalSkylineExec::new(spec2(), false, input(Vec::new())).with_vectorized(false);
        assert!(!scalar.describe().contains("vectorized"));
        let global = GlobalSkylineExec::new(spec2(), input(Vec::new()));
        assert!(
            global
                .describe()
                .contains(&format!("vectorized: {auto_label}")),
            "{}",
            global.describe()
        );
        // Pinned knobs render their own tier.
        let chunked = GlobalSkylineExec::new(spec2(), input(Vec::new()))
            .with_kernel(DominanceKernel::Chunked);
        assert!(
            chunked.describe().contains("vectorized: chunked"),
            "{}",
            chunked.describe()
        );
        let prefilter = SkylinePreFilterExec::new(spec2(), Vec::new(), 0, input(Vec::new()))
            .with_kernel(DominanceKernel::Simd);
        assert!(
            prefilter.describe().contains(&format!(
                "vectorized: {}",
                kernel_label(DominanceKernel::Simd)
            )),
            "{}",
            prefilter.describe()
        );
    }

    #[test]
    fn kernel_knob_plans_are_byte_identical() {
        // Forcing every knob through the physical operators must not
        // change a single row; the counters attribute the work instead.
        let data: Vec<Vec<Value>> = (0..300)
            .map(|i: i64| vec![Value::Int64((i * 37) % 80), Value::Int64((i * 53) % 80)])
            .collect();
        let run_plan = |kernel: DominanceKernel| {
            let local = Arc::new(
                LocalSkylineExec::new(
                    spec2(),
                    false,
                    Arc::new(ExchangeExec::new(
                        crate::exchange::ExchangeMode::RoundRobin,
                        input(data.clone()),
                    )),
                )
                .with_kernel(kernel),
            );
            let global = GlobalSkylineExec::new(spec2(), Arc::new(ExchangeExec::single(local)))
                .with_kernel(kernel);
            let ctx = TaskContext::new(4);
            let parts = global.execute(&ctx).unwrap();
            (flatten(parts), ctx.metrics.snapshot())
        };
        let (expected, s) = run_plan(DominanceKernel::Scalar);
        assert_eq!(s.simd_tests, 0);
        assert_eq!(s.multi_candidate_passes, 0);
        for kernel in [
            DominanceKernel::Auto,
            DominanceKernel::Simd,
            DominanceKernel::Chunked,
        ] {
            let (rows, m) = run_plan(kernel);
            assert_eq!(rows, expected, "{kernel:?}");
            assert!(m.batched_tests > 0, "{kernel:?}: {m:?}");
            assert!(m.multi_candidate_passes > 0, "{kernel:?}: {m:?}");
            if kernel == DominanceKernel::Chunked {
                assert_eq!(m.simd_tests, 0, "{m:?}");
            }
        }
    }

    #[test]
    fn prefilter_exec_drops_only_dominated_rows() {
        let data = int_rows(&[(0, 2), (2, 2), (1, 1), (5, 5), (2, 0)]);
        let points = vec![Row::new(vec![Value::Int64(1), Value::Int64(1)])];
        for vectorized in [false, true] {
            let plan = SkylinePreFilterExec::new(spec2(), points.clone(), 3, input(data.clone()))
                .with_vectorized(vectorized);
            let ctx = TaskContext::new(2);
            let rows = run(&plan, 2);
            // (2,2) and (5,5) are strictly dominated by (1,1); the tie
            // (1,1) and the incomparable trade-offs survive.
            assert_eq!(rows.len(), 3, "vectorized={vectorized}");
            let s = ctx.metrics.snapshot();
            assert_eq!(s.prefilter_rows_dropped, 0, "fresh context");
            let parts = plan.execute(&ctx).unwrap();
            assert_eq!(flatten(parts).len(), 3);
            let s = ctx.metrics.snapshot();
            assert_eq!(s.prefilter_rows_dropped, 2, "vectorized={vectorized}");
            assert_eq!(s.sample_rows, 3);
            assert!(s.dominance_tests > 0);
        }
    }

    #[test]
    fn prefilter_exec_with_no_points_passes_everything() {
        let data = int_rows(&[(1, 2), (2, 1)]);
        let plan = SkylinePreFilterExec::new(spec2(), Vec::new(), 0, input(data));
        let ctx = TaskContext::new(2);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(flatten(parts).len(), 2);
        assert_eq!(ctx.metrics.snapshot().prefilter_rows_dropped, 0);
        assert!(plan.describe().contains("0 representative points"));
    }

    #[test]
    fn dominance_metrics_flow_to_context() {
        let data = int_rows(&[(1, 2), (2, 1), (3, 3), (0, 0)]);
        let local = LocalSkylineExec::new(spec2(), false, input(data));
        let ctx = TaskContext::new(1);
        local.execute(&ctx).unwrap();
        assert!(ctx.metrics.snapshot().dominance_tests > 0);
        assert!(ctx.metrics.snapshot().max_window > 0);
    }
}
