//! Hash aggregation: partial aggregation per partition in parallel, merged
//! into a final hash table on one executor (Spark's partial/final split).

use std::collections::HashMap;
use std::sync::Arc;

use sparkline_common::{DataType, Error, Result, Row, SchemaRef, Value};
use sparkline_exec::{
    partition::split_evenly, stream::breaker_streams, PartitionStream, TaskContext,
};
use sparkline_plan::{AggregateFunction, Expr};

use crate::ExecutionPlan;

/// One aggregate call extracted from the result expressions, with its
/// argument bound against the aggregate's input.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggregateFunction,
    /// Bound argument; `None` encodes `count(*)`.
    pub arg: Option<Expr>,
    /// Input type of the argument (drives sum/avg accumulation).
    pub input_type: DataType,
}

/// A running aggregate state.
#[derive(Debug, Clone)]
enum Accumulator {
    CountStar(i64),
    Count(i64),
    SumInt { sum: i64, seen: bool },
    SumFloat { sum: f64, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl Accumulator {
    fn new(call: &AggCall) -> Accumulator {
        match call.func {
            AggregateFunction::Count if call.arg.is_none() => Accumulator::CountStar(0),
            AggregateFunction::Count => Accumulator::Count(0),
            AggregateFunction::Sum => {
                if call.input_type == DataType::Float64 {
                    Accumulator::SumFloat {
                        sum: 0.0,
                        seen: false,
                    }
                } else {
                    Accumulator::SumInt {
                        sum: 0,
                        seen: false,
                    }
                }
            }
            AggregateFunction::Min => Accumulator::Min(None),
            AggregateFunction::Max => Accumulator::Max(None),
            AggregateFunction::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            Accumulator::CountStar(n) => *n += 1,
            Accumulator::Count(n) => {
                if value.is_some_and(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            Accumulator::SumInt { sum, seen } => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let add = match v {
                        Value::Int64(i) => *i,
                        other => {
                            return Err(Error::execution(format!(
                                "sum over non-integer value {other}"
                            )))
                        }
                    };
                    *sum = sum
                        .checked_add(add)
                        .ok_or_else(|| Error::execution("integer overflow in sum()"))?;
                    *seen = true;
                }
            }
            Accumulator::SumFloat { sum, seen } => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    *sum += numeric(v)?;
                    *seen = true;
                }
            }
            Accumulator::Min(best) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let better = match best {
                        None => true,
                        Some(b) => v.sql_compare(b) == Some(std::cmp::Ordering::Less),
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
            Accumulator::Max(best) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let better = match best {
                        None => true,
                        Some(b) => v.sql_compare(b) == Some(std::cmp::Ordering::Greater),
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
            Accumulator::Avg { sum, count } => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    *sum += numeric(v)?;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: Accumulator) -> Result<()> {
        match (self, other) {
            (Accumulator::CountStar(a), Accumulator::CountStar(b)) => *a += b,
            (Accumulator::Count(a), Accumulator::Count(b)) => *a += b,
            (Accumulator::SumInt { sum, seen }, Accumulator::SumInt { sum: s2, seen: sn2 }) => {
                *sum = sum
                    .checked_add(s2)
                    .ok_or_else(|| Error::execution("integer overflow in sum()"))?;
                *seen |= sn2;
            }
            (Accumulator::SumFloat { sum, seen }, Accumulator::SumFloat { sum: s2, seen: sn2 }) => {
                *sum += s2;
                *seen |= sn2;
            }
            (Accumulator::Min(a), Accumulator::Min(b)) => {
                if let Some(v) = b {
                    let better = match &a {
                        None => true,
                        Some(cur) => v.sql_compare(cur) == Some(std::cmp::Ordering::Less),
                    };
                    if better {
                        *a = Some(v);
                    }
                }
            }
            (Accumulator::Max(a), Accumulator::Max(b)) => {
                if let Some(v) = b {
                    let better = match &a {
                        None => true,
                        Some(cur) => v.sql_compare(cur) == Some(std::cmp::Ordering::Greater),
                    };
                    if better {
                        *a = Some(v);
                    }
                }
            }
            (Accumulator::Avg { sum, count }, Accumulator::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            _ => return Err(Error::internal("mismatched accumulators in merge")),
        }
        Ok(())
    }

    fn finalize(self) -> Value {
        match self {
            Accumulator::CountStar(n) | Accumulator::Count(n) => Value::Int64(n),
            Accumulator::SumInt { sum, seen } => {
                if seen {
                    Value::Int64(sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::SumFloat { sum, seen } => {
                if seen {
                    Value::Float64(sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
            Accumulator::Avg { sum, count } => {
                if count > 0 {
                    Value::Float64(sum / count as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

fn numeric(v: &Value) -> Result<f64> {
    match v {
        Value::Int64(i) => Ok(*i as f64),
        Value::Float64(f) => Ok(*f),
        other => Err(Error::execution(format!(
            "numeric aggregate over non-numeric value {other}"
        ))),
    }
}

/// Hash aggregation operator.
///
/// `result_exprs` are compiled against the *internal* row layout
/// `[group values..., aggregate values...]` (the planner performs that
/// rewrite); the output schema is the logical aggregate's.
#[derive(Debug)]
pub struct HashAggregateExec {
    group_exprs: Vec<Expr>,
    agg_calls: Vec<AggCall>,
    result_exprs: Vec<Expr>,
    schema: SchemaRef,
    input: Arc<dyn ExecutionPlan>,
}

impl HashAggregateExec {
    /// Create the operator (see [`crate::planner`] for the compilation of
    /// `result_exprs`).
    pub fn new(
        group_exprs: Vec<Expr>,
        agg_calls: Vec<AggCall>,
        result_exprs: Vec<Expr>,
        schema: SchemaRef,
        input: Arc<dyn ExecutionPlan>,
    ) -> Self {
        HashAggregateExec {
            group_exprs,
            agg_calls,
            result_exprs,
            schema,
            input,
        }
    }
}

/// Phase 2 + 3 of the hash aggregation: merge the partial tables on one
/// executor and evaluate the result expressions over the internal row
/// layout `[group values..., aggregate values...]`.
fn aggregate_final(
    ctx: &TaskContext,
    partials: Vec<HashMap<Vec<Value>, Vec<Accumulator>>>,
    group_exprs: &[Expr],
    agg_calls: &[AggCall],
    result_exprs: &[Expr],
    n: usize,
) -> Result<Vec<sparkline_exec::Partition>> {
    let mut merged: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    for table in partials {
        ctx.control.check()?;
        for (key, accs) in table {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(accs) {
                        a.merge(b)?;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
            }
        }
    }
    // A global aggregate over empty input still yields one row.
    if merged.is_empty() && group_exprs.is_empty() {
        merged.insert(vec![], agg_calls.iter().map(Accumulator::new).collect());
    }
    // Phase 3: evaluate result expressions over internal rows.
    let mut rows = Vec::with_capacity(merged.len());
    for (key, accs) in merged {
        let mut internal = key;
        internal.extend(accs.into_iter().map(Accumulator::finalize));
        let internal_row = Row::new(internal);
        let values: Vec<Value> = result_exprs
            .iter()
            .map(|e| e.evaluate(&internal_row))
            .collect::<Result<_>>()?;
        rows.push(Row::new(values));
    }
    Ok(split_evenly(rows, n))
}

/// Fold one batch into a partial-aggregation table.
fn partial_batch(
    group_exprs: &[Expr],
    agg_calls: &[AggCall],
    table: &mut HashMap<Vec<Value>, Vec<Accumulator>>,
    batch: &[Row],
) -> Result<()> {
    for row in batch {
        let key: Vec<Value> = group_exprs
            .iter()
            .map(|e| e.evaluate(row))
            .collect::<Result<_>>()?;
        let accs = table
            .entry(key)
            .or_insert_with(|| agg_calls.iter().map(Accumulator::new).collect());
        for (acc, call) in accs.iter_mut().zip(agg_calls) {
            match &call.arg {
                Some(arg) => acc.update(Some(&arg.evaluate(row)?))?,
                None => acc.update(None)?,
            }
        }
    }
    Ok(())
}

impl ExecutionPlan for HashAggregateExec {
    fn name(&self) -> &'static str {
        "HashAggregateExec"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        let group_exprs = self.group_exprs.clone();
        let agg_calls = self.agg_calls.clone();
        let result_exprs = self.result_exprs.clone();
        let n = ctx.runtime.num_executors();
        let ctx2 = ctx.clone();
        Ok(breaker_streams(self.schema(), ctx, n, move || {
            // Phase 1: parallel partial aggregation, one stream per
            // executor, folding batch-by-batch — the buffered state is the
            // partial hash table (bounded by the number of groups), never
            // the input.
            let partials = ctx2.runtime.map_indexed(inputs, |_, mut stream| {
                let mut table: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
                while let Some(batch) = stream.next_batch()? {
                    ctx2.control.check()?;
                    partial_batch(&group_exprs, &agg_calls, &mut table, &batch)?;
                }
                Ok(table)
            })?;
            aggregate_final(&ctx2, partials, &group_exprs, &agg_calls, &result_exprs, n)
        }))
    }

    fn describe(&self) -> String {
        format!(
            "HashAggregateExec [groups: {}; aggs: {}]",
            self.group_exprs.len(),
            self.agg_calls.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanExec;
    use sparkline_common::{Field, Schema};
    use sparkline_plan::BoundColumn;

    fn col(i: usize, dt: DataType) -> Expr {
        Expr::BoundColumn(BoundColumn {
            index: i,
            field: Field::new("c", dt, true),
        })
    }

    fn input(rows: Vec<Vec<Value>>) -> Arc<dyn ExecutionPlan> {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Int64, true),
        ])
        .into_ref();
        Arc::new(ScanExec::new(
            "t",
            Arc::new(rows.into_iter().map(Row::new).collect()),
            schema,
        ))
    }

    fn run(plan: &dyn ExecutionPlan) -> Vec<Row> {
        let ctx = TaskContext::new(3);
        let mut rows = sparkline_exec::partition::flatten(plan.execute(&ctx).unwrap());
        rows.sort_by(|a, b| a.get(0).total_cmp(b.get(0)));
        rows
    }

    #[test]
    fn grouped_count_sum_min_max_avg() {
        let data = vec![
            vec![Value::Int64(1), Value::Int64(10)],
            vec![Value::Int64(1), Value::Int64(20)],
            vec![Value::Int64(2), Value::Null],
            vec![Value::Int64(2), Value::Int64(5)],
        ];
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("cnt", DataType::Int64, false),
            Field::new("sum", DataType::Int64, true),
            Field::new("min", DataType::Int64, true),
            Field::new("max", DataType::Int64, true),
            Field::new("avg", DataType::Float64, true),
        ])
        .into_ref();
        let calls: Vec<AggCall> = [
            AggregateFunction::Count,
            AggregateFunction::Sum,
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
        ]
        .into_iter()
        .map(|func| AggCall {
            func,
            arg: Some(col(1, DataType::Int64)),
            input_type: DataType::Int64,
        })
        .collect();
        // Internal layout: [k, count, sum, min, max, avg].
        let result_exprs: Vec<Expr> = (0..6).map(|i| col(i, DataType::Int64)).collect();
        let plan = HashAggregateExec::new(
            vec![col(0, DataType::Int64)],
            calls,
            result_exprs,
            schema,
            input(data),
        );
        let rows = run(&plan);
        assert_eq!(rows.len(), 2);
        // Group 1: count 2, sum 30, min 10, max 20, avg 15.
        assert_eq!(rows[0].get(1), &Value::Int64(2));
        assert_eq!(rows[0].get(2), &Value::Int64(30));
        assert_eq!(rows[0].get(3), &Value::Int64(10));
        assert_eq!(rows[0].get(4), &Value::Int64(20));
        assert_eq!(rows[0].get(5), &Value::Float64(15.0));
        // Group 2: NULL is ignored by all but count(*): count 1, sum 5.
        assert_eq!(rows[1].get(1), &Value::Int64(1));
        assert_eq!(rows[1].get(2), &Value::Int64(5));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let schema = Schema::new(vec![
            Field::new("cnt", DataType::Int64, false),
            Field::new("sum", DataType::Int64, true),
        ])
        .into_ref();
        let plan = HashAggregateExec::new(
            vec![],
            vec![
                AggCall {
                    func: AggregateFunction::Count,
                    arg: None,
                    input_type: DataType::Int64,
                },
                AggCall {
                    func: AggregateFunction::Sum,
                    arg: Some(col(1, DataType::Int64)),
                    input_type: DataType::Int64,
                },
            ],
            vec![col(0, DataType::Int64), col(1, DataType::Int64)],
            schema,
            input(vec![]),
        );
        let rows = run(&plan);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int64(0));
        assert_eq!(rows[0].get(1), &Value::Null);
    }

    #[test]
    fn count_star_counts_null_rows() {
        let data = vec![
            vec![Value::Int64(1), Value::Null],
            vec![Value::Int64(1), Value::Null],
        ];
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("cnt", DataType::Int64, false),
            Field::new("cntv", DataType::Int64, false),
        ])
        .into_ref();
        let plan = HashAggregateExec::new(
            vec![col(0, DataType::Int64)],
            vec![
                AggCall {
                    func: AggregateFunction::Count,
                    arg: None,
                    input_type: DataType::Int64,
                },
                AggCall {
                    func: AggregateFunction::Count,
                    arg: Some(col(1, DataType::Int64)),
                    input_type: DataType::Int64,
                },
            ],
            vec![
                col(0, DataType::Int64),
                col(1, DataType::Int64),
                col(2, DataType::Int64),
            ],
            schema,
            input(data),
        );
        let rows = run(&plan);
        assert_eq!(rows[0].get(1), &Value::Int64(2), "count(*) counts NULLs");
        assert_eq!(rows[0].get(2), &Value::Int64(0), "count(v) skips NULLs");
    }

    #[test]
    fn group_keys_with_nulls_form_one_group() {
        let data = vec![
            vec![Value::Null, Value::Int64(1)],
            vec![Value::Null, Value::Int64(2)],
        ];
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64, true),
            Field::new("cnt", DataType::Int64, false),
        ])
        .into_ref();
        let plan = HashAggregateExec::new(
            vec![col(0, DataType::Int64)],
            vec![AggCall {
                func: AggregateFunction::Count,
                arg: None,
                input_type: DataType::Int64,
            }],
            vec![col(0, DataType::Int64), col(1, DataType::Int64)],
            schema,
            input(data),
        );
        let rows = run(&plan);
        assert_eq!(rows.len(), 1, "NULL keys group together");
        assert_eq!(rows[0].get(1), &Value::Int64(2));
    }
}
