//! Pipelined narrow operators (projection, filter, limit, distinct) and
//! the sort pipeline breaker.
//!
//! The narrow operators transform one pulled batch at a time and hold no
//! buffered state beyond it (`DistinctExec` keeps the seen-set, which is
//! bounded by the *output* size); `LimitExec` stops pulling — and drops
//! its upstream streams, cancelling their remaining work — the moment the
//! limit is reached. `SortExec` is a genuine breaker: a total sort needs
//! every row, so it drains its input (fanned over the executor pool)
//! before emitting.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::sync::Arc;

use sparkline_common::{Error, Result, Row, SchemaRef, Value};
use sparkline_exec::{
    stream::{breaker_streams, chain_streams},
    PartitionStream, TaskContext,
};
use sparkline_plan::{Expr, SortExpr};

use crate::ExecutionPlan;

/// Evaluates one expression per output column (partition-parallel).
#[derive(Debug)]
pub struct ProjectExec {
    exprs: Vec<Expr>,
    schema: SchemaRef,
    input: Arc<dyn ExecutionPlan>,
}

impl ProjectExec {
    /// Projection with a precomputed output schema.
    pub fn new(exprs: Vec<Expr>, schema: SchemaRef, input: Arc<dyn ExecutionPlan>) -> Self {
        ProjectExec {
            exprs,
            schema,
            input,
        }
    }
}

impl ExecutionPlan for ProjectExec {
    fn name(&self) -> &'static str {
        "ProjectExec"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        Ok(inputs
            .into_iter()
            .map(|mut input| {
                let exprs = self.exprs.clone();
                let ctx = ctx.clone();
                PartitionStream::new(self.schema(), Arc::clone(&ctx.metrics), move || {
                    ctx.control.check()?;
                    let Some(batch) = input.next_batch()? else {
                        return Ok(None);
                    };
                    let mut rows = Vec::with_capacity(batch.len());
                    for row in &batch {
                        let values: Vec<Value> = exprs
                            .iter()
                            .map(|e| e.evaluate(row))
                            .collect::<Result<_>>()?;
                        rows.push(Row::new(values));
                    }
                    Ok(Some(rows))
                })
            })
            .collect())
    }

    fn describe(&self) -> String {
        format!(
            "ProjectExec [{}]",
            self.exprs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Keeps rows whose predicate evaluates to `true` (partition-parallel).
#[derive(Debug)]
pub struct FilterExec {
    predicate: Expr,
    input: Arc<dyn ExecutionPlan>,
}

impl FilterExec {
    /// Filter with a bound boolean predicate.
    pub fn new(predicate: Expr, input: Arc<dyn ExecutionPlan>) -> Self {
        FilterExec { predicate, input }
    }
}

impl ExecutionPlan for FilterExec {
    fn name(&self) -> &'static str {
        "FilterExec"
    }

    fn preserves_row_values(&self) -> bool {
        true
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        Ok(inputs
            .into_iter()
            .map(|mut input| {
                let predicate = self.predicate.clone();
                let ctx = ctx.clone();
                PartitionStream::new(self.schema(), Arc::clone(&ctx.metrics), move || loop {
                    ctx.control.check()?;
                    let Some(batch) = input.next_batch()? else {
                        return Ok(None);
                    };
                    let mut rows = Vec::new();
                    for row in batch {
                        if predicate.evaluate(&row)? == Value::Boolean(true) {
                            rows.push(row);
                        }
                    }
                    // Keep pulling until something passes: downstream
                    // operators never see useless empty batches.
                    if !rows.is_empty() {
                        return Ok(Some(rows));
                    }
                })
            })
            .collect())
    }

    fn describe(&self) -> String {
        format!("FilterExec [{}]", self.predicate)
    }
}

/// Takes the first `n` rows (in partition order).
#[derive(Debug)]
pub struct LimitExec {
    n: usize,
    input: Arc<dyn ExecutionPlan>,
}

impl LimitExec {
    /// Limit to `n` rows.
    pub fn new(n: usize, input: Arc<dyn ExecutionPlan>) -> Self {
        LimitExec { n, input }
    }
}

impl ExecutionPlan for LimitExec {
    fn name(&self) -> &'static str {
        "LimitExec"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let mut input = chain_streams(
            self.schema(),
            Arc::clone(&ctx.metrics),
            crate::input_streams(&self.input, ctx)?,
        );
        let n = self.n;
        let ctx2 = ctx.clone();
        let mut taken = 0usize;
        // One output partition, like the materialized model. The
        // short-circuit: once `n` rows are out, the chained upstream is
        // closed — unpulled scan batches are never cloned, unpulled
        // pipeline work never runs.
        let stream = PartitionStream::new(self.schema(), Arc::clone(&ctx.metrics), move || loop {
            if taken >= n {
                input.close();
                return Ok(None);
            }
            ctx2.control.check()?;
            let Some(mut batch) = input.next_batch()? else {
                return Ok(None);
            };
            if batch.is_empty() {
                continue;
            }
            batch.truncate(n - taken);
            taken += batch.len();
            if taken >= n {
                input.close();
            }
            return Ok(Some(batch));
        });
        Ok(vec![stream])
    }

    fn describe(&self) -> String {
        format!("LimitExec [{}]", self.n)
    }
}

/// Removes duplicate rows: parallel per-partition dedup, then a global
/// dedup on one executor.
#[derive(Debug)]
pub struct DistinctExec {
    input: Arc<dyn ExecutionPlan>,
}

impl DistinctExec {
    /// Distinct over all columns.
    pub fn new(input: Arc<dyn ExecutionPlan>) -> Self {
        DistinctExec { input }
    }
}

impl ExecutionPlan for DistinctExec {
    fn name(&self) -> &'static str {
        "DistinctExec"
    }

    fn preserves_row_values(&self) -> bool {
        true
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let mut input = chain_streams(
            self.schema(),
            Arc::clone(&ctx.metrics),
            crate::input_streams(&self.input, ctx)?,
        );
        let ctx2 = ctx.clone();
        // First-occurrence dedup is associative over concatenation, so one
        // streaming pass in partition order yields exactly the seed's
        // local-then-global result; the seen-set is bounded by the number
        // of *distinct* rows, not the input size.
        let mut seen: HashSet<Row> = HashSet::new();
        let stream = PartitionStream::new(self.schema(), Arc::clone(&ctx.metrics), move || loop {
            ctx2.control.check()?;
            let Some(batch) = input.next_batch()? else {
                return Ok(None);
            };
            let mut rows = Vec::new();
            for row in batch {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
            if !rows.is_empty() {
                return Ok(Some(rows));
            }
        });
        Ok(vec![stream])
    }
}

/// Total sort on a single executor (Spark would range-shuffle; a global
/// sort is inherently a gather point for our workloads).
#[derive(Debug)]
pub struct SortExec {
    exprs: Vec<SortExpr>,
    input: Arc<dyn ExecutionPlan>,
}

impl SortExec {
    /// Sort by the given keys.
    pub fn new(exprs: Vec<SortExpr>, input: Arc<dyn ExecutionPlan>) -> Self {
        SortExec { exprs, input }
    }

    fn compare_values(a: &Value, b: &Value, asc: bool, nulls_first: bool) -> Ordering {
        let ord = match (a.is_null(), b.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => {
                return if nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                return if nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => a.total_cmp(b),
        };
        if asc {
            ord
        } else {
            ord.reverse()
        }
    }
}

impl ExecutionPlan for SortExec {
    fn name(&self) -> &'static str {
        "SortExec"
    }

    fn preserves_row_values(&self) -> bool {
        true
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        let inputs = crate::input_streams(&self.input, ctx)?;
        let exprs = self.exprs.clone();
        let ctx2 = ctx.clone();
        Ok(breaker_streams(self.schema(), ctx, 1, move || {
            // A total sort needs every row: drain the upstream pipelines
            // in parallel, then sort the gathered buffer on one executor.
            let input = ctx2.runtime.drain_streams(inputs)?;
            let rows = sparkline_exec::partition::flatten(input);
            let reservation = ctx2.try_reserve(rows.iter().map(Row::estimated_bytes).sum())?;
            ctx2.control.check()?;
            let sorted = sort_rows(&exprs, rows)?;
            ctx2.control.check()?;
            drop(reservation);
            Ok(vec![sorted])
        }))
    }

    fn describe(&self) -> String {
        format!(
            "SortExec [{}]",
            self.exprs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Total sort by the given keys, precomputing them once to avoid
/// re-evaluating expressions in the comparator (O(n log n) comparisons).
fn sort_rows(exprs: &[SortExpr], mut rows: Vec<Row>) -> Result<Vec<Row>> {
    let keys: Vec<Vec<Value>> = rows
        .iter()
        .map(|row| {
            exprs
                .iter()
                .map(|s| s.expr.evaluate(row))
                .collect::<Result<Vec<_>>>()
        })
        .collect::<Result<_>>()?;
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&i, &j| {
        for (k, s) in exprs.iter().enumerate() {
            let ord = SortExec::compare_values(&keys[i][k], &keys[j][k], s.asc, s.nulls_first);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    let mut sorted = Vec::with_capacity(rows.len());
    // Reorder without cloning rows: take() via Option slots.
    let mut slots: Vec<Option<Row>> = rows.drain(..).map(Some).collect();
    for i in order {
        sorted.push(
            slots[i]
                .take()
                .ok_or_else(|| Error::internal("sort permutation visited a slot twice"))?,
        );
    }
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanExec;
    use sparkline_common::{DataType, Field, Schema};
    use sparkline_plan::BoundColumn;

    fn scan(rows: Vec<Vec<Value>>) -> Arc<dyn ExecutionPlan> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, true),
        ])
        .into_ref();
        Arc::new(ScanExec::new(
            "t",
            Arc::new(rows.into_iter().map(Row::new).collect()),
            schema,
        ))
    }

    fn col(i: usize) -> Expr {
        Expr::BoundColumn(BoundColumn {
            index: i,
            field: Field::new("c", DataType::Int64, true),
        })
    }

    fn int_rows(data: &[(i64, i64)]) -> Vec<Vec<Value>> {
        data.iter()
            .map(|&(a, b)| vec![Value::Int64(a), Value::Int64(b)])
            .collect()
    }

    fn run(plan: &dyn ExecutionPlan, executors: usize) -> Vec<Row> {
        let ctx = TaskContext::new(executors);
        sparkline_exec::partition::flatten(plan.execute(&ctx).unwrap())
    }

    #[test]
    fn project_computes_expressions() {
        let input = scan(int_rows(&[(1, 2), (3, 4)]));
        let schema = Schema::new(vec![Field::new("s", DataType::Int64, true)]).into_ref();
        let plan = ProjectExec::new(
            vec![col(0).binary(sparkline_plan::BinaryOp::Plus, col(1))],
            schema,
            input,
        );
        let rows = run(&plan, 2);
        let mut vals: Vec<i64> = rows
            .iter()
            .map(|r| match r.get(0) {
                Value::Int64(v) => *v,
                other => panic!("{other:?}"),
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![3, 7]);
    }

    #[test]
    fn filter_keeps_only_true() {
        let input = scan(vec![
            vec![Value::Int64(1), Value::Null],
            vec![Value::Int64(5), Value::Int64(0)],
            vec![Value::Int64(9), Value::Int64(0)],
        ]);
        let plan = FilterExec::new(col(0).gt(Expr::lit(4i64)), input);
        assert_eq!(run(&plan, 2).len(), 2);
    }

    #[test]
    fn filter_null_predicate_drops_row() {
        let input = scan(vec![vec![Value::Null, Value::Null]]);
        let plan = FilterExec::new(col(0).gt(Expr::lit(4i64)), input);
        assert_eq!(run(&plan, 1).len(), 0);
    }

    #[test]
    fn limit_truncates() {
        let input = scan(int_rows(&[(1, 1), (2, 2), (3, 3), (4, 4)]));
        let plan = LimitExec::new(2, input);
        assert_eq!(run(&plan, 3).len(), 2);
    }

    #[test]
    fn limit_larger_than_input() {
        let input = scan(int_rows(&[(1, 1)]));
        let plan = LimitExec::new(10, input);
        assert_eq!(run(&plan, 2).len(), 1);
    }

    #[test]
    fn distinct_dedups_across_partitions() {
        let input = scan(int_rows(&[(1, 1), (1, 1), (2, 2), (1, 1), (2, 2)]));
        let plan = DistinctExec::new(input);
        assert_eq!(run(&plan, 3).len(), 2);
    }

    #[test]
    fn sort_orders_with_nulls() {
        let input = scan(vec![
            vec![Value::Int64(3), Value::Int64(0)],
            vec![Value::Null, Value::Int64(0)],
            vec![Value::Int64(1), Value::Int64(0)],
        ]);
        // ASC NULLS FIRST (default).
        let plan = SortExec::new(vec![SortExpr::asc(col(0))], input);
        let rows = run(&plan, 2);
        assert!(rows[0].get(0).is_null());
        assert_eq!(rows[1].get(0), &Value::Int64(1));
        assert_eq!(rows[2].get(0), &Value::Int64(3));
    }

    #[test]
    fn sort_desc_nulls_last_by_default() {
        let input = scan(vec![
            vec![Value::Int64(3), Value::Int64(0)],
            vec![Value::Null, Value::Int64(0)],
            vec![Value::Int64(1), Value::Int64(0)],
        ]);
        let plan = SortExec::new(vec![SortExpr::desc(col(0))], input);
        let rows = run(&plan, 2);
        assert_eq!(rows[0].get(0), &Value::Int64(3));
        assert!(rows[2].get(0).is_null());
    }

    #[test]
    fn multi_key_sort() {
        let input = scan(int_rows(&[(1, 2), (2, 1), (1, 1), (2, 2)]));
        let plan = SortExec::new(vec![SortExpr::asc(col(0)), SortExpr::desc(col(1))], input);
        let rows = run(&plan, 2);
        let pairs: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| match (r.get(0), r.get(1)) {
                (Value::Int64(a), Value::Int64(b)) => (*a, *b),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(pairs, vec![(1, 2), (1, 1), (2, 2), (2, 1)]);
    }
}
