//! Synthetic Inside-Airbnb-style dataset (paper §6.2, Table 1).
//!
//! The paper uses a merged 30-day Inside Airbnb snapshot (~1.19M listings
//! incomplete / ~0.82M after dropping NULL rows). The real download is not
//! available offline; this generator reproduces the skyline-relevant
//! properties: the Table 1 schema, heavy-tailed prices, small-domain
//! correlated capacity columns, review counts with many zeros, ratings
//! missing whenever a listing has no reviews, and per-column NULL rates
//! that make the complete variant ≈ 69 % of the incomplete one (the
//! paper's 820,698 / 1,193,465 ratio).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline_common::{DataType, Field, Row, Schema, Value};

use crate::distributions::{chance, geometric, log_normal_clamped, normal, round_to};
use crate::{Dataset, Variant};

/// Table 1 column order: `id` key + six skyline dimensions.
pub fn schema(variant: Variant) -> Schema {
    let nullable = variant == Variant::Incomplete;
    Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("price", DataType::Float64, nullable),
        Field::new("accommodates", DataType::Int64, false),
        Field::new("bedrooms", DataType::Int64, nullable),
        Field::new("beds", DataType::Int64, nullable),
        Field::new("number_of_reviews", DataType::Int64, false),
        Field::new("review_scores_rating", DataType::Float64, nullable),
    ])
}

/// The six skyline dimensions of Table 1, in the paper's order (queries
/// with `d` dimensions use the first `d`).
pub const SKYLINE_DIMS: [(&str, &str); 6] = [
    ("price", "MIN"),
    ("accommodates", "MAX"),
    ("bedrooms", "MAX"),
    ("beds", "MAX"),
    ("number_of_reviews", "MAX"),
    ("review_scores_rating", "MAX"),
];

/// Generate the Airbnb dataset. `n` is the size of the *incomplete*
/// variant; `Variant::Complete` drops rows with a NULL in any skyline
/// dimension (and is therefore smaller, as in the paper).
pub fn generate(n: usize, seed: u64, variant: Variant) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    for id in 0..n as i64 {
        let accommodates = 1 + geometric(&mut rng, 0.35, 15);
        // Larger places cost more; prices are heavy-tailed with cents.
        let base = log_normal_clamped(&mut rng, 4.0, 0.65, 15.0, 4000.0);
        let price = round_to(base * (1.0 + 0.18 * accommodates as f64), 2);
        let bedrooms = ((accommodates as f64 / 2.0).ceil() as i64
            + if chance(&mut rng, 0.2) { 1 } else { 0 })
        .max(1);
        let beds = (accommodates + rng.gen_range(-1i64..=1)).max(1);
        let number_of_reviews = if chance(&mut rng, 0.22) {
            0
        } else {
            geometric(&mut rng, 0.02, 800)
        };
        // Ratings are high and weakly correlated with review volume.
        let rating = round_to(
            (normal(&mut rng, 4.55, 0.35) + (number_of_reviews as f64).ln_1p() * 0.01)
                .clamp(1.0, 5.0),
            2,
        );

        // NULL injection (incomplete variant only survives it).
        let price_v = if chance(&mut rng, 0.04) {
            Value::Null
        } else {
            Value::Float64(price)
        };
        let bedrooms_v = if chance(&mut rng, 0.04) {
            Value::Null
        } else {
            Value::Int64(bedrooms)
        };
        let beds_v = if chance(&mut rng, 0.03) {
            Value::Null
        } else {
            Value::Int64(beds)
        };
        // No reviews => no rating (the dominant NULL source in the data).
        let rating_v = if number_of_reviews == 0 || chance(&mut rng, 0.02) {
            Value::Null
        } else {
            Value::Float64(rating)
        };

        let row = Row::new(vec![
            Value::Int64(id),
            price_v,
            Value::Int64(accommodates),
            bedrooms_v,
            beds_v,
            Value::Int64(number_of_reviews),
            rating_v,
        ]);
        if variant == Variant::Complete && row.values().iter().any(Value::is_null) {
            continue;
        }
        rows.push(row);
    }
    Dataset {
        name: match variant {
            Variant::Complete => "airbnb".to_string(),
            Variant::Incomplete => "airbnb_incomplete".to_string(),
        },
        schema: schema(variant),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = generate(500, 42, Variant::Incomplete);
        let b = generate(500, 42, Variant::Incomplete);
        assert_eq!(a.rows, b.rows);
        let c = generate(500, 43, Variant::Incomplete);
        assert_ne!(a.rows, c.rows);
    }

    #[test]
    fn complete_variant_is_smaller_and_null_free() {
        let incomplete = generate(2000, 1, Variant::Incomplete);
        let complete = generate(2000, 1, Variant::Complete);
        assert_eq!(incomplete.rows.len(), 2000);
        assert!(complete.rows.len() < incomplete.rows.len());
        // Paper ratio is ~0.69; accept a generous band.
        let ratio = complete.rows.len() as f64 / incomplete.rows.len() as f64;
        assert!((0.6..0.8).contains(&ratio), "ratio {ratio}");
        assert!(complete
            .rows
            .iter()
            .all(|r| r.values().iter().all(|v| !v.is_null())));
    }

    #[test]
    fn incomplete_variant_has_nulls() {
        let d = generate(1000, 7, Variant::Incomplete);
        let with_null = d
            .rows
            .iter()
            .filter(|r| r.values().iter().any(Value::is_null))
            .count();
        assert!(with_null > 100, "{with_null}");
    }

    #[test]
    fn schema_matches_rows() {
        for variant in [Variant::Complete, Variant::Incomplete] {
            let d = generate(300, 9, variant);
            assert_eq!(d.schema.len(), 7);
            for row in &d.rows {
                assert_eq!(row.width(), 7);
            }
        }
    }

    #[test]
    fn values_within_realistic_ranges() {
        let d = generate(1000, 5, Variant::Complete);
        for row in &d.rows {
            if let Value::Float64(p) = row.get(1) {
                assert!((15.0..=10000.0).contains(p), "price {p}");
            }
            if let Value::Float64(r) = row.get(6) {
                assert!((1.0..=5.0).contains(r), "rating {r}");
            }
        }
    }
}
