//! Small distribution helpers over `rand` (no external distribution
//! crates are used).

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal sample via Box–Muller.
pub fn normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Log-normal sample clamped to `[min, max]` — heavy-tailed prices.
pub fn log_normal_clamped(
    rng: &mut StdRng,
    mu: f64,
    sigma: f64,
    min: f64,
    max: f64,
) -> f64 {
    normal(rng, mu, sigma).exp().clamp(min, max)
}

/// Geometric-ish count: number of failures before success, capped.
pub fn geometric(rng: &mut StdRng, p: f64, cap: i64) -> i64 {
    let mut n = 0;
    while n < cap && rng.gen_range(0.0..1.0) > p {
        n += 1;
    }
    n
}

/// Bernoulli event.
pub fn chance(rng: &mut StdRng, p: f64) -> bool {
    rng.gen_range(0.0..1.0) < p
}

/// Round to `decimals` decimal places (price-like values).
pub fn round_to(v: f64, decimals: u32) -> f64 {
    let f = 10f64.powi(decimals as i32);
    (v * f).round() / f
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..4000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn log_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = log_normal_clamped(&mut rng, 4.0, 0.8, 10.0, 500.0);
            assert!((10.0..=500.0).contains(&v));
        }
    }

    #[test]
    fn geometric_capped() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert!(geometric(&mut rng, 0.1, 50) <= 50);
        }
    }

    #[test]
    fn rounding() {
        assert_eq!(round_to(1.23456, 2), 1.23);
    }
}
