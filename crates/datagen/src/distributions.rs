//! Small distribution helpers over `rand` (no external distribution
//! crates are used), plus the three classic skyline benchmark
//! distributions of Börzsönyi et al. (correlated / independent /
//! anti-correlated) used by the partitioning experiments and the
//! partitioning property tests.

use rand::rngs::StdRng;
use rand::Rng;
use sparkline_common::{Row, Value};

/// Standard normal sample via Box–Muller.
pub fn normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Log-normal sample clamped to `[min, max]` — heavy-tailed prices.
pub fn log_normal_clamped(rng: &mut StdRng, mu: f64, sigma: f64, min: f64, max: f64) -> f64 {
    normal(rng, mu, sigma).exp().clamp(min, max)
}

/// Geometric-ish count: number of failures before success, capped.
pub fn geometric(rng: &mut StdRng, p: f64, cap: i64) -> i64 {
    let mut n = 0;
    while n < cap && rng.gen_range(0.0..1.0) > p {
        n += 1;
    }
    n
}

/// Bernoulli event.
pub fn chance(rng: &mut StdRng, p: f64) -> bool {
    rng.gen_range(0.0..1.0) < p
}

/// Round to `decimals` decimal places (price-like values).
pub fn round_to(v: f64, decimals: u32) -> f64 {
    let f = 10f64.powi(decimals as i32);
    (v * f).round() / f
}

/// Independent dimensions: every value uniform in `[0, 1)` (Börzsönyi's
/// "independent" workload — moderate skyline sizes).
pub fn independent_rows(rng: &mut StdRng, n: usize, dims: usize) -> Vec<Row> {
    assert!(dims >= 1);
    (0..n)
        .map(|_| {
            Row::new(
                (0..dims)
                    .map(|_| Value::Float64(rng.gen_range(0.0..1.0)))
                    .collect(),
            )
        })
        .collect()
}

/// Correlated dimensions: values cluster around a shared per-row base, so
/// a few rows dominate almost everything (tiny skylines — the
/// best case for dominated-region pruning).
pub fn correlated_rows(rng: &mut StdRng, n: usize, dims: usize) -> Vec<Row> {
    assert!(dims >= 1);
    (0..n)
        .map(|_| {
            let base = normal(rng, 0.5, 0.2).clamp(0.0, 1.0);
            Row::new(
                (0..dims)
                    .map(|_| Value::Float64((base + normal(rng, 0.0, 0.05)).clamp(0.0, 1.0)))
                    .collect(),
            )
        })
        .collect()
}

/// Anti-correlated dimensions: each row sits near a hyperplane
/// `sum(v) ≈ dims · plane` — rows good in one dimension are bad in others
/// (large skylines, the paper's hardest workload). The plane jitter is
/// kept *small* (Börzsönyi's construction): a wide per-row plane spread
/// would let low-plane rows dominate broadly and collapse the skyline to
/// a handful of points, destroying exactly the property this workload
/// exists to stress. The residual jitter still leaves some genuinely
/// dominated interior points for grid pruning to find.
pub fn anti_correlated_rows(rng: &mut StdRng, n: usize, dims: usize) -> Vec<Row> {
    assert!(dims >= 1);
    (0..n)
        .map(|_| {
            let plane = normal(rng, 0.5, 0.02).clamp(0.05, 0.95);
            let offsets: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..0.5)).collect();
            let mean = offsets.iter().sum::<f64>() / dims as f64;
            Row::new(
                offsets
                    .into_iter()
                    .map(|o| Value::Float64((plane + o - mean).clamp(0.0, 1.0)))
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..4000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn log_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = log_normal_clamped(&mut rng, 4.0, 0.8, 10.0, 500.0);
            assert!((10.0..=500.0).contains(&v));
        }
    }

    #[test]
    fn geometric_capped() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert!(geometric(&mut rng, 0.1, 50) <= 50);
        }
    }

    #[test]
    fn rounding() {
        assert_eq!(round_to(1.23456, 2), 1.23);
    }

    fn as_f64(v: &Value) -> f64 {
        match v {
            Value::Float64(f) => *f,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn benchmark_distributions_have_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        for rows in [
            independent_rows(&mut rng, 500, 3),
            correlated_rows(&mut rng, 500, 3),
            anti_correlated_rows(&mut rng, 500, 3),
        ] {
            assert_eq!(rows.len(), 500);
            for r in &rows {
                assert_eq!(r.width(), 3);
                for v in r.values() {
                    assert!((0.0..=1.0).contains(&as_f64(v)));
                }
            }
        }
        // Correlated rows have small in-row spread; anti-correlated large.
        let spread = |rows: &[Row]| {
            rows.iter()
                .map(|r| {
                    let vals: Vec<f64> = r.values().iter().map(as_f64).collect();
                    let max = vals.iter().cloned().fold(f64::MIN, f64::max);
                    let min = vals.iter().cloned().fold(f64::MAX, f64::min);
                    max - min
                })
                .sum::<f64>()
                / rows.len() as f64
        };
        let corr = correlated_rows(&mut rng, 400, 2);
        let anti = anti_correlated_rows(&mut rng, 400, 2);
        assert!(
            spread(&corr) < spread(&anti),
            "{} vs {}",
            spread(&corr),
            spread(&anti)
        );
    }
}
