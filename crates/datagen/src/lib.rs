#![warn(missing_docs)]

//! # sparkline-datagen
//!
//! Seeded generators for the three datasets of the paper's evaluation
//! (§6.2 and Appendix E):
//!
//! * [`airbnb`] — Inside-Airbnb-style listings (Table 1);
//! * [`store_sales`] — DSB `store_sales` (Table 2);
//! * [`musicbrainz`] — the recordings/tracks/meta subset behind the
//!   complex-query experiments (Table 13).
//!
//! Each dataset has a complete and an incomplete [`Variant`] exactly as
//! the paper defines them (for Airbnb the complete variant is *smaller*;
//! for store_sales both have the same size). Registration helpers load a
//! dataset into a [`SessionContext`].

pub mod airbnb;
pub mod distributions;
pub mod musicbrainz;
pub mod store_sales;

use sparkline::SessionContext;
use sparkline_common::{Result, Row, Schema};

/// Complete (NULL-free skyline dimensions) vs incomplete dataset variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// No NULLs in the skyline dimensions.
    Complete,
    /// NULLs occur in the skyline dimensions.
    Incomplete,
}

impl Variant {
    /// Chart label suffix used by the harness.
    pub fn suffix(self) -> &'static str {
        match self {
            Variant::Complete => "",
            Variant::Incomplete => "_incomplete",
        }
    }
}

/// A generated table: name, schema, rows.
pub struct Dataset {
    /// Registration name.
    pub name: String,
    /// Schema (nullability reflects the variant).
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Dataset {
    /// Register this dataset in a session.
    pub fn register(self, ctx: &SessionContext) -> Result<()> {
        ctx.register_table(self.name, self.schema, self.rows)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Register the Airbnb dataset; returns its table name and row count.
pub fn register_airbnb(
    ctx: &SessionContext,
    n: usize,
    seed: u64,
    variant: Variant,
) -> Result<(String, usize)> {
    let d = airbnb::generate(n, seed, variant);
    let name = d.name.clone();
    let rows = d.len();
    d.register(ctx)?;
    Ok((name, rows))
}

/// Register the store_sales dataset; returns its table name and row count.
pub fn register_store_sales(
    ctx: &SessionContext,
    n: usize,
    seed: u64,
    variant: Variant,
) -> Result<(String, usize)> {
    let d = store_sales::generate(n, seed, variant);
    let name = d.name.clone();
    let rows = d.len();
    d.register(ctx)?;
    Ok((name, rows))
}

/// Register all three MusicBrainz tables (plus the FK declarations that
/// enable the §5.4 join pushdown); returns the recordings table name and
/// row count.
pub fn register_musicbrainz(
    ctx: &SessionContext,
    n: usize,
    seed: u64,
    variant: Variant,
) -> Result<(String, usize)> {
    let mb = musicbrainz::generate(n, seed, variant);
    let name = mb.recordings.name.clone();
    let rows = mb.recordings.len();
    mb.recordings.register(ctx)?;
    mb.meta.register(ctx)?;
    mb.track.register(ctx)?;
    ctx.register_foreign_key("track", "recording", &name, "id")?;
    Ok((name, rows))
}

/// Build the paper's skyline query over a base table with the first `d`
/// dimensions of the given dimension list (§6.2: "selecting the dimensions
/// in the same order as they appear in the table").
pub fn skyline_query_for(
    table: &str,
    dims: &[(&str, &str)],
    d: usize,
    complete_kw: bool,
) -> String {
    assert!((1..=dims.len()).contains(&d));
    let dim_list = dims[..d]
        .iter()
        .map(|(col, ty)| format!("{col} {ty}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "SELECT * FROM {table} SKYLINE OF {}{dim_list}",
        if complete_kw { "COMPLETE " } else { "" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_datasets() {
        let ctx = SessionContext::new();
        let (a, n_a) = register_airbnb(&ctx, 300, 1, Variant::Complete).unwrap();
        let (s, n_s) = register_store_sales(&ctx, 300, 1, Variant::Incomplete).unwrap();
        let (m, n_m) = register_musicbrainz(&ctx, 100, 1, Variant::Complete).unwrap();
        assert_eq!(ctx.table_row_count(&a), Some(n_a));
        assert_eq!(ctx.table_row_count(&s), Some(n_s));
        assert_eq!(ctx.table_row_count(&m), Some(n_m));
        assert!(ctx.table_names().contains(&"track".to_string()));
    }

    #[test]
    fn query_builder_matches_paper_order() {
        let q = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 2, false);
        assert_eq!(
            q,
            "SELECT * FROM airbnb SKYLINE OF price MIN, accommodates MAX"
        );
        let q = skyline_query_for("store_sales", &store_sales::SKYLINE_DIMS, 1, true);
        assert_eq!(
            q,
            "SELECT * FROM store_sales SKYLINE OF COMPLETE ss_quantity MAX"
        );
    }

    #[test]
    fn airbnb_skyline_queries_run() {
        let ctx = SessionContext::new();
        register_airbnb(&ctx, 400, 2, Variant::Complete).unwrap();
        for d in 1..=6 {
            let q = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, d, true);
            let result = ctx.sql(&q).unwrap().collect().unwrap();
            assert!(result.num_rows() > 0, "dims={d}");
        }
    }

    #[test]
    fn musicbrainz_complex_query_runs() {
        let ctx = SessionContext::new();
        register_musicbrainz(&ctx, 150, 3, Variant::Complete).unwrap();
        let q = musicbrainz::skyline_query(Variant::Complete, 3);
        let result = ctx.sql(&q).unwrap().collect().unwrap();
        assert!(result.num_rows() > 0);
        assert_eq!(result.schema.len(), 7);
    }
}
