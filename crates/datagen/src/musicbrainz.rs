//! Synthetic MusicBrainz subset (paper Appendix E, Table 13).
//!
//! Three tables drive the paper's *complex query* experiments:
//!
//! * `recording_complete` / `recording_incomplete` — recordings with
//!   `length` (NULLable in the incomplete variant) and a `video` flag;
//! * `recording_meta` — one row per recording with `rating` /
//!   `rating_count` (NULL for unrated recordings, mirroring the paper's
//!   ~500k rated / ~1M unrated split);
//! * `track` — recordings appear on zero or more tracks with a position.
//!
//! The Appendix E base queries join these with `LEFT OUTER JOIN` +
//! `GROUP BY` + `ifnull`, and the skyline runs on top.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline_common::{DataType, Field, Row, Schema, Value};

use crate::distributions::{chance, geometric, normal, round_to};
use crate::{Dataset, Variant};

/// The Table 13 skyline dimensions over the base-query output, in the
/// paper's order (queries with `d` dimensions use the first `d`).
pub const SKYLINE_DIMS: [(&str, &str); 6] = [
    ("rating", "MAX"),
    ("rating_count", "MAX"),
    ("length", "MIN"),
    ("video", "MAX"),
    ("num_tracks", "MAX"),
    ("min_position", "MIN"),
];

/// All three tables of the subset.
pub struct MusicBrainz {
    /// `recording_complete` or `recording_incomplete`.
    pub recordings: Dataset,
    /// `recording_meta`.
    pub meta: Dataset,
    /// `track`.
    pub track: Dataset,
}

/// Generate a MusicBrainz subset with `n` recordings.
pub fn generate(n: usize, seed: u64, variant: Variant) -> MusicBrainz {
    let mut rng = StdRng::seed_from_u64(seed);
    let incomplete = variant == Variant::Incomplete;

    let rec_schema = Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("length", DataType::Int64, incomplete),
        Field::new("video", DataType::Boolean, false),
    ]);
    let meta_schema = Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("rating", DataType::Float64, true),
        Field::new("rating_count", DataType::Int64, true),
    ]);
    let track_schema = Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("recording", DataType::Int64, false),
        Field::new("position", DataType::Int64, true),
    ]);

    let mut recordings = Vec::with_capacity(n);
    let mut meta = Vec::with_capacity(n);
    let mut tracks = Vec::new();
    let mut track_id = 0i64;
    for id in 0..n as i64 {
        // Track lengths in milliseconds, normal around 3.5 minutes.
        let length = normal(&mut rng, 210_000.0, 60_000.0).max(5_000.0) as i64;
        let length_v = if incomplete && chance(&mut rng, 0.12) {
            Value::Null
        } else {
            Value::Int64(length)
        };
        let video = chance(&mut rng, 0.06);
        recordings.push(Row::new(vec![
            Value::Int64(id),
            length_v,
            Value::Boolean(video),
        ]));

        // ~1/3 of recordings are rated (paper: 500k of 1.5M).
        let (rating, rating_count) = if chance(&mut rng, 0.33) {
            let count = 1 + geometric(&mut rng, 0.08, 500);
            let rating = round_to(normal(&mut rng, 3.8, 0.8).clamp(0.0, 5.0), 2);
            (Value::Float64(rating), Value::Int64(count))
        } else {
            (Value::Null, Value::Null)
        };
        meta.push(Row::new(vec![Value::Int64(id), rating, rating_count]));

        // Popular recordings appear on several compilations.
        let appearances = geometric(&mut rng, 0.55, 8);
        for _ in 0..appearances {
            let position = if chance(&mut rng, 0.02) {
                Value::Null
            } else {
                Value::Int64(rng.gen_range(1..=20))
            };
            tracks.push(Row::new(vec![
                Value::Int64(track_id),
                Value::Int64(id),
                position,
            ]));
            track_id += 1;
        }
    }

    MusicBrainz {
        recordings: Dataset {
            name: match variant {
                Variant::Complete => "recording_complete".to_string(),
                Variant::Incomplete => "recording_incomplete".to_string(),
            },
            schema: rec_schema,
            rows: recordings,
        },
        meta: Dataset {
            name: "recording_meta".to_string(),
            schema: meta_schema,
            rows: meta,
        },
        track: Dataset {
            name: "track".to_string(),
            schema: track_schema,
            rows: tracks,
        },
    }
}

/// The paper's complete base query (Listing 11), parameterless.
pub fn base_query_complete() -> String {
    "SELECT \
       r.id, \
       ifnull(r.length, 0) AS length, \
       r.video, \
       ifnull(rm.rating, 0) AS rating, \
       ifnull(rm.rating_count, 0) AS rating_count, \
       ifnull(recording_tracks.num_tracks, 0) AS num_tracks, \
       ifnull(recording_tracks.min_position, 0) AS min_position \
     FROM recording_complete r LEFT OUTER JOIN ( \
       SELECT \
         ri.id AS id, \
         count(ti.recording) AS num_tracks, \
         min(ti.position) AS min_position \
       FROM recording_complete ri \
       JOIN track ti ON (ti.recording = ri.id) \
       GROUP BY ri.id \
     ) recording_tracks USING (id) \
     JOIN recording_meta rm USING (id)"
        .to_string()
}

/// The paper's incomplete base query (Listing 12); NULLs flow through.
pub fn base_query_incomplete() -> String {
    "SELECT \
       r.id, \
       r.length AS length, \
       r.video, \
       rm.rating AS rating, \
       rm.rating_count AS rating_count, \
       recording_tracks.num_tracks, \
       recording_tracks.min_position \
     FROM recording_incomplete r LEFT OUTER JOIN ( \
       SELECT \
         ri.id AS id, \
         count(ti.recording) AS num_tracks, \
         min(ti.position) AS min_position \
       FROM recording_incomplete ri \
       JOIN track ti ON (ti.recording = ri.id) \
       GROUP BY ri.id \
     ) recording_tracks USING (id) \
     JOIN recording_meta rm USING (id)"
        .to_string()
}

/// The skyline query over the base query with the first `d` dimensions
/// of Table 13 (Listing 14 shape).
pub fn skyline_query(variant: Variant, d: usize) -> String {
    assert!((1..=6).contains(&d));
    let base = match variant {
        Variant::Complete => base_query_complete(),
        Variant::Incomplete => base_query_incomplete(),
    };
    let dims = SKYLINE_DIMS[..d]
        .iter()
        .map(|(col, ty)| format!("{col} {ty}"))
        .collect::<Vec<_>>()
        .join(", ");
    let complete_kw = match variant {
        Variant::Complete => "COMPLETE ",
        Variant::Incomplete => "",
    };
    format!("SELECT * FROM ( {base} ) SKYLINE OF {complete_kw}{dims}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        let mb = generate(300, 21, Variant::Complete);
        assert_eq!(mb.recordings.rows.len(), 300);
        assert_eq!(mb.meta.rows.len(), 300);
        // Every track references an existing recording.
        let n = mb.recordings.rows.len() as i64;
        for t in &mb.track.rows {
            match t.get(1) {
                Value::Int64(r) => assert!((0..n).contains(r)),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn complete_recordings_have_no_null_length() {
        let mb = generate(400, 2, Variant::Complete);
        assert!(mb.recordings.rows.iter().all(|r| !r.get(1).is_null()));
        let mbi = generate(400, 2, Variant::Incomplete);
        assert!(mbi.recordings.rows.iter().any(|r| r.get(1).is_null()));
    }

    #[test]
    fn some_recordings_unrated() {
        let mb = generate(400, 2, Variant::Complete);
        let unrated = mb.meta.rows.iter().filter(|r| r.get(1).is_null()).count();
        assert!(unrated > 100, "{unrated}");
        assert!(unrated < 400);
    }

    #[test]
    fn query_builders() {
        let q = skyline_query(Variant::Complete, 3);
        assert!(q.contains("SKYLINE OF COMPLETE rating MAX, rating_count MAX, length MIN"));
        let q = skyline_query(Variant::Incomplete, 1);
        assert!(q.contains("SKYLINE OF rating MAX"));
        assert!(!q.contains("COMPLETE"));
    }

    #[test]
    #[should_panic]
    fn zero_dims_rejected() {
        let _ = skyline_query(Variant::Complete, 0);
    }
}
