//! Synthetic DSB `store_sales` table (paper §6.2, Table 2).
//!
//! DSB (Ding et al., VLDB 2021) extends TPC-DS with skewed, correlated
//! distributions. This generator reproduces the `store_sales` pricing
//! chain the skyline queries touch: `wholesale → list (uplift) → sales
//! (discount)` with quantities on a small uniform domain. The small
//! `ss_quantity` domain is what produces the paper's Figure 4 effect —
//! a huge one-dimensional skyline (every max-quantity sale) that collapses
//! once `ss_wholesale_cost` is added.
//!
//! Unlike the Airbnb data, the complete and incomplete variants have the
//! **same size** (the paper notes exactly this difference): the complete
//! variant simply has no NULLs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline_common::{DataType, Field, Row, Schema, Value};

use crate::distributions::{chance, round_to};
use crate::{Dataset, Variant};

/// Table 2 column order: two keys + six skyline dimensions.
pub fn schema(variant: Variant) -> Schema {
    let nullable = variant == Variant::Incomplete;
    Schema::new(vec![
        Field::new("ss_item_sk", DataType::Int64, false),
        Field::new("ss_ticket_number", DataType::Int64, false),
        Field::new("ss_quantity", DataType::Int64, nullable),
        Field::new("ss_wholesale_cost", DataType::Float64, nullable),
        Field::new("ss_list_price", DataType::Float64, nullable),
        Field::new("ss_sales_price", DataType::Float64, nullable),
        Field::new("ss_ext_discount_amt", DataType::Float64, nullable),
        Field::new("ss_ext_sales_price", DataType::Float64, nullable),
    ])
}

/// The six skyline dimensions of Table 2, in the paper's order.
pub const SKYLINE_DIMS: [(&str, &str); 6] = [
    ("ss_quantity", "MAX"),
    ("ss_wholesale_cost", "MIN"),
    ("ss_list_price", "MIN"),
    ("ss_sales_price", "MIN"),
    ("ss_ext_discount_amt", "MAX"),
    ("ss_ext_sales_price", "MIN"),
];

/// Generate `n` sales rows.
pub fn generate(n: usize, seed: u64, variant: Variant) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let incomplete = variant == Variant::Incomplete;
    for i in 0..n as i64 {
        let item = rng.gen_range(1..=200_000i64);
        let ticket = i + 1;
        // TPC-DS/DSB: quantity 1..100 (uniform, small domain).
        let quantity = rng.gen_range(1..=100i64);
        let wholesale = round_to(rng.gen_range(1.0..=100.0f64), 2);
        // List price uplift 1.0x–2.5x; discounts up to 75 %.
        let list = round_to(wholesale * rng.gen_range(1.0..=2.5), 2);
        let discount_rate = if chance(&mut rng, 0.55) {
            0.0
        } else {
            rng.gen_range(0.01..=0.75)
        };
        let sales = round_to(list * (1.0 - discount_rate), 2);
        let ext_discount = round_to((list - sales) * quantity as f64, 2);
        let ext_sales = round_to(sales * quantity as f64, 2);

        // DSB store_sales nullable measure columns: inject NULLs in the
        // incomplete variant only (~4 % per column, ~20 % of rows).
        let maybe = |rng: &mut StdRng, v: Value| {
            if incomplete && chance(rng, 0.04) {
                Value::Null
            } else {
                v
            }
        };
        let row = Row::new(vec![
            Value::Int64(item),
            Value::Int64(ticket),
            maybe(&mut rng, Value::Int64(quantity)),
            maybe(&mut rng, Value::Float64(wholesale)),
            maybe(&mut rng, Value::Float64(list)),
            maybe(&mut rng, Value::Float64(sales)),
            maybe(&mut rng, Value::Float64(ext_discount)),
            maybe(&mut rng, Value::Float64(ext_sales)),
        ]);
        rows.push(row);
    }
    Dataset {
        name: match variant {
            Variant::Complete => "store_sales".to_string(),
            Variant::Incomplete => "store_sales_incomplete".to_string(),
        },
        schema: schema(variant),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_have_equal_size() {
        let c = generate(1000, 3, Variant::Complete);
        let i = generate(1000, 3, Variant::Incomplete);
        assert_eq!(c.rows.len(), 1000);
        assert_eq!(i.rows.len(), 1000);
    }

    #[test]
    fn complete_has_no_nulls_incomplete_does() {
        let c = generate(1000, 3, Variant::Complete);
        assert!(c
            .rows
            .iter()
            .all(|r| r.values().iter().all(|v| !v.is_null())));
        let i = generate(1000, 3, Variant::Incomplete);
        let with_null = i
            .rows
            .iter()
            .filter(|r| r.values().iter().any(Value::is_null))
            .count();
        assert!(with_null > 100, "{with_null}");
    }

    #[test]
    fn pricing_chain_invariants() {
        let d = generate(500, 11, Variant::Complete);
        for row in &d.rows {
            let (w, l, s) = match (row.get(3), row.get(4), row.get(5)) {
                (Value::Float64(w), Value::Float64(l), Value::Float64(s)) => (*w, *l, *s),
                other => panic!("{other:?}"),
            };
            assert!(l >= w - 1e-9, "list {l} >= wholesale {w}");
            assert!(s <= l + 1e-9, "sales {s} <= list {l}");
        }
    }

    #[test]
    fn quantity_domain_is_small() {
        // Many rows share the maximum quantity — the Figure 4 effect.
        let d = generate(5000, 13, Variant::Complete);
        let max_count = d
            .rows
            .iter()
            .filter(|r| r.get(2) == &Value::Int64(100))
            .count();
        assert!(max_count > 10, "{max_count} rows at max quantity");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(100, 5, Variant::Incomplete).rows,
            generate(100, 5, Variant::Incomplete).rows
        );
    }
}
