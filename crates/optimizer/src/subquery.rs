//! Rewrite `[NOT] EXISTS` subqueries into left semi / left anti joins.
//!
//! The paper's *reference* algorithm executes the plain-SQL skyline rewrite
//! of Listing 4, whose core is a correlated `NOT EXISTS`. Spark's optimizer
//! performs the same `RewritePredicateSubquery` transformation; here it
//! turns
//!
//! ```text
//! Filter(... AND NOT EXISTS(SELECT * FROM inner WHERE <correlated>))
//! ```
//!
//! into `LeftAntiJoin(outer, inner, on: <correlated'>)`, with outer
//! references mapped onto the join's left side. The resulting nested-loop
//! anti join is what gives the reference algorithm its characteristic
//! quadratic cost profile in the evaluation (§6).

use std::sync::Arc;

use sparkline_common::{Error, Result};
use sparkline_plan::{BoundColumn, Expr, JoinCondition, JoinType, LogicalPlan};

use crate::pushdown::{conjoin, split_conjuncts};

/// Rewrite all `[NOT] EXISTS` predicates in the plan into semi/anti joins.
pub fn rewrite_exists_subqueries(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Filter { predicate, input } = &node else {
            return Ok(node);
        };
        if !contains_exists(predicate) {
            return Ok(node);
        }
        let left_len = input.schema()?.len();
        let mut current: LogicalPlan = input.as_ref().clone();
        let mut residual: Vec<Expr> = Vec::new();
        for conjunct in split_conjuncts(predicate) {
            match conjunct {
                Expr::Exists { subquery, negated } => {
                    // Recursively rewrite EXISTS nested inside the subquery.
                    let subplan = rewrite_exists_subqueries(&subquery)?;
                    let (right, correlated) = decorrelate(&subplan)?;
                    let join_type = if negated {
                        JoinType::LeftAnti
                    } else {
                        JoinType::LeftSemi
                    };
                    let condition = match conjoin(
                        correlated
                            .into_iter()
                            .map(|c| remap_correlated(c, left_len))
                            .collect::<Result<Vec<_>>>()?,
                    ) {
                        Some(p) => JoinCondition::On(p),
                        // Uncorrelated EXISTS: the join condition is TRUE —
                        // existence depends only on the right side being
                        // non-empty.
                        None => JoinCondition::On(Expr::lit(true)),
                    };
                    current = LogicalPlan::Join {
                        left: Arc::new(current),
                        right: Arc::new(right),
                        join_type,
                        condition,
                    };
                }
                other => {
                    if contains_exists(&other) {
                        return Err(Error::plan(format!(
                            "EXISTS must appear as a top-level conjunct of a filter \
                             (found inside '{other}')"
                        )));
                    }
                    residual.push(other);
                }
            }
        }
        Ok(match conjoin(residual) {
            Some(p) => LogicalPlan::Filter {
                predicate: p,
                input: Arc::new(current),
            },
            None => current,
        })
    })
}

fn contains_exists(e: &Expr) -> bool {
    match e {
        Expr::Exists { .. } => true,
        other => other.children().iter().any(|c| contains_exists(c)),
    }
}

fn contains_outer_ref_expr(e: &Expr) -> bool {
    match e {
        Expr::OuterColumn(_) => true,
        other => other.children().iter().any(|c| contains_outer_ref_expr(c)),
    }
}

fn plan_has_outer_refs(plan: &LogicalPlan) -> bool {
    let mut found = false;
    plan.visit_expressions(&mut |e| {
        if matches!(e, Expr::OuterColumn(_)) {
            found = true;
        }
    });
    found
}

/// Strip the subquery down to the relation the join probes, extracting the
/// correlated conjuncts.
///
/// Supported shape: any stack of `Projection` / `SubqueryAlias` / `Sort` /
/// `Distinct` / `Limit(n≥1)` nodes (none of which affect row existence)
/// over `Filter`s whose correlated conjuncts are collected, over an
/// arbitrary *uncorrelated* plan. Correlation anywhere else is rejected —
/// the same restriction Spark places on predicate subqueries.
fn decorrelate(plan: &LogicalPlan) -> Result<(LogicalPlan, Vec<Expr>)> {
    match plan {
        LogicalPlan::Projection { exprs, input } => {
            if exprs.iter().any(contains_outer_ref_expr) {
                return Err(Error::plan(
                    "correlated column in subquery projection is not supported",
                ));
            }
            decorrelate(input)
        }
        LogicalPlan::SubqueryAlias { input, .. } | LogicalPlan::Distinct { input } => {
            decorrelate(input)
        }
        LogicalPlan::Sort { exprs, input } => {
            if exprs.iter().any(|s| contains_outer_ref_expr(&s.expr)) {
                return Err(Error::plan(
                    "correlated column in subquery ORDER BY is not supported",
                ));
            }
            decorrelate(input)
        }
        LogicalPlan::Limit { n, input } => {
            if *n == 0 {
                return Err(Error::plan("EXISTS over LIMIT 0 is degenerate"));
            }
            decorrelate(input)
        }
        LogicalPlan::Filter { .. } => decorrelate_filter_chain(plan),
        other => {
            if plan_has_outer_refs(other) {
                return Err(Error::plan(
                    "correlated reference below a join/aggregate in an EXISTS \
                     subquery is not supported",
                ));
            }
            Ok((other.clone(), vec![]))
        }
    }
}

/// Collect correlated conjuncts from a chain of `Filter` nodes. In
/// contrast to [`decorrelate`], nothing below the chain may be peeled:
/// the correlated conjuncts were resolved against the filters' input
/// schema, so the plan underneath (projections included!) must be
/// preserved exactly as the join's probe side.
fn decorrelate_filter_chain(plan: &LogicalPlan) -> Result<(LogicalPlan, Vec<Expr>)> {
    match plan {
        LogicalPlan::Filter { predicate, input } => {
            let (inner, mut correlated) = decorrelate_filter_chain(input)?;
            let mut plain = Vec::new();
            for c in split_conjuncts(predicate) {
                if contains_outer_ref_expr(&c) {
                    correlated.push(c);
                } else {
                    plain.push(c);
                }
            }
            let result = match conjoin(plain) {
                Some(p) => LogicalPlan::Filter {
                    predicate: p,
                    input: Arc::new(inner),
                },
                None => inner,
            };
            Ok((result, correlated))
        }
        other => {
            if plan_has_outer_refs(other) {
                return Err(Error::plan(
                    "correlated reference below a join/aggregate in an EXISTS \
                     subquery is not supported",
                ));
            }
            Ok((other.clone(), vec![]))
        }
    }
}

/// Map a correlated conjunct into the join's combined row space: outer
/// references become left-side columns, inner references shift right.
fn remap_correlated(e: Expr, left_len: usize) -> Result<Expr> {
    e.transform_up(&mut |node| {
        Ok(match node {
            Expr::OuterColumn(c) => Expr::BoundColumn(c),
            Expr::BoundColumn(c) => Expr::BoundColumn(BoundColumn {
                index: c.index + left_len,
                field: c.field,
            }),
            other => other,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema};

    fn scan(q: &str) -> LogicalPlan {
        LogicalPlan::TableScan {
            name: "t".into(),
            schema: Schema::new(vec![
                Field::qualified(q, "a", DataType::Int64, false),
                Field::qualified(q, "b", DataType::Int64, false),
            ])
            .into_ref(),
        }
    }

    fn outer_col(i: usize) -> Expr {
        Expr::OuterColumn(BoundColumn {
            index: i,
            field: Field::qualified("o", "a", DataType::Int64, false),
        })
    }

    fn inner_col(i: usize) -> Expr {
        Expr::BoundColumn(BoundColumn {
            index: i,
            field: Field::qualified("i", "a", DataType::Int64, false),
        })
    }

    fn exists_filter(negated: bool) -> LogicalPlan {
        // Filter(NOT EXISTS(SELECT * FROM t i WHERE i.a <= o.a), t o)
        let subquery = LogicalPlan::Projection {
            exprs: vec![inner_col(0), inner_col(1)],
            input: Arc::new(LogicalPlan::Filter {
                predicate: inner_col(0).lt_eq(outer_col(0)),
                input: Arc::new(scan("i")),
            }),
        };
        LogicalPlan::Filter {
            predicate: Expr::Exists {
                subquery: Arc::new(subquery),
                negated,
            },
            input: Arc::new(scan("o")),
        }
    }

    #[test]
    fn not_exists_becomes_anti_join() {
        let plan = rewrite_exists_subqueries(&exists_filter(true)).unwrap();
        match &plan {
            LogicalPlan::Join {
                join_type,
                condition,
                ..
            } => {
                assert_eq!(*join_type, JoinType::LeftAnti);
                match condition {
                    JoinCondition::On(e) => {
                        // o.a is left index 0; i.a shifts to 2 (left width 2).
                        assert_eq!(e.to_string(), "(i.a#2 <= o.a#0)");
                    }
                    other => panic!("expected On condition, got {other:?}"),
                }
            }
            other => panic!("expected anti join, got:\n{other}"),
        }
    }

    #[test]
    fn exists_becomes_semi_join() {
        let plan = rewrite_exists_subqueries(&exists_filter(false)).unwrap();
        assert!(matches!(
            plan,
            LogicalPlan::Join {
                join_type: JoinType::LeftSemi,
                ..
            }
        ));
    }

    #[test]
    fn uncorrelated_conjuncts_stay_in_subquery() {
        let subquery = LogicalPlan::Filter {
            predicate: inner_col(1)
                .gt(Expr::lit(0i64))
                .and(inner_col(0).lt_eq(outer_col(0))),
            input: Arc::new(scan("i")),
        };
        let plan = LogicalPlan::Filter {
            predicate: Expr::Exists {
                subquery: Arc::new(subquery),
                negated: true,
            },
            input: Arc::new(scan("o")),
        };
        let rewritten = rewrite_exists_subqueries(&plan).unwrap();
        let d = rewritten.display_indent();
        assert!(d.contains("Join [LeftAnti"), "{d}");
        // The uncorrelated filter survives on the right side.
        assert!(d.contains("Filter [(i.a#1 > 0)]"), "{d}");
    }

    #[test]
    fn residual_predicates_remain_as_filter() {
        let plan = LogicalPlan::Filter {
            predicate: inner_col(0).gt(Expr::lit(7i64)).and(Expr::Exists {
                subquery: Arc::new(scan("i")),
                negated: true,
            }),
            input: Arc::new(scan("o")),
        };
        let rewritten = rewrite_exists_subqueries(&plan).unwrap();
        match &rewritten {
            LogicalPlan::Filter { predicate, input } => {
                assert_eq!(predicate.to_string(), "(i.a#0 > 7)");
                assert!(matches!(input.as_ref(), LogicalPlan::Join { .. }));
            }
            other => panic!("expected residual filter, got:\n{other}"),
        }
    }

    #[test]
    fn correlation_under_aggregate_rejected() {
        let subquery = LogicalPlan::Aggregate {
            group_exprs: vec![],
            aggr_exprs: vec![Expr::Aggregate {
                func: sparkline_plan::AggregateFunction::Count,
                arg: None,
            }],
            input: Arc::new(LogicalPlan::Filter {
                predicate: inner_col(0).eq(outer_col(0)),
                input: Arc::new(scan("i")),
            }),
        };
        let plan = LogicalPlan::Filter {
            predicate: Expr::Exists {
                subquery: Arc::new(subquery),
                negated: false,
            },
            input: Arc::new(scan("o")),
        };
        assert!(rewrite_exists_subqueries(&plan).is_err());
    }

    #[test]
    fn plans_without_exists_untouched() {
        let plan = LogicalPlan::Filter {
            predicate: inner_col(0).gt(Expr::lit(1i64)),
            input: Arc::new(scan("o")),
        };
        assert_eq!(rewrite_exists_subqueries(&plan).unwrap(), plan);
    }
}
