//! Skyline-specific optimizer rules (paper §5.4):
//!
//! * [`rewrite_single_dim_skyline`] — a skyline over exactly one `MIN` or
//!   `MAX` dimension is just "all tuples attaining the optimum"; instead of
//!   O(n log n) sort-and-select the paper picks the O(n) scalar-optimum +
//!   selection form, which our [`LogicalPlan::MinMaxFilter`] node executes
//!   in two linear passes. Tuples that are NULL in the dimension are
//!   incomparable to everything and therefore kept, which makes the rewrite
//!   valid for incomplete data as well.
//! * [`push_skyline_below_join`] — if the skyline's input is a
//!   *non-reductive* join (Carey & Kossmann [6]) and all skyline dimensions
//!   come from the join's left side, the skyline may be evaluated before
//!   the join, shrinking the inputs of both operators. Left outer joins are
//!   structurally non-reductive for their left side; inner equi-joins
//!   qualify when the catalog declares a foreign-key guarantee.
//! * [`drop_diff_only_skyline`] — a skyline whose dimensions are all
//!   `DIFF` cannot eliminate any tuple (dominance requires strict
//!   improvement in some `MIN`/`MAX` dimension) and is removed when it is
//!   not `DISTINCT`.
//! * [`infer_complete_skyline`] — Listing 8's nullability check promoted
//!   to a logical rewrite: a skyline none of whose dimensions can be NULL
//!   is marked `COMPLETE`, so the plan itself carries the metadata the
//!   physical strategy selection (`sparkline_common::strategy`) consumes
//!   and `EXPLAIN` shows which algorithm family will run.

use std::sync::Arc;

use sparkline_common::{Result, SkylineType};
use sparkline_plan::{
    CatalogProvider, Expr, JoinCondition, JoinType, LogicalPlan, MinMaxDirection,
};

/// Rewrite single-dimension `MIN`/`MAX` skylines into [`LogicalPlan::MinMaxFilter`].
pub fn rewrite_single_dim_skyline(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Skyline {
            distinct,
            complete: _,
            dims,
            input,
        } = &node
        else {
            return Ok(node);
        };
        if dims.len() != 1 {
            return Ok(node);
        }
        let Some(direction) = MinMaxDirection::from_skyline_type(dims[0].ty) else {
            return Ok(node);
        };
        Ok(LogicalPlan::MinMaxFilter {
            expr: dims[0].child.clone(),
            direction,
            distinct: *distinct,
            input: Arc::clone(input),
        })
    })
}

/// Mark skylines over non-nullable dimensions as `COMPLETE` (Listing 8's
/// metadata check, moved from the physical planner into the optimizer so
/// the logical plan carries the decision).
pub fn infer_complete_skyline(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Skyline {
            distinct,
            complete: false,
            dims,
            input,
        } = &node
        else {
            return Ok(node);
        };
        let schema = input.schema()?;
        let any_nullable = dims
            .iter()
            .map(|d| Ok(d.child.data_type_and_nullable(&schema)?.1))
            .collect::<Result<Vec<bool>>>()?
            .into_iter()
            .any(|nullable| nullable);
        if any_nullable {
            return Ok(node);
        }
        Ok(LogicalPlan::Skyline {
            distinct: *distinct,
            complete: true,
            dims: dims.clone(),
            input: Arc::clone(input),
        })
    })
}

/// Remove skylines with only `DIFF` dimensions (no tuple can be dominated).
pub fn drop_diff_only_skyline(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        if let LogicalPlan::Skyline {
            distinct: false,
            dims,
            input,
            ..
        } = &node
        {
            if !dims.is_empty() && dims.iter().all(|d| d.ty == SkylineType::Diff) {
                return Ok(input.as_ref().clone());
            }
        }
        Ok(node)
    })
}

/// Push a skyline below a non-reductive join (paper §5.4, after [5]/[6]).
pub fn push_skyline_below_join(
    plan: &LogicalPlan,
    catalog: Option<&dyn CatalogProvider>,
) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Skyline {
            distinct,
            complete,
            dims,
            input,
        } = &node
        else {
            return Ok(node);
        };
        // SKYLINE OF DISTINCT cannot be pushed: the join may re-multiply a
        // deduplicated representative, changing output cardinality.
        if *distinct {
            return Ok(node);
        }
        // The analyzer's missing-reference rule (Listing 6) often leaves a
        // projection between the skyline and the join; dimensions are
        // re-expressed through it so the join becomes visible.
        let (join_node, dims) = match input.as_ref() {
            LogicalPlan::Projection {
                exprs: proj_exprs,
                input: proj_input,
            } if matches!(proj_input.as_ref(), LogicalPlan::Join { .. }) => {
                let substituted = dims
                    .iter()
                    .map(|d| {
                        Ok(sparkline_plan::SkylineDimension {
                            child: substitute_through_projection(d.child.clone(), proj_exprs)?,
                            ty: d.ty,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                (proj_input.as_ref(), substituted)
            }
            other => (other, dims.clone()),
        };
        let LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
        } = join_node
        else {
            return Ok(node);
        };
        let left_len = left.schema()?.len();
        // All dimensions must be computed purely from left-side columns.
        let dims_on_left = dims.iter().all(|d| {
            let mut idx = Vec::new();
            d.child.referenced_indices(&mut idx);
            !idx.is_empty() && idx.iter().all(|&i| i < left_len)
        });
        if !dims_on_left {
            return Ok(node);
        }
        let non_reductive = match join_type {
            // Every left tuple survives a left outer join at least once.
            JoinType::LeftOuter => true,
            // Inner equi-joins qualify when a foreign-key constraint
            // guarantees a partner for every left tuple.
            JoinType::Inner => inner_join_guaranteed(left, right, condition, left_len, catalog),
            _ => false,
        };
        if !non_reductive {
            return Ok(node);
        }
        let pushed = LogicalPlan::Skyline {
            distinct: *distinct,
            complete: *complete,
            dims,
            input: Arc::clone(left),
        };
        let new_join = LogicalPlan::Join {
            left: Arc::new(pushed),
            right: Arc::clone(right),
            join_type: *join_type,
            condition: condition.clone(),
        };
        // Re-attach the intervening projection, if one was looked through.
        Ok(match input.as_ref() {
            LogicalPlan::Projection {
                exprs: proj_exprs, ..
            } => LogicalPlan::Projection {
                exprs: proj_exprs.clone(),
                input: Arc::new(new_join),
            },
            _ => new_join,
        })
    })
}

/// Re-express an expression over a projection's *input* by inlining the
/// projection expressions its bound references point at.
fn substitute_through_projection(e: Expr, proj_exprs: &[Expr]) -> Result<Expr> {
    fn strip(e: &Expr) -> Expr {
        match e {
            Expr::Alias { expr, .. } => strip(expr),
            other => other.clone(),
        }
    }
    e.transform_up(&mut |node| {
        Ok(match node {
            Expr::BoundColumn(c) => strip(&proj_exprs[c.index]),
            other => other,
        })
    })
}

/// Check the foreign-key guarantee for an inner equi-join: the condition is
/// a single `left.col = right.col` between two base table scans, and the
/// catalog guarantees a partner for every left tuple.
fn inner_join_guaranteed(
    left: &LogicalPlan,
    right: &LogicalPlan,
    condition: &JoinCondition,
    left_len: usize,
    catalog: Option<&dyn CatalogProvider>,
) -> bool {
    let Some(catalog) = catalog else {
        return false;
    };
    let JoinCondition::On(expr) = condition else {
        return false;
    };
    let Expr::BinaryOp {
        left: cl,
        op: sparkline_plan::BinaryOp::Eq,
        right: cr,
    } = expr
    else {
        return false;
    };
    let (Expr::BoundColumn(a), Expr::BoundColumn(b)) = (cl.as_ref(), cr.as_ref()) else {
        return false;
    };
    // Normalize to (left column, right column).
    let (lc, rc) = if a.index < left_len && b.index >= left_len {
        (a, b)
    } else if b.index < left_len && a.index >= left_len {
        (b, a)
    } else {
        return false;
    };
    // A NULL foreign key would have no partner.
    if lc.field.nullable() {
        return false;
    }
    let (Some(lt), Some(rt)) = (base_table(left), base_table(right)) else {
        return false;
    };
    catalog.guarantees_partner(lt, lc.field.name(), rt, rc.field.name())
}

/// The base table name if the plan is a bare scan (possibly aliased).
fn base_table(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::TableScan { name, .. } => Some(name),
        LogicalPlan::SubqueryAlias { input, .. } => base_table(input),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema};
    use sparkline_plan::{BoundColumn, SkylineDimension, StaticCatalog};

    fn scan(name: &str, cols: &[(&str, bool)]) -> LogicalPlan {
        LogicalPlan::TableScan {
            name: name.into(),
            schema: Schema::new(
                cols.iter()
                    .map(|(c, nullable)| Field::qualified(name, *c, DataType::Int64, *nullable))
                    .collect(),
            )
            .into_ref(),
        }
    }

    fn bound(plan: &LogicalPlan, index: usize) -> Expr {
        // For joins, index against the combined schema of children.
        let field = match plan {
            LogicalPlan::Join { left, right, .. } => {
                let ls = left.schema().unwrap();
                if index < ls.len() {
                    ls.field(index).clone()
                } else {
                    right.schema().unwrap().field(index - ls.len()).clone()
                }
            }
            other => other.schema().unwrap().field(index).clone(),
        };
        Expr::BoundColumn(BoundColumn { index, field })
    }

    fn skyline_over(
        input: LogicalPlan,
        dims: Vec<(usize, SkylineType)>,
        distinct: bool,
    ) -> LogicalPlan {
        let dim_exprs = dims
            .into_iter()
            .map(|(i, ty)| SkylineDimension::new(bound(&input, i), ty))
            .collect();
        LogicalPlan::Skyline {
            distinct,
            complete: true,
            dims: dim_exprs,
            input: Arc::new(input),
        }
    }

    #[test]
    fn single_min_dim_becomes_minmax_filter() {
        let plan = skyline_over(
            scan("t", &[("a", false)]),
            vec![(0, SkylineType::Min)],
            false,
        );
        let optimized = rewrite_single_dim_skyline(&plan).unwrap();
        match optimized {
            LogicalPlan::MinMaxFilter {
                direction,
                distinct,
                ..
            } => {
                assert_eq!(direction, MinMaxDirection::Min);
                assert!(!distinct);
            }
            other => panic!("expected MinMaxFilter, got:\n{other}"),
        }
    }

    #[test]
    fn single_max_dim_with_distinct() {
        let plan = skyline_over(scan("t", &[("a", true)]), vec![(0, SkylineType::Max)], true);
        let optimized = rewrite_single_dim_skyline(&plan).unwrap();
        assert!(matches!(
            optimized,
            LogicalPlan::MinMaxFilter {
                direction: MinMaxDirection::Max,
                distinct: true,
                ..
            }
        ));
    }

    #[test]
    fn multi_dim_skyline_untouched() {
        let plan = skyline_over(
            scan("t", &[("a", false), ("b", false)]),
            vec![(0, SkylineType::Min), (1, SkylineType::Max)],
            false,
        );
        assert_eq!(rewrite_single_dim_skyline(&plan).unwrap(), plan);
    }

    #[test]
    fn single_diff_dim_untouched_by_minmax_rule() {
        let plan = skyline_over(
            scan("t", &[("a", false)]),
            vec![(0, SkylineType::Diff)],
            false,
        );
        assert_eq!(rewrite_single_dim_skyline(&plan).unwrap(), plan);
    }

    /// Like [`skyline_over`] but without the user-declared `COMPLETE`.
    fn undeclared_skyline_over(input: LogicalPlan, dims: Vec<(usize, SkylineType)>) -> LogicalPlan {
        match skyline_over(input, dims, false) {
            LogicalPlan::Skyline {
                distinct,
                dims,
                input,
                ..
            } => LogicalPlan::Skyline {
                distinct,
                complete: false,
                dims,
                input,
            },
            other => other,
        }
    }

    #[test]
    fn non_nullable_skyline_inferred_complete() {
        let plan = undeclared_skyline_over(
            scan("t", &[("a", false), ("b", false)]),
            vec![(0, SkylineType::Min), (1, SkylineType::Max)],
        );
        let optimized = infer_complete_skyline(&plan).unwrap();
        assert!(
            matches!(optimized, LogicalPlan::Skyline { complete: true, .. }),
            "{optimized}"
        );
    }

    #[test]
    fn nullable_skyline_stays_incomplete() {
        let plan = undeclared_skyline_over(
            scan("t", &[("a", false), ("b", true)]),
            vec![(0, SkylineType::Min), (1, SkylineType::Max)],
        );
        let optimized = infer_complete_skyline(&plan).unwrap();
        assert!(
            matches!(
                optimized,
                LogicalPlan::Skyline {
                    complete: false,
                    ..
                }
            ),
            "{optimized}"
        );
    }

    #[test]
    fn diff_only_skyline_dropped() {
        let plan = skyline_over(
            scan("t", &[("a", false)]),
            vec![(0, SkylineType::Diff)],
            false,
        );
        let optimized = drop_diff_only_skyline(&plan).unwrap();
        assert!(matches!(optimized, LogicalPlan::TableScan { .. }));
    }

    #[test]
    fn diff_only_distinct_skyline_kept() {
        let plan = skyline_over(
            scan("t", &[("a", false)]),
            vec![(0, SkylineType::Diff)],
            true,
        );
        assert_eq!(drop_diff_only_skyline(&plan).unwrap(), plan);
    }

    fn left_outer_join() -> LogicalPlan {
        LogicalPlan::Join {
            left: Arc::new(scan("l", &[("a", false), ("b", false)])),
            right: Arc::new(scan("r", &[("c", false)])),
            join_type: JoinType::LeftOuter,
            condition: JoinCondition::None,
        }
    }

    #[test]
    fn pushes_skyline_below_left_outer_join() {
        let join = left_outer_join();
        let plan = skyline_over(
            join,
            vec![(0, SkylineType::Min), (1, SkylineType::Max)],
            false,
        );
        let optimized = push_skyline_below_join(&plan, None).unwrap();
        match &optimized {
            LogicalPlan::Join { left, .. } => {
                assert!(
                    matches!(left.as_ref(), LogicalPlan::Skyline { .. }),
                    "skyline moved into left side:\n{optimized}"
                );
            }
            other => panic!("expected join on top, got:\n{other}"),
        }
    }

    #[test]
    fn no_pushdown_when_dims_touch_right_side() {
        let join = left_outer_join();
        let plan = skyline_over(
            join,
            vec![(0, SkylineType::Min), (2, SkylineType::Max)],
            false,
        );
        let optimized = push_skyline_below_join(&plan, None).unwrap();
        assert!(matches!(optimized, LogicalPlan::Skyline { .. }));
    }

    #[test]
    fn no_pushdown_for_distinct_skyline() {
        let join = left_outer_join();
        let plan = skyline_over(join, vec![(0, SkylineType::Min)], true);
        let optimized = push_skyline_below_join(&plan, None).unwrap();
        assert!(matches!(optimized, LogicalPlan::Skyline { .. }));
    }

    #[test]
    fn inner_join_pushdown_requires_fk_guarantee() {
        let mk_join = || LogicalPlan::Join {
            left: Arc::new(scan("track", &[("recording", false), ("pos", false)])),
            right: Arc::new(scan("recording", &[("id", false)])),
            join_type: JoinType::Inner,
            condition: JoinCondition::On(
                Expr::BoundColumn(BoundColumn {
                    index: 0,
                    field: Field::qualified("track", "recording", DataType::Int64, false),
                })
                .eq(Expr::BoundColumn(BoundColumn {
                    index: 2,
                    field: Field::qualified("recording", "id", DataType::Int64, false),
                })),
            ),
        };
        let plan = skyline_over(mk_join(), vec![(1, SkylineType::Min)], false);

        // Without the FK: no pushdown.
        let untouched = push_skyline_below_join(&plan, None).unwrap();
        assert!(matches!(untouched, LogicalPlan::Skyline { .. }));
        let empty = StaticCatalog::new();
        let untouched = push_skyline_below_join(&plan, Some(&empty)).unwrap();
        assert!(matches!(untouched, LogicalPlan::Skyline { .. }));

        // With the FK declared: pushdown fires.
        let mut cat = StaticCatalog::new();
        cat.register_foreign_key("track", "recording", "recording", "id");
        let optimized = push_skyline_below_join(&plan, Some(&cat)).unwrap();
        match &optimized {
            LogicalPlan::Join { left, .. } => {
                assert!(matches!(left.as_ref(), LogicalPlan::Skyline { .. }));
            }
            other => panic!("expected join with pushed skyline, got:\n{other}"),
        }
    }
}
