//! Generic relational rewrites: filter merging and pushdown, projection
//! collapsing, and no-op projection elimination. These are the "default
//! optimizations of Spark [that] also apply to skyline queries" (paper
//! §5.4) — skyline inputs produced by complex queries benefit from them.

use std::sync::Arc;

use sparkline_common::Result;
use sparkline_plan::{BoundColumn, Expr, JoinType, LogicalPlan};

/// Split a predicate into its top-level AND conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::BinaryOp {
            left,
            op: sparkline_plan::BinaryOp::And,
            right,
        } => {
            let mut v = split_conjuncts(left);
            v.extend(split_conjuncts(right));
            v
        }
        other => vec![other.clone()],
    }
}

/// AND together a list of conjuncts (`None` for the empty list).
pub fn conjoin(conjuncts: Vec<Expr>) -> Option<Expr> {
    conjuncts.into_iter().reduce(|a, b| a.and(b))
}

/// Whether all column references in `e` fall in `[lo, hi)`.
fn references_within(e: &Expr, lo: usize, hi: usize) -> bool {
    let mut idx = Vec::new();
    e.referenced_indices(&mut idx);
    idx.iter().all(|&i| lo <= i && i < hi)
}

/// Shift every bound column reference by `-offset` (used when pushing a
/// predicate into the right side of a join).
fn shift_references(e: Expr, offset: usize) -> Result<Expr> {
    e.transform_up(&mut |node| {
        Ok(match node {
            Expr::BoundColumn(c) => Expr::BoundColumn(BoundColumn {
                index: c.index - offset,
                field: c.field,
            }),
            other => other,
        })
    })
}

/// Merge adjacent filters: `Filter(a, Filter(b, x)) → Filter(a AND b, x)`.
pub fn merge_filters(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        if let LogicalPlan::Filter { predicate, input } = &node {
            if let LogicalPlan::Filter {
                predicate: inner_pred,
                input: inner_input,
            } = input.as_ref()
            {
                // Keep the inner predicate first: it was closer to the data
                // and may be more selective.
                return Ok(LogicalPlan::Filter {
                    predicate: inner_pred.clone().and(predicate.clone()),
                    input: Arc::clone(inner_input),
                });
            }
        }
        Ok(node)
    })
}

/// Push filters towards the data: below projections and into join inputs.
///
/// Skyline note: a filter is **never** pushed below a `Skyline` (or
/// `MinMaxFilter`) node — removing tuples before the skyline can promote
/// previously dominated tuples into the result, which would change query
/// semantics.
pub fn push_down_filters(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Filter { predicate, input } = &node else {
            return Ok(node);
        };
        // Exists predicates are handled by the subquery rewrite; do not
        // reorder them.
        let mut has_exists = false;
        let mut probe = |e: &Expr| {
            if matches!(e, Expr::Exists { .. }) {
                has_exists = true;
            }
        };
        fn walk(e: &Expr, f: &mut dyn FnMut(&Expr)) {
            f(e);
            for c in e.children() {
                walk(c, f);
            }
        }
        walk(predicate, &mut probe);
        if has_exists {
            return Ok(node);
        }

        match input.as_ref() {
            // Filter(Projection) → Projection(Filter) with substituted
            // predicate.
            LogicalPlan::Projection { exprs, input: p_in } => {
                let substituted = substitute(predicate.clone(), exprs)?;
                Ok(LogicalPlan::Projection {
                    exprs: exprs.clone(),
                    input: Arc::new(LogicalPlan::Filter {
                        predicate: substituted,
                        input: Arc::clone(p_in),
                    }),
                })
            }
            // Filter(Sort) → Sort(Filter): fewer rows to sort.
            LogicalPlan::Sort { exprs, input: s_in } => Ok(LogicalPlan::Sort {
                exprs: exprs.clone(),
                input: Arc::new(LogicalPlan::Filter {
                    predicate: predicate.clone(),
                    input: Arc::clone(s_in),
                }),
            }),
            // Filter(Join) → push one-sided conjuncts into the inputs.
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
            } => {
                let left_len = left.schema()?.len();
                let right_len = if join_type.emits_right() {
                    right.schema()?.len()
                } else {
                    0
                };
                let mut to_left = Vec::new();
                let mut to_right = Vec::new();
                let mut keep = Vec::new();
                for c in split_conjuncts(predicate) {
                    if references_within(&c, 0, left_len) {
                        to_left.push(c);
                    } else if *join_type == JoinType::Inner
                        && right_len > 0
                        && references_within(&c, left_len, left_len + right_len)
                    {
                        // Only safe for inner joins: under a left outer
                        // join, right-side predicates interact with NULL
                        // padding.
                        to_right.push(shift_references(c, left_len)?);
                    } else {
                        keep.push(c);
                    }
                }
                if to_left.is_empty() && to_right.is_empty() {
                    return Ok(node);
                }
                let new_left = match conjoin(to_left) {
                    Some(p) => Arc::new(LogicalPlan::Filter {
                        predicate: p,
                        input: Arc::clone(left),
                    }),
                    None => Arc::clone(left),
                };
                let new_right = match conjoin(to_right) {
                    Some(p) => Arc::new(LogicalPlan::Filter {
                        predicate: p,
                        input: Arc::clone(right),
                    }),
                    None => Arc::clone(right),
                };
                let join = LogicalPlan::Join {
                    left: new_left,
                    right: new_right,
                    join_type: *join_type,
                    condition: condition.clone(),
                };
                Ok(match conjoin(keep) {
                    Some(p) => LogicalPlan::Filter {
                        predicate: p,
                        input: Arc::new(join),
                    },
                    None => join,
                })
            }
            _ => Ok(node),
        }
    })
}

/// Push `Limit` below row-preserving narrow operators — projections and
/// subquery aliases — and merge stacked limits.
///
/// A projection emits exactly one row per input row in input order, so
/// `Limit(Project(x))` and `Project(Limit(x))` are equivalent; pushing the
/// limit down lets the streaming scan's short-circuit see it, so a
/// `SELECT expr FROM t LIMIT k` reads `O(k)` rows instead of evaluating
/// the projection over the whole table. Filters, sorts, aggregates,
/// distinct, joins, and skylines are *not* row-preserving — a limit never
/// moves below those.
pub fn push_down_limits(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Limit { n, input } = &node else {
            return Ok(node);
        };
        Ok(match input.as_ref() {
            // Limit(Project) → Project(Limit).
            LogicalPlan::Projection { exprs, input: p_in } => LogicalPlan::Projection {
                exprs: exprs.clone(),
                input: Arc::new(LogicalPlan::Limit {
                    n: *n,
                    input: Arc::clone(p_in),
                }),
            },
            // Limit(Alias) → Alias(Limit).
            LogicalPlan::SubqueryAlias { alias, input: a_in } => LogicalPlan::SubqueryAlias {
                alias: alias.clone(),
                input: Arc::new(LogicalPlan::Limit {
                    n: *n,
                    input: Arc::clone(a_in),
                }),
            },
            // Limit(Limit) → the tighter limit.
            LogicalPlan::Limit {
                n: inner,
                input: l_in,
            } => LogicalPlan::Limit {
                n: (*n).min(*inner),
                input: Arc::clone(l_in),
            },
            _ => node,
        })
    })
}

/// Replace bound references in `e` with the projection expressions they
/// point at (inlining through a projection).
fn substitute(e: Expr, proj_exprs: &[Expr]) -> Result<Expr> {
    fn strip(e: &Expr) -> Expr {
        match e {
            Expr::Alias { expr, .. } => strip(expr),
            other => other.clone(),
        }
    }
    e.transform_up(&mut |node| {
        Ok(match node {
            Expr::BoundColumn(c) => strip(&proj_exprs[c.index]),
            other => other,
        })
    })
}

/// Collapse stacked projections and remove identity projections.
pub fn collapse_projections(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        if let LogicalPlan::Projection { exprs, input } = &node {
            // Projection(Projection) → single projection.
            if let LogicalPlan::Projection {
                exprs: inner,
                input: inner_input,
            } = input.as_ref()
            {
                let merged: Vec<Expr> = exprs
                    .iter()
                    .map(|e| {
                        let name = e.output_name();
                        let substituted = substitute(e.clone(), inner)?;
                        // Preserve the outer projection's output names.
                        Ok(if substituted.output_name() != name {
                            substituted.alias(name)
                        } else {
                            substituted
                        })
                    })
                    .collect::<Result<_>>()?;
                return Ok(LogicalPlan::Projection {
                    exprs: merged,
                    input: Arc::clone(inner_input),
                });
            }
            // Identity projection → drop.
            let child_schema = input.schema()?;
            let is_identity = exprs.len() == child_schema.len()
                && exprs.iter().enumerate().all(|(i, e)| match e {
                    Expr::BoundColumn(c) => c.index == i && c.field == *child_schema.field(i),
                    _ => false,
                });
            if is_identity {
                return Ok(input.as_ref().clone());
            }
        }
        Ok(node)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema};

    fn scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            name: "t".into(),
            schema: Schema::new(vec![
                Field::qualified("t", "a", DataType::Int64, false),
                Field::qualified("t", "b", DataType::Int64, false),
            ])
            .into_ref(),
        }
    }

    fn bound(i: usize, name: &str) -> Expr {
        Expr::BoundColumn(BoundColumn {
            index: i,
            field: Field::qualified("t", name, DataType::Int64, false),
        })
    }

    #[test]
    fn conjunct_splitting() {
        let e = bound(0, "a")
            .eq(Expr::lit(1i64))
            .and(bound(1, "b").gt(Expr::lit(2i64)))
            .and(Expr::lit(true));
        assert_eq!(split_conjuncts(&e).len(), 3);
        let rejoined = conjoin(split_conjuncts(&e)).unwrap();
        assert_eq!(split_conjuncts(&rejoined).len(), 3);
    }

    #[test]
    fn merges_adjacent_filters() {
        let plan = LogicalPlan::Filter {
            predicate: bound(0, "a").gt(Expr::lit(1i64)),
            input: Arc::new(LogicalPlan::Filter {
                predicate: bound(1, "b").gt(Expr::lit(2i64)),
                input: Arc::new(scan()),
            }),
        };
        let merged = merge_filters(&plan).unwrap();
        match merged {
            LogicalPlan::Filter { predicate, input } => {
                assert_eq!(split_conjuncts(&predicate).len(), 2);
                assert!(matches!(input.as_ref(), LogicalPlan::TableScan { .. }));
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn pushes_filter_below_projection() {
        let plan = LogicalPlan::Filter {
            predicate: bound(0, "a").gt(Expr::lit(1i64)),
            input: Arc::new(LogicalPlan::Projection {
                exprs: vec![bound(1, "b").alias("a")],
                input: Arc::new(scan()),
            }),
        };
        let optimized = push_down_filters(&plan).unwrap();
        match &optimized {
            LogicalPlan::Projection { input, .. } => match input.as_ref() {
                LogicalPlan::Filter { predicate, .. } => {
                    // The predicate now references the *inner* column b#1.
                    assert_eq!(predicate.to_string(), "(t.b#1 > 1)");
                }
                other => panic!("expected filter below projection, got {other}"),
            },
            other => panic!("expected projection on top, got {other}"),
        }
    }

    #[test]
    fn pushes_one_sided_conjuncts_into_inner_join() {
        let join = LogicalPlan::Join {
            left: Arc::new(scan()),
            right: Arc::new(scan()),
            join_type: JoinType::Inner,
            condition: sparkline_plan::JoinCondition::None,
        };
        let plan = LogicalPlan::Filter {
            predicate: bound(0, "a")
                .gt(Expr::lit(1i64))
                .and(bound(2, "a").lt(Expr::lit(5i64)))
                .and(bound(0, "a").eq(bound(3, "b"))),
            input: Arc::new(join),
        };
        let optimized = push_down_filters(&plan).unwrap();
        let d = optimized.display_indent();
        // Mixed conjunct stays above, one-sided ones moved below.
        let lines: Vec<&str> = d.lines().map(str::trim).collect();
        assert!(lines[0].starts_with("Filter [(t.a#0 = t.b#3)]"), "{d}");
        assert!(lines[1].starts_with("Join"), "{d}");
        assert!(lines[2].starts_with("Filter [(t.a#0 > 1)]"), "{d}");
        assert!(lines[4].starts_with("Filter [(t.a#0 < 5)]"), "{d}");
    }

    #[test]
    fn left_outer_join_keeps_right_side_filter_above() {
        let join = LogicalPlan::Join {
            left: Arc::new(scan()),
            right: Arc::new(scan()),
            join_type: JoinType::LeftOuter,
            condition: sparkline_plan::JoinCondition::None,
        };
        let plan = LogicalPlan::Filter {
            predicate: bound(2, "a").lt(Expr::lit(5i64)),
            input: Arc::new(join),
        };
        let optimized = push_down_filters(&plan).unwrap();
        assert!(
            matches!(optimized, LogicalPlan::Filter { .. }),
            "right-side filter must stay above a left outer join"
        );
    }

    #[test]
    fn pushes_limit_below_projection() {
        let plan = LogicalPlan::Limit {
            n: 5,
            input: Arc::new(LogicalPlan::Projection {
                exprs: vec![bound(1, "b").alias("x")],
                input: Arc::new(scan()),
            }),
        };
        let optimized = push_down_limits(&plan).unwrap();
        match &optimized {
            LogicalPlan::Projection { input, .. } => match input.as_ref() {
                LogicalPlan::Limit { n, input } => {
                    assert_eq!(*n, 5);
                    assert!(matches!(input.as_ref(), LogicalPlan::TableScan { .. }));
                }
                other => panic!("expected limit below projection, got {other}"),
            },
            other => panic!("expected projection on top, got {other}"),
        }
    }

    #[test]
    fn merges_stacked_limits_and_passes_aliases() {
        let plan = LogicalPlan::Limit {
            n: 3,
            input: Arc::new(LogicalPlan::SubqueryAlias {
                alias: "s".into(),
                input: Arc::new(LogicalPlan::Limit {
                    n: 10,
                    input: Arc::new(scan()),
                }),
            }),
        };
        // Fixpoint: one pass moves the limit through the alias, the next
        // merges it with the inner one.
        let mut optimized = plan;
        for _ in 0..3 {
            optimized = push_down_limits(&optimized).unwrap();
        }
        match &optimized {
            LogicalPlan::SubqueryAlias { input, .. } => match input.as_ref() {
                LogicalPlan::Limit { n, input } => {
                    assert_eq!(*n, 3, "tighter limit wins");
                    assert!(matches!(input.as_ref(), LogicalPlan::TableScan { .. }));
                }
                other => panic!("expected merged limit, got {other}"),
            },
            other => panic!("expected alias on top, got {other}"),
        }
    }

    #[test]
    fn limit_never_pushed_below_non_row_preserving_ops() {
        use sparkline_common::SkylineType;
        use sparkline_plan::SkylineDimension;
        let below_filter = LogicalPlan::Limit {
            n: 2,
            input: Arc::new(LogicalPlan::Filter {
                predicate: bound(0, "a").gt(Expr::lit(1i64)),
                input: Arc::new(scan()),
            }),
        };
        assert!(matches!(
            push_down_limits(&below_filter).unwrap(),
            LogicalPlan::Limit { .. }
        ));
        let below_skyline = LogicalPlan::Limit {
            n: 2,
            input: Arc::new(LogicalPlan::Skyline {
                distinct: false,
                complete: true,
                dims: vec![SkylineDimension::new(bound(0, "a"), SkylineType::Min)],
                input: Arc::new(scan()),
            }),
        };
        assert!(matches!(
            push_down_limits(&below_skyline).unwrap(),
            LogicalPlan::Limit { .. }
        ));
    }

    #[test]
    fn collapses_stacked_projections() {
        let plan = LogicalPlan::Projection {
            exprs: vec![bound(0, "x")],
            input: Arc::new(LogicalPlan::Projection {
                exprs: vec![bound(1, "b").alias("x"), bound(0, "a")],
                input: Arc::new(scan()),
            }),
        };
        let optimized = collapse_projections(&plan).unwrap();
        match &optimized {
            LogicalPlan::Projection { exprs, input } => {
                assert_eq!(exprs.len(), 1);
                assert!(matches!(input.as_ref(), LogicalPlan::TableScan { .. }));
                assert_eq!(exprs[0].output_name(), "x");
            }
            other => panic!("expected collapsed projection, got {other}"),
        }
    }

    #[test]
    fn drops_identity_projection() {
        let s = scan();
        let schema = s.schema().unwrap();
        let plan = LogicalPlan::Projection {
            exprs: (0..2)
                .map(|i| {
                    Expr::BoundColumn(BoundColumn {
                        index: i,
                        field: schema.field(i).clone(),
                    })
                })
                .collect(),
            input: Arc::new(s),
        };
        let optimized = collapse_projections(&plan).unwrap();
        assert!(matches!(optimized, LogicalPlan::TableScan { .. }));
    }

    #[test]
    fn filter_never_pushed_below_skyline() {
        use sparkline_common::SkylineType;
        use sparkline_plan::SkylineDimension;
        let plan = LogicalPlan::Filter {
            predicate: bound(0, "a").gt(Expr::lit(1i64)),
            input: Arc::new(LogicalPlan::Skyline {
                distinct: false,
                complete: true,
                dims: vec![SkylineDimension::new(bound(0, "a"), SkylineType::Min)],
                input: Arc::new(scan()),
            }),
        };
        let optimized = push_down_filters(&plan).unwrap();
        assert!(
            matches!(optimized, LogicalPlan::Filter { .. }),
            "filter must remain above the skyline"
        );
    }
}
