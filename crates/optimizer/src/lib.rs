#![warn(missing_docs)]

//! # sparkline-optimizer
//!
//! Rule-based logical-plan optimizer — the Catalyst-optimizer analogue of
//! *"Integration of Skyline Queries into Spark SQL"* (EDBT 2023). It
//! combines:
//!
//! * the generic rewrites skyline queries benefit from (§5.4 "the default
//!   optimizations of Spark also apply to skyline queries"): expression
//!   simplification, filter merging and pushdown, projection collapsing;
//! * the `[NOT] EXISTS` → semi/anti-join rewrite that makes the paper's
//!   *reference* plain-SQL skyline queries executable ([`subquery`]);
//! * the skyline-specific rules: §5.4's O(n) single-dimension rewrite and
//!   pushdown of skylines below non-reductive joins, plus the metadata
//!   rules (`COMPLETE` inference, DIFF-only removal) that feed the
//!   physical strategy selection ([`skyline_rules`]).
//!
//! Rules are applied in batches to fixpoint, driven by the toggles in
//! [`SessionConfig`] so the benchmark harness can ablate each rule.

pub mod expr_simplify;
pub mod pushdown;
pub mod skyline_rules;
pub mod subquery;

use sparkline_common::{Result, SessionConfig};
use sparkline_plan::{CatalogProvider, LogicalPlan};

pub use expr_simplify::simplify_expressions;
pub use pushdown::{collapse_projections, merge_filters, push_down_filters, push_down_limits};
pub use skyline_rules::{
    drop_diff_only_skyline, infer_complete_skyline, push_skyline_below_join,
    rewrite_single_dim_skyline,
};
pub use subquery::rewrite_exists_subqueries;

/// Maximum fixpoint iterations (Catalyst's default batch limit is 100).
const MAX_ITERATIONS: usize = 25;

/// The rule-based optimizer.
pub struct Optimizer<'a> {
    config: &'a SessionConfig,
    catalog: Option<&'a dyn CatalogProvider>,
}

impl<'a> Optimizer<'a> {
    /// Optimizer with the given configuration and no catalog metadata
    /// (foreign-key-based join pushdown disabled).
    pub fn new(config: &'a SessionConfig) -> Self {
        Optimizer {
            config,
            catalog: None,
        }
    }

    /// Provide catalog metadata for constraint-based rules.
    pub fn with_catalog(mut self, catalog: &'a dyn CatalogProvider) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Optimize a resolved logical plan.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        // Subquery rewriting runs once, first: it is a prerequisite for
        // execution (EXISTS has no physical operator) and exposes the
        // resulting joins to the later batches.
        let mut current = rewrite_exists_subqueries(plan)?;
        for _ in 0..MAX_ITERATIONS {
            let mut next = current.clone();
            if self.config.enable_generic_optimizations {
                next = simplify_expressions(&next)?;
                next = merge_filters(&next)?;
                next = push_down_filters(&next)?;
                next = push_down_limits(&next)?;
                next = collapse_projections(&next)?;
            }
            next = drop_diff_only_skyline(&next)?;
            next = infer_complete_skyline(&next)?;
            if self.config.enable_single_dim_rewrite {
                next = rewrite_single_dim_skyline(&next)?;
            }
            if self.config.enable_skyline_join_pushdown {
                next = push_skyline_below_join(&next, self.catalog)?;
            }
            if next == current {
                break;
            }
            current = next;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_analyzer::Analyzer;
    use sparkline_common::{DataType, Field, Schema};
    use sparkline_parser::parse_query;
    use sparkline_plan::StaticCatalog;

    fn catalog() -> StaticCatalog {
        let mut c = StaticCatalog::new();
        c.register_table(
            "hotels",
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("price", DataType::Float64, false),
                Field::new("rating", DataType::Int64, true),
            ])
            .into_ref(),
        );
        c.register_table(
            "rooms",
            Schema::new(vec![
                Field::new("hotel_id", DataType::Int64, false),
                Field::new("beds", DataType::Int64, false),
            ])
            .into_ref(),
        );
        c.register_foreign_key("rooms", "hotel_id", "hotels", "id");
        c
    }

    fn optimize(sql: &str) -> LogicalPlan {
        optimize_with(sql, &SessionConfig::default())
    }

    fn optimize_with(sql: &str, config: &SessionConfig) -> LogicalPlan {
        let cat = catalog();
        let analyzer = Analyzer::new(&cat);
        let analyzed = analyzer.analyze(&parse_query(sql).unwrap()).unwrap();
        Optimizer::new(config)
            .with_catalog(&cat)
            .optimize(&analyzed)
            .unwrap_or_else(|e| panic!("optimization failed for {sql:?}: {e}"))
    }

    #[test]
    fn end_to_end_reference_query_becomes_anti_join() {
        let plan = optimize(
            "SELECT price, rating FROM hotels AS o WHERE NOT EXISTS( \
               SELECT * FROM hotels AS i WHERE \
                 i.price <= o.price AND i.rating >= o.rating \
                 AND (i.price < o.price OR i.rating > o.rating))",
        );
        let d = plan.display_indent();
        assert!(d.contains("Join [LeftAnti"), "{d}");
        assert!(!d.contains("EXISTS"), "{d}");
    }

    #[test]
    fn single_dim_skyline_rewritten_end_to_end() {
        let plan = optimize("SELECT price FROM hotels SKYLINE OF price MIN");
        let d = plan.display_indent();
        assert!(d.contains("MinMaxFilter [MIN"), "{d}");
        assert!(!d.contains("Skyline"), "{d}");
    }

    #[test]
    fn single_dim_rewrite_can_be_disabled() {
        let config = SessionConfig::default().with_single_dim_rewrite(false);
        let plan = optimize_with("SELECT price FROM hotels SKYLINE OF price MIN", &config);
        assert!(plan.display_indent().contains("Skyline"), "{plan}");
    }

    #[test]
    fn two_dim_skyline_not_rewritten() {
        let plan = optimize("SELECT price FROM hotels SKYLINE OF price MIN, rating MAX");
        assert!(plan.display_indent().contains("Skyline"), "{plan}");
    }

    #[test]
    fn skyline_pushed_below_fk_inner_join() {
        let plan = optimize(
            "SELECT rooms.beds FROM rooms JOIN hotels ON rooms.hotel_id = hotels.id \
             SKYLINE OF beds MAX, hotel_id MIN",
        );
        let d = plan.display_indent();
        // The skyline must appear below the join, on the rooms side.
        let join_line = d.lines().position(|l| l.contains("Join")).unwrap();
        let sky_line = d.lines().position(|l| l.contains("Skyline")).unwrap();
        assert!(sky_line > join_line, "skyline below join:\n{d}");
    }

    #[test]
    fn skyline_pushdown_can_be_disabled() {
        let config = SessionConfig::default().with_skyline_join_pushdown(false);
        let plan = optimize_with(
            "SELECT rooms.beds FROM rooms JOIN hotels ON rooms.hotel_id = hotels.id \
             SKYLINE OF beds MAX, hotel_id MIN",
            &config,
        );
        let d = plan.display_indent();
        let join_line = d.lines().position(|l| l.contains("Join")).unwrap();
        let sky_line = d.lines().position(|l| l.contains("Skyline")).unwrap();
        assert!(sky_line < join_line, "skyline above join:\n{d}");
    }

    #[test]
    fn where_filter_pushed_below_skyline_input_projection() {
        // The filter applies *before* the skyline (WHERE precedes SKYLINE
        // semantically); optimization must keep it on the input side.
        let plan = optimize(
            "SELECT price, rating FROM hotels WHERE price < 100 \
             SKYLINE OF price MIN, rating MAX",
        );
        let d = plan.display_indent();
        let sky_line = d.lines().position(|l| l.contains("Skyline")).unwrap();
        let filter_line = d.lines().position(|l| l.contains("Filter")).unwrap();
        assert!(filter_line > sky_line, "{d}");
        assert!(d.contains("TableScan"), "{d}");
    }

    #[test]
    fn constant_predicates_fold() {
        let plan = optimize("SELECT price FROM hotels WHERE 1 < 2 AND price > 0");
        let d = plan.display_indent();
        assert!(!d.contains("(1 < 2)"), "{d}");
    }

    #[test]
    fn optimizer_is_idempotent() {
        let cat = catalog();
        let analyzer = Analyzer::new(&cat);
        let config = SessionConfig::default();
        let analyzed = analyzer
            .analyze(
                &parse_query(
                    "SELECT price FROM hotels WHERE rating > 1 \
                     SKYLINE OF price MIN, rating MAX ORDER BY price",
                )
                .unwrap(),
            )
            .unwrap();
        let optimizer = Optimizer::new(&config).with_catalog(&cat);
        let once = optimizer.optimize(&analyzed).unwrap();
        let twice = optimizer.optimize(&once).unwrap();
        assert_eq!(once, twice);
    }
}
