//! Expression simplification: constant folding and boolean identities.

use sparkline_common::{Result, Row, Value};
use sparkline_plan::{BinaryOp, Expr, LogicalPlan};

/// Fold literal-only subexpressions and apply boolean identities in every
/// expression of the plan.
pub fn simplify_expressions(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| node.map_expressions(&mut simplify_expr))
}

/// Simplify one expression tree.
pub fn simplify_expr(expr: Expr) -> Result<Expr> {
    expr.transform_up(&mut |node| {
        // Fold any operator whose inputs are all literals (evaluation over
        // the empty row cannot touch columns).
        if literal_only(&node) && !matches!(node, Expr::Literal(_)) {
            if let Ok(v) = node.evaluate(&Row::empty()) {
                return Ok(Expr::Literal(v));
            }
        }
        Ok(match node {
            // Boolean identities (Kleene-safe: `x AND true = x` and
            // `x OR false = x` hold for NULL x as well; `false AND x =
            // false` / `true OR x = true` hold because our expressions are
            // side-effect free).
            Expr::BinaryOp { left, op, right } => match (op, left, right) {
                (BinaryOp::And, l, r) => match (*l, *r) {
                    (Expr::Literal(Value::Boolean(true)), x)
                    | (x, Expr::Literal(Value::Boolean(true))) => x,
                    (Expr::Literal(Value::Boolean(false)), _)
                    | (_, Expr::Literal(Value::Boolean(false))) => Expr::lit(false),
                    (l, r) => l.and(r),
                },
                (BinaryOp::Or, l, r) => match (*l, *r) {
                    (Expr::Literal(Value::Boolean(false)), x)
                    | (x, Expr::Literal(Value::Boolean(false))) => x,
                    (Expr::Literal(Value::Boolean(true)), _)
                    | (_, Expr::Literal(Value::Boolean(true))) => Expr::lit(true),
                    (l, r) => l.or(r),
                },
                (op, l, r) => Expr::BinaryOp {
                    left: l,
                    op,
                    right: r,
                },
            },
            Expr::Not(inner) => match *inner {
                Expr::Not(x) => *x,
                Expr::Literal(Value::Boolean(b)) => Expr::lit(!b),
                // De-Morgan on negated EXISTS is handled by the parser;
                // flip a stray Not(Exists) here as well.
                Expr::Exists { subquery, negated } => Expr::Exists {
                    subquery,
                    negated: !negated,
                },
                x => Expr::Not(Box::new(x)),
            },
            other => other,
        })
    })
}

/// True if the expression references no columns (and no subqueries), so it
/// can be evaluated at plan time.
fn literal_only(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Column(_)
        | Expr::BoundColumn(_)
        | Expr::OuterColumn(_)
        | Expr::Wildcard { .. }
        | Expr::Exists { .. }
        | Expr::Aggregate { .. } => false,
        other => other.children().iter().all(|c| literal_only(c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field};
    use sparkline_plan::BoundColumn;

    fn col() -> Expr {
        Expr::BoundColumn(BoundColumn {
            index: 0,
            field: Field::new("x", DataType::Int64, false),
        })
    }

    #[test]
    fn folds_arithmetic() {
        let e = simplify_expr(Expr::lit(2i64).binary(BinaryOp::Plus, Expr::lit(3i64))).unwrap();
        assert_eq!(e, Expr::lit(5i64));
    }

    #[test]
    fn folds_nested_comparisons() {
        let e = simplify_expr(
            Expr::lit(2i64)
                .lt(Expr::lit(3i64))
                .and(col().gt(Expr::lit(1i64))),
        )
        .unwrap();
        assert_eq!(e.to_string(), "(x#0 > 1)");
    }

    #[test]
    fn and_or_identities() {
        assert_eq!(
            simplify_expr(col().eq(Expr::lit(1i64)).and(Expr::lit(true))).unwrap(),
            col().eq(Expr::lit(1i64))
        );
        assert_eq!(
            simplify_expr(col().eq(Expr::lit(1i64)).and(Expr::lit(false))).unwrap(),
            Expr::lit(false)
        );
        assert_eq!(
            simplify_expr(col().eq(Expr::lit(1i64)).or(Expr::lit(true))).unwrap(),
            Expr::lit(true)
        );
        assert_eq!(
            simplify_expr(col().eq(Expr::lit(1i64)).or(Expr::lit(false))).unwrap(),
            col().eq(Expr::lit(1i64))
        );
    }

    #[test]
    fn double_negation() {
        let e = simplify_expr(Expr::Not(Box::new(Expr::Not(Box::new(
            col().eq(Expr::lit(1i64)),
        )))))
        .unwrap();
        assert_eq!(e, col().eq(Expr::lit(1i64)));
    }

    #[test]
    fn division_by_zero_not_folded_to_error() {
        // 1/0 evaluates to NULL in our SQL semantics; folding keeps that.
        let e = simplify_expr(Expr::lit(1i64).binary(BinaryOp::Divide, Expr::lit(0i64))).unwrap();
        assert_eq!(e, Expr::Literal(Value::Null));
    }

    #[test]
    fn columns_prevent_folding() {
        let e = simplify_expr(col().binary(BinaryOp::Plus, Expr::lit(0i64))).unwrap();
        assert_eq!(e.to_string(), "(x#0 + 0)");
    }
}
