#![warn(missing_docs)]

//! # sparkline-storage
//!
//! A persistent columnar table format of fixed-size blocks, built so the
//! scan can skip whole blocks **before any I/O or decode happens** — the
//! Extensible-Data-Skipping framing with dominance-aware metadata.
//!
//! ## File layout (version 1)
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header   | magic "SPKB" (4) | format version u32 LE          |
//! | schema   | ncols u32; per column:                            |
//! |          |   name_len u32 | name bytes | dtype u8 | null u8  |
//! | blocks   | block 0 payload | block 1 payload | ...           |
//! | footer   | total_rows u64 | block_rows u32 | nblocks u32     |
//! |          | per block: offset u64 | bytes u64 | rows u32      |
//! |          |   per column: null_count u32 | non_numeric u32    |
//! |          |     has_bounds u8 | min f64 | max f64             |
//! |          | sample_seed u64 | sample_bytes u64 | sample block |
//! | trailer  | footer_offset u64 | magic "SPKF" (4)              |
//! +--------------------------------------------------------------+
//! ```
//!
//! Every block payload is self-contained column storage for up to
//! `block_rows` rows: a row count, then per column a NULL bitmap (one bit
//! per row) followed by a type-specific buffer. `Float64` buffers are
//! stored **sign-normalized** — the same order-preserving
//! float-bits-to-integer map the `ColumnarBlock` kernel uses, so integer
//! comparisons over the raw buffer agree with IEEE-754 order and the
//! round trip is bit-exact (NaN payloads included). `Int64`/`Boolean`
//! buffers are fixed-width little-endian; `Utf8` stores per-row lengths
//! plus concatenated bytes.
//!
//! The footer is written last and located through a fixed-size trailer,
//! so a table is written in one forward pass and opened by reading the
//! header and footer only — block payloads stay untouched until a scan
//! actually needs them.
//!
//! ## Skipping metadata and its soundness
//!
//! Each block footer entry carries, per column: the row count, NULL
//! count, the count of non-null values without a numeric interpretation
//! (strings, NaN), and the numeric min/max. Two skipping predicates
//! consume this:
//!
//! 1. **Static min/max pruning** for pushed-down filters: a conjunct
//!    `col <op> literal` can discard a block when the column's `[min,
//!    max]` range proves no value satisfies it. NULL rows never satisfy
//!    a comparison predicate (SQL three-valued logic — the filter keeps
//!    only `TRUE`), so NULLs in the block do not block pruning; values
//!    *without* a numeric interpretation do, and such blocks are never
//!    pruned (`non_numeric > 0` disables the predicate for that column).
//!
//! 2. **Dominance pruning** for skyline queries: fold the per-column
//!    min/max into the block's **best corner** in smaller-is-better
//!    space (a `MIN` dimension contributes `min`, a `MAX` dimension
//!    `-max` — the `ColumnarBlock` sign-normalization convention). By
//!    construction the best corner is component-wise ≤ every row of the
//!    block. If a representative pre-filter point `p` (a *real row* of
//!    the scan's filtered input) strictly dominates the corner `c` —
//!    `p ≤ c` everywhere, `p < c` somewhere — then for every row `r` of
//!    the block `p ≤ c ≤ r` everywhere and `p < c ≤ r` in the strict
//!    dimension: `p` strictly dominates every `r`. Since the complete
//!    dominance relation is transitive and `p` survives to the skyline
//!    operator's input, no skipped row can be a skyline member — the
//!    block is discarded without being read. The argument needs every
//!    row comparable in every ranked dimension, so a block is only
//!    eligible when its ranked columns have `null_count == 0` and
//!    `non_numeric == 0`; the §5.7 incomplete relation is not
//!    transitive, so dominance skipping is never applied to it (the
//!    planner only installs skip points for the complete family, like
//!    the PR 4 pre-filter itself).
//!
//! The footer additionally stores a seeded reservoir sample of the whole
//! table, taken for free during the single writer pass. The planner's
//! adaptive machinery draws its `DatasetStats` and representative
//! pre-filter points from this sample (refined with the footer's exact
//! per-column aggregates), so planning a query over a 10-GB file costs
//! zero file I/O beyond the footer.

pub mod format;
pub mod reader;
pub mod writer;

pub use format::{sign_normalize_f64, sign_restore_f64, FOOTER_MAGIC, FORMAT_VERSION, MAGIC};
pub use reader::{AggregateColumnStats, BlockDecoder, BlockMeta, ColumnMeta, DiskTable};
pub use writer::{write_table, DiskTableSummary, TableWriter, WriterOptions};
