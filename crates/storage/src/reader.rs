//! Opening and scanning table files: the footer-only `open`, per-block
//! random access, the skipping metadata (`BlockMeta`/`ColumnMeta`), and
//! the batch-at-a-time `BlockDecoder`.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sparkline_common::{Result, Row, SchemaRef};

use crate::format::{
    decode_schema, storage_err, BlockDecoderInner, ByteReader, FOOTER_MAGIC, FORMAT_VERSION, MAGIC,
};

/// Skipping metadata of one column within one block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ColumnMeta {
    /// NULL rows in this block's column.
    pub null_count: u32,
    /// Non-NULL rows without a numeric interpretation (strings, NaN).
    /// Any such row disables min/max pruning and dominance skipping for
    /// this column — the bounds below don't cover it.
    pub non_numeric: u32,
    /// Smallest numeric value (raw space), `None` when no row has one.
    pub min: Option<f64>,
    /// Largest numeric value (raw space).
    pub max: Option<f64>,
}

impl ColumnMeta {
    /// Whether every row of the block is covered by the numeric bounds —
    /// the precondition of the dominance-skipping argument (see the
    /// crate docs): no NULLs (incomparable under the complete relation)
    /// and no non-numeric values.
    pub fn fully_numeric(&self) -> bool {
        self.null_count == 0 && self.non_numeric == 0
    }

    /// The column's contribution to the block's **best corner** in
    /// folded smaller-is-better space: `min` for a MIN dimension, `-max`
    /// for a MAX dimension (`negate = true`).
    pub fn folded_best(&self, negate: bool) -> Option<f64> {
        if negate {
            self.max.map(|v| -v)
        } else {
            self.min
        }
    }

    /// The column's contribution to the block's **worst corner** (folded
    /// space): `max` for MIN, `-min` for MAX.
    pub fn folded_worst(&self, negate: bool) -> Option<f64> {
        if negate {
            self.min.map(|v| -v)
        } else {
            self.max
        }
    }
}

/// Location and skipping metadata of one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    /// Byte offset of the block payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub bytes: u64,
    /// Rows stored in the block.
    pub rows: u32,
    /// Per-column metadata, aligned with the schema.
    pub columns: Vec<ColumnMeta>,
}

/// Whole-table aggregate of the per-block column metadata — exact
/// statistics for plan-time `DatasetStats` without sampling the file.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggregateColumnStats {
    /// NULL rows across all blocks.
    pub nulls: u64,
    /// Non-numeric (non-NULL) rows across all blocks.
    pub non_numeric: u64,
    /// Global numeric minimum (raw space).
    pub min: Option<f64>,
    /// Global numeric maximum (raw space).
    pub max: Option<f64>,
}

/// An opened table file: schema, block directory, footer sample. Opening
/// reads the header and footer only; block payloads are read on demand
/// through [`DiskTable::read_block_raw`]. The handle is immutable and
/// thread-safe — concurrent partition streams each open their own file
/// descriptor per block read.
#[derive(Debug)]
pub struct DiskTable {
    path: PathBuf,
    schema: SchemaRef,
    blocks: Vec<BlockMeta>,
    total_rows: u64,
    block_rows: u32,
    sample: Arc<Vec<Row>>,
    sample_seed: u64,
    file_bytes: u64,
}

impl DiskTable {
    /// Open `path`, reading header, schema, and footer (not the blocks).
    pub fn open(path: impl AsRef<Path>) -> Result<DiskTable> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            File::open(&path).map_err(|e| storage_err(format!("open {}: {e}", path.display())))?;
        let file_bytes = file
            .seek(SeekFrom::End(0))
            .map_err(|e| storage_err(format!("seek {}: {e}", path.display())))?;

        // Header + schema.
        let mut head = vec![
            0u8;
            (file_bytes.min(1 << 20)) as usize // schema is tiny; cap the speculative read
        ];
        file.seek(SeekFrom::Start(0))
            .map_err(|e| storage_err(format!("seek: {e}")))?;
        read_fully(&mut file, &mut head)?;
        let mut r = ByteReader::new(&head);
        if r.bytes(4)? != MAGIC {
            return Err(storage_err(format!(
                "{} is not a sparkline table (bad magic)",
                path.display()
            )));
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(storage_err(format!(
                "unsupported format version {version} (reader supports {FORMAT_VERSION})"
            )));
        }
        let schema = decode_schema(&mut r)?.into_ref();

        // Trailer → footer.
        if file_bytes < 12 {
            return Err(storage_err("file too short for a trailer"));
        }
        let mut trailer = [0u8; 12];
        file.seek(SeekFrom::End(-12))
            .map_err(|e| storage_err(format!("seek trailer: {e}")))?;
        read_fully(&mut file, &mut trailer)?;
        if trailer[8..12] != FOOTER_MAGIC {
            return Err(storage_err("missing footer magic (truncated write?)"));
        }
        let footer_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        if footer_offset > file_bytes - 12 {
            return Err(storage_err("footer offset out of bounds"));
        }
        let mut footer = vec![0u8; (file_bytes - 12 - footer_offset) as usize];
        file.seek(SeekFrom::Start(footer_offset))
            .map_err(|e| storage_err(format!("seek footer: {e}")))?;
        read_fully(&mut file, &mut footer)?;
        let mut r = ByteReader::new(&footer);
        let total_rows = r.u64()?;
        let block_rows = r.u32()?;
        let nblocks = r.u32()? as usize;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let offset = r.u64()?;
            let bytes = r.u64()?;
            let rows = r.u32()?;
            let mut columns = Vec::with_capacity(schema.len());
            for _ in 0..schema.len() {
                let null_count = r.u32()?;
                let non_numeric = r.u32()?;
                let has_bounds = r.u8()? != 0;
                let min = r.f64()?;
                let max = r.f64()?;
                columns.push(ColumnMeta {
                    null_count,
                    non_numeric,
                    min: has_bounds.then_some(min),
                    max: has_bounds.then_some(max),
                });
            }
            if offset
                .checked_add(bytes)
                .is_none_or(|end| end > footer_offset)
            {
                return Err(storage_err("block extends past the footer"));
            }
            blocks.push(BlockMeta {
                offset,
                bytes,
                rows,
                columns,
            });
        }
        let sample_seed = r.u64()?;
        let sample_bytes = r.u64()? as usize;
        let sample_payload = r.bytes(sample_bytes)?;
        let sample = BlockDecoderInner::parse(sample_payload, &schema)?;
        let sample = sample.decode_range(0, sample.rows())?;
        Ok(DiskTable {
            path,
            schema,
            blocks,
            total_rows,
            block_rows,
            sample: Arc::new(sample),
            sample_seed,
            file_bytes,
        })
    }

    /// The table schema.
    pub fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total rows across all blocks.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Configured rows per block (the last block may be shorter).
    pub fn block_rows(&self) -> u32 {
        self.block_rows
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Metadata of block `i`.
    pub fn block_meta(&self, i: usize) -> &BlockMeta {
        &self.blocks[i]
    }

    /// All block metadata, in file order.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// The footer's seeded reservoir sample — a uniform draw over the
    /// whole table, available without any block I/O.
    pub fn sample(&self) -> &Arc<Vec<Row>> {
        &self.sample
    }

    /// Seed the footer sample was drawn with.
    pub fn sample_seed(&self) -> u64 {
        self.sample_seed
    }

    /// Exact whole-table per-column statistics from the block directory.
    pub fn column_stats(&self) -> Vec<AggregateColumnStats> {
        let mut out = vec![AggregateColumnStats::default(); self.schema.len()];
        for block in &self.blocks {
            for (agg, col) in out.iter_mut().zip(&block.columns) {
                agg.nulls += u64::from(col.null_count);
                agg.non_numeric += u64::from(col.non_numeric);
                agg.min = match (agg.min, col.min) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                agg.max = match (agg.max, col.max) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        out
    }

    /// Read block `i`'s raw (still encoded) payload from disk.
    pub fn read_block_raw(&self, i: usize) -> Result<Vec<u8>> {
        let meta = self
            .blocks
            .get(i)
            .ok_or_else(|| storage_err(format!("block {i} out of range")))?;
        let mut file = File::open(&self.path)
            .map_err(|e| storage_err(format!("open {}: {e}", self.path.display())))?;
        file.seek(SeekFrom::Start(meta.offset))
            .map_err(|e| storage_err(format!("seek block {i}: {e}")))?;
        let mut buf = vec![0u8; meta.bytes as usize];
        read_fully(&mut file, &mut buf)?;
        Ok(buf)
    }

    /// Convenience: read and fully decode block `i`.
    pub fn decode_block(&self, i: usize) -> Result<Vec<Row>> {
        let raw = self.read_block_raw(i)?;
        let decoder = BlockDecoder::new(raw, self.schema())?;
        decoder.decode_range(0, decoder.rows())
    }
}

/// Owning decoder over one block's raw payload: parse once, then
/// materialize row ranges batch-by-batch. The encoded buffer (typically
/// several times smaller than the decoded `Row`s) is the only resident
/// copy of the block while a scan drains it.
pub struct BlockDecoder {
    raw: Vec<u8>,
    schema: SchemaRef,
    rows: usize,
}

impl BlockDecoder {
    /// Parse `raw` against `schema` (validates the layout eagerly).
    pub fn new(raw: Vec<u8>, schema: SchemaRef) -> Result<Self> {
        let rows = BlockDecoderInner::parse(&raw, &schema)?.rows();
        Ok(BlockDecoder { raw, schema, rows })
    }

    /// Rows in the block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Size of the resident encoded buffer.
    pub fn raw_bytes(&self) -> usize {
        self.raw.len()
    }

    /// Materialize rows `start..end`.
    pub fn decode_range(&self, start: usize, end: usize) -> Result<Vec<Row>> {
        BlockDecoderInner::parse(&self.raw, &self.schema)?.decode_range(start, end)
    }
}

fn read_fully(file: &mut File, buf: &mut [u8]) -> Result<()> {
    file.read_exact(buf)
        .map_err(|e| storage_err(format!("read: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_table, WriterOptions};
    use sparkline_common::{DataType, Field, Schema, Value};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sparkline-storage-reader-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.spk")
    }

    fn table_with_nulls(path: &Path) -> DiskTable {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Float64, true),
            Field::new("s", DataType::Utf8, true),
        ])
        .into_ref();
        let rows: Vec<Row> = (0..600)
            .map(|i| {
                Row::new(vec![
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(i as f64)
                    },
                    Value::str(format!("row{i}")),
                ])
            })
            .collect();
        write_table(
            path,
            Arc::clone(&schema),
            &rows,
            WriterOptions {
                block_rows: 250,
                ..WriterOptions::default()
            },
        )
        .unwrap();
        DiskTable::open(path).unwrap()
    }

    #[test]
    fn open_reads_directory_and_aggregates() {
        let path = temp_path("dir");
        let table = table_with_nulls(&path);
        assert_eq!(table.num_blocks(), 3);
        assert_eq!(table.total_rows(), 600);
        assert_eq!(table.block_rows(), 250);
        let stats = table.column_stats();
        assert_eq!(stats[0].nulls, 120, "every fifth row");
        assert_eq!(stats[0].min, Some(1.0));
        assert_eq!(stats[0].max, Some(599.0));
        assert_eq!(stats[1].non_numeric, 600, "strings are non-numeric");
        assert!(!table.block_meta(0).columns[0].fully_numeric());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corner_folding_matches_min_max() {
        let meta = ColumnMeta {
            null_count: 0,
            non_numeric: 0,
            min: Some(-2.0),
            max: Some(7.0),
        };
        assert_eq!(meta.folded_best(false), Some(-2.0), "MIN dim: min");
        assert_eq!(meta.folded_best(true), Some(-7.0), "MAX dim: -max");
        assert_eq!(meta.folded_worst(false), Some(7.0));
        assert_eq!(meta.folded_worst(true), Some(2.0));
        assert!(meta.fully_numeric());
    }

    #[test]
    fn batch_decoding_equals_full_decode() {
        let path = temp_path("batches");
        let table = table_with_nulls(&path);
        let full = table.decode_block(1).unwrap();
        let decoder = BlockDecoder::new(table.read_block_raw(1).unwrap(), table.schema()).unwrap();
        assert_eq!(decoder.rows(), 250);
        assert!(decoder.raw_bytes() > 0);
        let mut batched = Vec::new();
        let mut pos = 0;
        while pos < decoder.rows() {
            let end = (pos + 64).min(decoder.rows());
            batched.extend(decoder.decode_range(pos, end).unwrap());
            pos = end;
        }
        assert_eq!(batched, full);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_files_error_cleanly() {
        let path = temp_path("corrupt");
        table_with_nulls(&path);
        let bytes = std::fs::read(&path).unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(DiskTable::open(&path).is_err());
        // Truncated trailer.
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        assert!(DiskTable::open(&path).is_err());
        // Unsupported version.
        let mut versioned = bytes.clone();
        versioned[4] = 99;
        std::fs::write(&path, &versioned).unwrap();
        let err = DiskTable::open(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
