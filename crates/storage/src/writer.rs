//! The COPY-style table writer: one forward pass over the rows, blocks
//! flushed at a fixed row granularity, skipping metadata and a seeded
//! reservoir sample accumulated on the way, footer written last.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use sparkline_common::stats::Reservoir;
use sparkline_common::{Result, Row, SchemaRef};

use crate::format::{
    encode_block, encode_schema, put_f64, put_u32, put_u64, storage_err, FOOTER_MAGIC,
    FORMAT_VERSION, MAGIC,
};
use crate::reader::BlockMeta;

/// Writer knobs; the session exposes these as `SessionConfig` fields.
#[derive(Debug, Clone, Copy)]
pub struct WriterOptions {
    /// Rows per block — the skipping and decode granularity.
    pub block_rows: usize,
    /// Capacity of the footer's reservoir sample (plan-time statistics
    /// and pre-filter points are drawn from it without touching blocks).
    pub sample_cap: usize,
    /// Seed of the reservoir sample, for deterministic plans.
    pub sample_seed: u64,
}

impl Default for WriterOptions {
    fn default() -> Self {
        WriterOptions {
            block_rows: 2048,
            sample_cap: 1024,
            sample_seed: 0x5EED_B10C,
        }
    }
}

/// What a finished write produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskTableSummary {
    /// Rows written.
    pub rows: u64,
    /// Blocks written.
    pub blocks: usize,
    /// Total file size in bytes (header + blocks + footer + trailer).
    pub bytes: u64,
}

/// Streaming writer for one table file. Rows are validated against the
/// schema as they arrive; blocks are encoded and flushed every
/// [`WriterOptions::block_rows`] rows, so peak writer memory is one
/// block regardless of table size.
pub struct TableWriter {
    out: BufWriter<File>,
    schema: SchemaRef,
    opts: WriterOptions,
    buffer: Vec<Row>,
    blocks: Vec<BlockMeta>,
    offset: u64,
    total_rows: u64,
    reservoir: Reservoir,
}

impl TableWriter {
    /// Create (truncate) `path` and write the header + schema.
    pub fn create(path: impl AsRef<Path>, schema: SchemaRef, opts: WriterOptions) -> Result<Self> {
        if opts.block_rows == 0 {
            return Err(storage_err("block_rows must be positive"));
        }
        let file = File::create(path.as_ref())
            .map_err(|e| storage_err(format!("create {}: {e}", path.as_ref().display())))?;
        let mut out = BufWriter::new(file);
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        put_u32(&mut header, FORMAT_VERSION);
        header.extend_from_slice(&encode_schema(&schema));
        out.write_all(&header)
            .map_err(|e| storage_err(format!("write header: {e}")))?;
        Ok(TableWriter {
            out,
            schema,
            buffer: Vec::with_capacity(opts.block_rows),
            blocks: Vec::new(),
            offset: header.len() as u64,
            total_rows: 0,
            reservoir: Reservoir::new(opts.sample_cap, opts.sample_seed),
            opts,
        })
    }

    /// Append one row.
    pub fn write_row(&mut self, row: &Row) -> Result<()> {
        self.buffer.push(row.clone());
        self.reservoir.push(row.clone());
        self.total_rows += 1;
        if self.buffer.len() >= self.opts.block_rows {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Append a slice of rows.
    pub fn write_rows(&mut self, rows: &[Row]) -> Result<()> {
        for row in rows {
            self.write_row(row)?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let (payload, columns) = encode_block(&self.schema, &self.buffer)?;
        self.out
            .write_all(&payload)
            .map_err(|e| storage_err(format!("write block: {e}")))?;
        self.blocks.push(BlockMeta {
            offset: self.offset,
            bytes: payload.len() as u64,
            rows: self.buffer.len() as u32,
            columns,
        });
        self.offset += payload.len() as u64;
        self.buffer.clear();
        Ok(())
    }

    /// Flush the tail block, write the footer + trailer, and sync.
    pub fn finish(mut self) -> Result<DiskTableSummary> {
        self.flush_block()?;
        let footer_offset = self.offset;
        let mut footer = Vec::new();
        put_u64(&mut footer, self.total_rows);
        put_u32(&mut footer, self.opts.block_rows as u32);
        put_u32(&mut footer, self.blocks.len() as u32);
        for block in &self.blocks {
            put_u64(&mut footer, block.offset);
            put_u64(&mut footer, block.bytes);
            put_u32(&mut footer, block.rows);
            for col in &block.columns {
                put_u32(&mut footer, col.null_count);
                put_u32(&mut footer, col.non_numeric);
                match (col.min, col.max) {
                    (Some(min), Some(max)) => {
                        footer.push(1);
                        put_f64(&mut footer, min);
                        put_f64(&mut footer, max);
                    }
                    _ => {
                        footer.push(0);
                        put_f64(&mut footer, 0.0);
                        put_f64(&mut footer, 0.0);
                    }
                }
            }
        }
        put_u64(&mut footer, self.opts.sample_seed);
        let sample_rows = std::mem::replace(&mut self.reservoir, Reservoir::new(0, 0)).into_rows();
        let (sample_payload, _) = encode_block(&self.schema, &sample_rows)?;
        put_u64(&mut footer, sample_payload.len() as u64);
        footer.extend_from_slice(&sample_payload);
        // Trailer: footer locator + magic, fixed size so `open` can seek
        // to it without parsing anything else.
        put_u64(&mut footer, footer_offset);
        footer.extend_from_slice(&FOOTER_MAGIC);
        self.out
            .write_all(&footer)
            .map_err(|e| storage_err(format!("write footer: {e}")))?;
        self.out
            .flush()
            .map_err(|e| storage_err(format!("flush table file: {e}")))?;
        Ok(DiskTableSummary {
            rows: self.total_rows,
            blocks: self.blocks.len(),
            bytes: footer_offset + footer.len() as u64,
        })
    }
}

/// One-shot COPY: write `rows` to `path` under `opts`.
pub fn write_table(
    path: impl AsRef<Path>,
    schema: SchemaRef,
    rows: &[Row],
    opts: WriterOptions,
) -> Result<DiskTableSummary> {
    let mut writer = TableWriter::create(path, schema, opts)?;
    writer.write_rows(rows)?;
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::DiskTable;
    use sparkline_common::{DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sparkline-storage-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.spk")
    }

    fn float_rows(n: usize) -> (SchemaRef, Vec<Row>) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Float64, false),
            Field::new("b", DataType::Float64, false),
        ])
        .into_ref();
        let rows = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Float64(i as f64),
                    Value::Float64((n - i) as f64),
                ])
            })
            .collect();
        (schema, rows)
    }

    #[test]
    fn write_read_roundtrip_across_blocks() {
        let (schema, rows) = float_rows(700);
        let path = temp_path("roundtrip");
        let opts = WriterOptions {
            block_rows: 256,
            ..WriterOptions::default()
        };
        let summary = write_table(&path, Arc::clone(&schema), &rows, opts).unwrap();
        assert_eq!(summary.rows, 700);
        assert_eq!(summary.blocks, 3, "256+256+188");
        let table = DiskTable::open(&path).unwrap();
        assert_eq!(table.total_rows(), 700);
        assert_eq!(table.num_blocks(), 3);
        let mut back = Vec::new();
        for i in 0..table.num_blocks() {
            back.extend(table.decode_block(i).unwrap());
        }
        assert_eq!(back, rows, "byte-identical round trip");
        // Block metadata matches the data.
        let b0 = table.block_meta(0);
        assert_eq!(b0.rows, 256);
        assert_eq!(b0.columns[0].min, Some(0.0));
        assert_eq!(b0.columns[0].max, Some(255.0));
        assert_eq!(b0.columns[0].null_count, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footer_sample_is_deterministic_and_bounded() {
        let (schema, rows) = float_rows(5000);
        let path = temp_path("sample");
        let opts = WriterOptions {
            block_rows: 512,
            sample_cap: 64,
            sample_seed: 7,
        };
        write_table(&path, Arc::clone(&schema), &rows, opts).unwrap();
        let t1 = DiskTable::open(&path).unwrap();
        assert_eq!(t1.sample().len(), 64);
        write_table(&path, Arc::clone(&schema), &rows, opts).unwrap();
        let t2 = DiskTable::open(&path).unwrap();
        assert_eq!(t1.sample(), t2.sample(), "same seed, same sample");
        for row in t1.sample().iter() {
            assert!(rows.contains(row), "sample rows are real rows");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_roundtrips() {
        let (schema, _) = float_rows(0);
        let path = temp_path("empty");
        let summary =
            write_table(&path, Arc::clone(&schema), &[], WriterOptions::default()).unwrap();
        assert_eq!(summary.rows, 0);
        assert_eq!(summary.blocks, 0);
        let table = DiskTable::open(&path).unwrap();
        assert_eq!(table.total_rows(), 0);
        assert_eq!(table.num_blocks(), 0);
        assert!(table.sample().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn schema_violations_fail_the_write() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int64, false)]).into_ref();
        let path = temp_path("badrow");
        let err = write_table(
            &path,
            schema,
            &[Row::new(vec![Value::str("nope")])],
            WriterOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("storage"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
