//! Byte-level encode/decode of the block format: little-endian
//! primitives, the sign-normalized `Float64` map, schema serialization,
//! and the self-contained block payload codec (see the crate docs for
//! the full file layout).

use sparkline_common::stats::numeric_value;
use sparkline_common::{DataType, Error, Field, Result, Row, Schema, Value};

use crate::reader::ColumnMeta;

/// File magic, first four bytes of every table file.
pub const MAGIC: [u8; 4] = *b"SPKB";
/// Trailer magic, last four bytes of every table file.
pub const FOOTER_MAGIC: [u8; 4] = *b"SPKF";
/// Format version the writer emits and the reader accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Storage error shorthand: everything surfaces as a typed execution
/// error (the engine error enum is deliberately closed).
pub(crate) fn storage_err(msg: impl std::fmt::Display) -> Error {
    Error::execution(format!("storage: {msg}"))
}

/// Order-preserving bijection from `f64` bits to `u64` integer order —
/// the same sign-normalization trick the columnar kernel's encode path
/// uses: flip all bits of negatives, set the sign bit of positives.
/// Integer comparison of normalized values agrees with IEEE-754 total
/// order, and the map is invertible, so stored floats round-trip
/// bit-exactly (NaN payloads included).
pub fn sign_normalize_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | 0x8000_0000_0000_0000
    }
}

/// Inverse of [`sign_normalize_f64`].
pub fn sign_restore_f64(n: u64) -> f64 {
    let bits = if n >> 63 == 1 {
        n & 0x7FFF_FFFF_FFFF_FFFF
    } else {
        !n
    };
    f64::from_bits(bits)
}

/// Append little-endian primitives to a byte buffer.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Bounds-checked little-endian reader over a byte slice.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| storage_err("truncated file (byte range out of bounds)"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Stable on-disk code of a [`DataType`].
fn dtype_code(t: DataType) -> u8 {
    match t {
        DataType::Null => 0,
        DataType::Boolean => 1,
        DataType::Int64 => 2,
        DataType::Float64 => 3,
        DataType::Utf8 => 4,
    }
}

fn dtype_from_code(c: u8) -> Result<DataType> {
    Ok(match c {
        0 => DataType::Null,
        1 => DataType::Boolean,
        2 => DataType::Int64,
        3 => DataType::Float64,
        4 => DataType::Utf8,
        other => return Err(storage_err(format!("unknown data type code {other}"))),
    })
}

/// Serialize a schema (unqualified field names, type codes, null flags).
pub(crate) fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, schema.len() as u32);
    for field in schema.fields() {
        let name = field.name().as_bytes();
        put_u32(&mut out, name.len() as u32);
        out.extend_from_slice(name);
        out.push(dtype_code(field.data_type()));
        out.push(u8::from(field.nullable()));
    }
    out
}

/// Parse a serialized schema.
pub(crate) fn decode_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let ncols = r.u32()? as usize;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.bytes(name_len)?)
            .map_err(|_| storage_err("schema field name is not UTF-8"))?
            .to_string();
        let dtype = dtype_from_code(r.u8()?)?;
        let nullable = r.u8()? != 0;
        fields.push(Field::new(name, dtype, nullable));
    }
    Ok(Schema::new(fields))
}

/// Check one value against its column's declared type; the writer runs
/// this so decode can trust the payload classes unconditionally.
fn check_value(field: &Field, v: &Value) -> Result<()> {
    let ok = match v {
        Value::Null => field.nullable() || field.data_type() == DataType::Null,
        Value::Boolean(_) => field.data_type() == DataType::Boolean,
        Value::Int64(_) => field.data_type() == DataType::Int64,
        Value::Float64(_) => field.data_type() == DataType::Float64,
        Value::Utf8(_) => field.data_type() == DataType::Utf8,
    };
    if ok {
        Ok(())
    } else {
        Err(storage_err(format!(
            "value {v} does not fit column '{}' ({}{})",
            field.name(),
            field.data_type(),
            if field.nullable() { ", nullable" } else { "" },
        )))
    }
}

/// Encode `rows` as one self-contained block payload and compute the
/// per-column skipping metadata in the same pass.
pub(crate) fn encode_block(schema: &Schema, rows: &[Row]) -> Result<(Vec<u8>, Vec<ColumnMeta>)> {
    let n = rows.len();
    let mut out = Vec::new();
    put_u32(&mut out, n as u32);
    let mut metas = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        for row in rows {
            if row.width() != schema.len() {
                return Err(storage_err(format!(
                    "row width {} does not match schema width {}",
                    row.width(),
                    schema.len()
                )));
            }
            check_value(field, row.get(c))?;
        }
        // NULL bitmap: bit set = NULL.
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        let mut meta = ColumnMeta::default();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut bounded = false;
        for (i, row) in rows.iter().enumerate() {
            let v = row.get(c);
            if v.is_null() {
                bitmap[i / 8] |= 1 << (i % 8);
                meta.null_count += 1;
            } else {
                match numeric_value(v) {
                    Some(x) => {
                        min = min.min(x);
                        max = max.max(x);
                        bounded = true;
                    }
                    None => meta.non_numeric += 1,
                }
            }
        }
        if bounded {
            meta.min = Some(min);
            meta.max = Some(max);
        }
        out.extend_from_slice(&bitmap);
        match field.data_type() {
            DataType::Null => {}
            DataType::Boolean => {
                for row in rows {
                    out.push(match row.get(c) {
                        Value::Boolean(b) => u8::from(*b),
                        _ => 0,
                    });
                }
            }
            DataType::Int64 => {
                for row in rows {
                    let v = match row.get(c) {
                        Value::Int64(i) => *i,
                        _ => 0,
                    };
                    put_u64(&mut out, v as u64);
                }
            }
            DataType::Float64 => {
                for row in rows {
                    let v = match row.get(c) {
                        Value::Float64(f) => *f,
                        _ => 0.0,
                    };
                    put_u64(&mut out, sign_normalize_f64(v));
                }
            }
            DataType::Utf8 => {
                let mut data = Vec::new();
                for row in rows {
                    match row.get(c) {
                        Value::Utf8(s) => {
                            put_u32(&mut out, s.len() as u32);
                            data.extend_from_slice(s.as_bytes());
                        }
                        _ => put_u32(&mut out, 0),
                    }
                }
                out.extend_from_slice(&data);
            }
        }
        metas.push(meta);
    }
    Ok((out, metas))
}

/// Per-column decode state of one parsed block payload: slices into the
/// raw buffer plus, for strings, precomputed row offsets.
enum ColumnSlices<'a> {
    Empty,
    Bool(&'a [u8]),
    Fixed64(&'a [u8]),
    Utf8 { data: &'a [u8], offsets: Vec<u32> },
}

/// A parsed block payload: random-access row decoding over the raw
/// bytes, so a scan can materialize one batch at a time while the (much
/// smaller) encoded buffer is the only resident copy of the block.
pub struct BlockDecoderInner<'a> {
    rows: usize,
    bitmaps: Vec<&'a [u8]>,
    columns: Vec<ColumnSlices<'a>>,
    schema: &'a Schema,
}

impl<'a> BlockDecoderInner<'a> {
    /// Parse the column layout of `raw` against `schema`. Cost is O(ncols
    /// + string rows); no row values are materialized.
    pub(crate) fn parse(raw: &'a [u8], schema: &'a Schema) -> Result<Self> {
        let mut r = ByteReader::new(raw);
        let rows = r.u32()? as usize;
        let mut bitmaps = Vec::with_capacity(schema.len());
        let mut columns = Vec::with_capacity(schema.len());
        for field in schema.fields() {
            bitmaps.push(r.bytes(rows.div_ceil(8))?);
            columns.push(match field.data_type() {
                DataType::Null => ColumnSlices::Empty,
                DataType::Boolean => ColumnSlices::Bool(r.bytes(rows)?),
                DataType::Int64 | DataType::Float64 => ColumnSlices::Fixed64(r.bytes(rows * 8)?),
                DataType::Utf8 => {
                    let lens = r.bytes(rows * 4)?;
                    let mut offsets = Vec::with_capacity(rows + 1);
                    let mut total = 0u32;
                    offsets.push(0);
                    for i in 0..rows {
                        let len = u32::from_le_bytes([
                            lens[i * 4],
                            lens[i * 4 + 1],
                            lens[i * 4 + 2],
                            lens[i * 4 + 3],
                        ]);
                        total = total
                            .checked_add(len)
                            .ok_or_else(|| storage_err("string column overflows u32"))?;
                        offsets.push(total);
                    }
                    ColumnSlices::Utf8 {
                        data: r.bytes(total as usize)?,
                        offsets,
                    }
                }
            });
        }
        if r.position() != raw.len() {
            return Err(storage_err("trailing bytes after block payload"));
        }
        Ok(BlockDecoderInner {
            rows,
            bitmaps,
            columns,
            schema,
        })
    }

    /// Rows stored in the block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Materialize rows `start..end`.
    pub fn decode_range(&self, start: usize, end: usize) -> Result<Vec<Row>> {
        if start > end || end > self.rows {
            return Err(storage_err(format!(
                "row range {start}..{end} out of bounds for {}-row block",
                self.rows
            )));
        }
        let width = self.schema.len();
        let mut out = Vec::with_capacity(end - start);
        for i in start..end {
            let mut values = Vec::with_capacity(width);
            for (c, field) in self.schema.fields().iter().enumerate() {
                if self.bitmaps[c][i / 8] & (1 << (i % 8)) != 0 {
                    values.push(Value::Null);
                    continue;
                }
                values.push(match (&self.columns[c], field.data_type()) {
                    (ColumnSlices::Bool(b), _) => Value::Boolean(b[i] != 0),
                    (ColumnSlices::Fixed64(b), DataType::Int64) => {
                        let mut w = [0u8; 8];
                        w.copy_from_slice(&b[i * 8..i * 8 + 8]);
                        Value::Int64(u64::from_le_bytes(w) as i64)
                    }
                    (ColumnSlices::Fixed64(b), _) => {
                        let mut w = [0u8; 8];
                        w.copy_from_slice(&b[i * 8..i * 8 + 8]);
                        Value::Float64(sign_restore_f64(u64::from_le_bytes(w)))
                    }
                    (ColumnSlices::Utf8 { data, offsets }, _) => {
                        let s = &data[offsets[i] as usize..offsets[i + 1] as usize];
                        Value::str(
                            std::str::from_utf8(s)
                                .map_err(|_| storage_err("string value is not UTF-8"))?,
                        )
                    }
                    (ColumnSlices::Empty, _) => {
                        return Err(storage_err(format!(
                            "non-NULL row {i} in NULL-typed column '{}'",
                            field.name()
                        )))
                    }
                });
            }
            out.push(Row::new(values));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_normalization_preserves_order_and_bits() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            2.25,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(
                sign_normalize_f64(w[0]) < sign_normalize_f64(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        for v in values {
            assert_eq!(
                sign_restore_f64(sign_normalize_f64(v)).to_bits(),
                v.to_bits()
            );
        }
        // NaN payloads round-trip bit-exactly too.
        let nan_bits = 0x7FF8_0000_0000_1234u64;
        let nan = f64::from_bits(nan_bits);
        assert_eq!(
            sign_restore_f64(sign_normalize_f64(nan)).to_bits(),
            nan_bits
        );
    }

    #[test]
    fn block_roundtrip_all_types() {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int64, true),
            Field::new("f", DataType::Float64, true),
            Field::new("b", DataType::Boolean, true),
            Field::new("s", DataType::Utf8, true),
        ]);
        let rows: Vec<Row> = vec![
            Row::new(vec![
                Value::Int64(-5),
                Value::Float64(1.25),
                Value::Boolean(true),
                Value::str("alpha"),
            ]),
            Row::new(vec![
                Value::Null,
                Value::Float64(f64::NAN),
                Value::Null,
                Value::str(""),
            ]),
            Row::new(vec![
                Value::Int64(i64::MIN),
                Value::Null,
                Value::Boolean(false),
                Value::Null,
            ]),
        ];
        let (payload, metas) = encode_block(&schema, &rows).unwrap();
        let dec = BlockDecoderInner::parse(&payload, &schema).unwrap();
        assert_eq!(dec.rows(), 3);
        let back = dec.decode_range(0, 3).unwrap();
        for (a, b) in rows.iter().zip(&back) {
            for (x, y) in a.values().iter().zip(b.values()) {
                match (x, y) {
                    // NaN != NaN under PartialEq; compare bits.
                    (Value::Float64(p), Value::Float64(q)) => {
                        assert_eq!(p.to_bits(), q.to_bits())
                    }
                    _ => assert_eq!(x, y),
                }
            }
        }
        // Partial decode sees the same rows (row 2 is NaN-free, so plain
        // equality is meaningful).
        assert_eq!(dec.decode_range(2, 3).unwrap(), back[2..3].to_vec());
        // Metadata: NULLs and NaN counted, bounds over numeric values only.
        assert_eq!(metas[0].null_count, 1);
        assert_eq!(metas[0].min, Some(i64::MIN as f64));
        assert_eq!(metas[0].max, Some(-5.0));
        assert_eq!(metas[1].non_numeric, 1, "NaN is non-numeric");
        assert_eq!(metas[1].min, Some(1.25));
        assert_eq!(metas[3].min, None, "strings have no numeric bounds");
        assert_eq!(metas[3].non_numeric, 2);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let schema = Schema::new(vec![Field::new("i", DataType::Int64, false)]);
        let err = encode_block(&schema, &[Row::new(vec![Value::Float64(1.0)])]).unwrap_err();
        assert!(err.to_string().contains("storage"), "{err}");
        let err = encode_block(&schema, &[Row::new(vec![Value::Null])]).unwrap_err();
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let schema = Schema::new(vec![Field::new("f", DataType::Float64, false)]);
        let rows = vec![Row::new(vec![Value::Float64(3.5)])];
        let (payload, _) = encode_block(&schema, &rows).unwrap();
        for cut in 0..payload.len() {
            assert!(BlockDecoderInner::parse(&payload[..cut], &schema).is_err());
        }
    }
}
