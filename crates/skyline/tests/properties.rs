//! Property-based tests for the skyline algorithms: the optimized
//! implementations must agree with the naive Definition-3.2 oracle on
//! arbitrary inputs, and the structural invariants of skylines must hold.

use proptest::prelude::*;

use sparkline_common::{Row, SkylineDim, SkylineSpec, SkylineType, Value};
use sparkline_skyline::{
    bnl_skyline, incomplete_global_skyline, incomplete_skyline, naive_skyline,
    partition_by_null_bitmap, sfs_skyline, DominanceChecker, SkylineStats,
};

/// Small-domain integer values to provoke dominance, equality, and NULLs.
fn value_strategy(allow_null: bool) -> BoxedStrategy<Value> {
    if allow_null {
        prop_oneof![
            3 => (0i64..6).prop_map(Value::Int64),
            1 => Just(Value::Null),
        ]
        .boxed()
    } else {
        (0i64..6).prop_map(Value::Int64).boxed()
    }
}

fn rows_strategy(dims: usize, allow_null: bool, max_rows: usize) -> BoxedStrategy<Vec<Row>> {
    prop::collection::vec(
        prop::collection::vec(value_strategy(allow_null), dims).prop_map(Row::new),
        0..max_rows,
    )
    .boxed()
}

fn spec(dims: usize, with_diff: bool, distinct: bool) -> SkylineSpec {
    let mut list = Vec::new();
    for i in 0..dims {
        let ty = if with_diff && i == 0 {
            SkylineType::Diff
        } else if i % 2 == 0 {
            SkylineType::Min
        } else {
            SkylineType::Max
        };
        list.push(SkylineDim::new(i, ty));
    }
    if distinct {
        SkylineSpec::distinct(list)
    } else {
        SkylineSpec::new(list)
    }
}

fn sorted_display(rows: &[Row]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BNL equals the naive oracle on complete data.
    #[test]
    fn bnl_matches_naive_complete(rows in rows_strategy(3, false, 40)) {
        let checker = DominanceChecker::complete(spec(3, false, false));
        let mut stats = SkylineStats::default();
        let bnl = bnl_skyline(rows.clone(), &checker, &mut stats);
        let oracle = naive_skyline(&rows, &checker);
        prop_assert_eq!(sorted_display(&bnl), sorted_display(&oracle));
    }

    /// BNL equals the oracle with a DIFF dimension present.
    #[test]
    fn bnl_matches_naive_with_diff(rows in rows_strategy(3, false, 40)) {
        let checker = DominanceChecker::complete(spec(3, true, false));
        let mut stats = SkylineStats::default();
        let bnl = bnl_skyline(rows.clone(), &checker, &mut stats);
        let oracle = naive_skyline(&rows, &checker);
        prop_assert_eq!(sorted_display(&bnl), sorted_display(&oracle));
    }

    /// DISTINCT keeps exactly one representative per dim-value combination.
    #[test]
    fn bnl_distinct_matches_naive(rows in rows_strategy(2, false, 40)) {
        let checker = DominanceChecker::complete(spec(2, false, true));
        let mut stats = SkylineStats::default();
        let bnl = bnl_skyline(rows.clone(), &checker, &mut stats);
        let oracle = naive_skyline(&rows, &checker);
        // Representative choice is arbitrary; compare dim-value multisets.
        fn key(r: &Row) -> String {
            format!("{}|{}", r.get(0), r.get(1))
        }
        let mut a: Vec<String> = bnl.iter().map(key).collect();
        let mut b: Vec<String> = oracle.iter().map(key).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// The incomplete pipeline (bitmap partition + local BNL + flagged
    /// global phase) equals the oracle under the incomplete relation.
    #[test]
    fn incomplete_pipeline_matches_naive(rows in rows_strategy(3, true, 30)) {
        let checker = DominanceChecker::incomplete(spec(3, false, false));
        let mut stats = SkylineStats::default();
        let ours = incomplete_skyline(rows.clone(), &checker, &mut stats);
        let oracle = naive_skyline(&rows, &checker);
        prop_assert_eq!(sorted_display(&ours), sorted_display(&oracle));
    }

    /// The all-pairs global phase alone also equals the oracle.
    #[test]
    fn incomplete_global_matches_naive(rows in rows_strategy(3, true, 30)) {
        let checker = DominanceChecker::incomplete(spec(3, false, false));
        let mut stats = SkylineStats::default();
        let ours = incomplete_global_skyline(rows.clone(), &checker, &mut stats);
        let oracle = naive_skyline(&rows, &checker);
        prop_assert_eq!(sorted_display(&ours), sorted_display(&oracle));
    }

    /// Skylines are idempotent: SKY(SKY(R)) = SKY(R).
    #[test]
    fn skyline_idempotent(rows in rows_strategy(3, false, 40)) {
        let checker = DominanceChecker::complete(spec(3, false, false));
        let mut stats = SkylineStats::default();
        let once = bnl_skyline(rows, &checker, &mut stats);
        let twice = bnl_skyline(once.clone(), &checker, &mut stats);
        prop_assert_eq!(sorted_display(&once), sorted_display(&twice));
    }

    /// SKY(R ∪ S) ⊆ SKY(R) ∪ SKY(S): local skylines never lose global
    /// skyline members (the basis of the distributed algorithm, §5.6).
    #[test]
    fn union_containment(
        r in rows_strategy(3, false, 25),
        s in rows_strategy(3, false, 25),
    ) {
        let checker = DominanceChecker::complete(spec(3, false, false));
        let mut stats = SkylineStats::default();
        let mut union_input = r.clone();
        union_input.extend(s.clone());
        let global = bnl_skyline(union_input, &checker, &mut stats);
        let mut locals = bnl_skyline(r, &checker, &mut stats);
        locals.extend(bnl_skyline(s, &checker, &mut stats));
        let locals_set: std::collections::HashSet<String> =
            locals.iter().map(|x| x.to_string()).collect();
        for row in &global {
            prop_assert!(locals_set.contains(&row.to_string()));
        }
    }

    /// Local-then-global two-phase computation equals the direct skyline,
    /// regardless of how the input is partitioned (Lemma 5.1 analogue for
    /// complete data).
    #[test]
    fn two_phase_equals_direct(
        rows in rows_strategy(3, false, 40),
        cut in 0usize..40,
    ) {
        let checker = DominanceChecker::complete(spec(3, false, false));
        let mut stats = SkylineStats::default();
        let direct = bnl_skyline(rows.clone(), &checker, &mut stats);
        let cut = cut.min(rows.len());
        let (p1, p2) = rows.split_at(cut);
        let mut locals = bnl_skyline(p1.to_vec(), &checker, &mut stats);
        locals.extend(bnl_skyline(p2.to_vec(), &checker, &mut stats));
        let two_phase = bnl_skyline(locals, &checker, &mut stats);
        prop_assert_eq!(sorted_display(&direct), sorted_display(&two_phase));
    }

    /// Lemma 5.1 for incomplete data: bitmap-partitioned local skylines
    /// followed by the global phase equal the direct global computation.
    #[test]
    fn lemma_5_1_partitioned_locals_preserve_result(rows in rows_strategy(3, true, 30)) {
        let checker = DominanceChecker::incomplete(spec(3, false, false));
        let mut stats = SkylineStats::default();
        let direct = incomplete_global_skyline(rows.clone(), &checker, &mut stats);
        let mut candidates = Vec::new();
        for (_, part) in partition_by_null_bitmap(rows, checker.spec()) {
            candidates.extend(bnl_skyline(part, &checker, &mut stats));
        }
        let two_phase = incomplete_global_skyline(candidates, &checker, &mut stats);
        prop_assert_eq!(sorted_display(&direct), sorted_display(&two_phase));
    }

    /// Every skyline member is genuinely undominated and every dropped
    /// tuple has a dominating witness in the *input*.
    #[test]
    fn membership_is_exact(rows in rows_strategy(2, false, 30)) {
        let checker = DominanceChecker::complete(spec(2, false, false));
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows.clone(), &checker, &mut stats);
        let sky_set: std::collections::HashSet<String> =
            sky.iter().map(|r| r.to_string()).collect();
        for row in &rows {
            let dominated = rows.iter().any(|o| checker.dominates(o, row));
            prop_assert_eq!(
                !dominated,
                sky_set.contains(&row.to_string()),
                "row {} dominated={} in_sky={}",
                row,
                dominated,
                sky_set.contains(&row.to_string())
            );
        }
    }

    /// Sort-Filter-Skyline equals the oracle (and hence BNL) on complete
    /// data, for every dimension-type mix including DIFF and DISTINCT.
    #[test]
    fn sfs_matches_naive(rows in rows_strategy(3, false, 40)) {
        let checker = DominanceChecker::complete(spec(3, true, false));
        let mut stats = SkylineStats::default();
        let ours = sfs_skyline(rows.clone(), &checker, &mut stats);
        let oracle = naive_skyline(&rows, &checker);
        prop_assert_eq!(sorted_display(&ours), sorted_display(&oracle));
    }

    /// SFS's window is insert-only: it never grows beyond the final
    /// skyline (whereas BNL's window can transiently hold tuples that are
    /// evicted later). This is the structural advantage of presorting.
    #[test]
    fn sfs_window_never_exceeds_skyline_size(rows in rows_strategy(3, false, 60)) {
        let checker = DominanceChecker::complete(spec(3, false, false));
        let mut sfs_stats = SkylineStats::default();
        let result = sfs_skyline(rows, &checker, &mut sfs_stats);
        prop_assert!(sfs_stats.max_window <= result.len().max(1),
            "window {} > skyline {}", sfs_stats.max_window, result.len());
    }

    /// Dominance on complete data is transitive (the property the BNL
    /// window relies on).
    #[test]
    fn complete_dominance_transitive(
        a in prop::collection::vec(0i64..6, 3),
        b in prop::collection::vec(0i64..6, 3),
        c in prop::collection::vec(0i64..6, 3),
    ) {
        let mk = |v: &Vec<i64>| Row::new(v.iter().map(|&x| Value::Int64(x)).collect());
        let checker = DominanceChecker::complete(spec(3, false, false));
        let (ra, rb, rc) = (mk(&a), mk(&b), mk(&c));
        if checker.dominates(&ra, &rb) && checker.dominates(&rb, &rc) {
            prop_assert!(checker.dominates(&ra, &rc));
        }
    }
}
