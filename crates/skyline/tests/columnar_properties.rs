//! Property-based tests for the columnar dominance kernel: the batched
//! paths must agree with the scalar [`DominanceChecker`] on arbitrary
//! value mixes (`Int64` / `Float64` / `Boolean` / NULL / strings),
//! MIN/MAX/DIFF specs, and `DISTINCT` — including every scalar-fallback
//! route — and on the Börzsönyi correlated / independent / anti-correlated
//! benchmark distributions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sparkline_common::{Row, SkylineDim, SkylineSpec, SkylineType, Value};
use sparkline_datagen::distributions::{anti_correlated_rows, correlated_rows, independent_rows};
use sparkline_skyline::{
    bnl_skyline, bnl_skyline_batched, sfs_skyline, sfs_skyline_batched, ColumnarBlock,
    DominanceChecker, SkylineStats,
};

/// Numeric-leaning values (the kernel's fast path) with NULLs mixed in.
fn numeric_value() -> BoxedStrategy<Value> {
    prop_oneof![
        4 => (0i64..6).prop_map(Value::Int64),
        2 => (0i64..12).prop_map(|v| Value::Float64(v as f64 / 2.0)),
        1 => Just(Value::Null),
    ]
    .boxed()
}

/// Anything-goes values: numerics, booleans, strings, NULLs — guaranteed
/// to exercise the scalar-fallback routes (class mixes, non-numerics).
fn wild_value() -> BoxedStrategy<Value> {
    prop_oneof![
        3 => (0i64..6).prop_map(Value::Int64),
        2 => (0i64..12).prop_map(|v| Value::Float64(v as f64 / 2.0)),
        1 => (0u8..2).prop_map(|b| Value::Boolean(b == 1)),
        1 => (0i64..4).prop_map(|v| Value::str(format!("s{v}"))),
        1 => Just(Value::Null),
    ]
    .boxed()
}

fn rows_of(value: BoxedStrategy<Value>, dims: usize, max_rows: usize) -> BoxedStrategy<Vec<Row>> {
    prop::collection::vec(
        prop::collection::vec(value, dims).prop_map(Row::new),
        0..max_rows,
    )
    .boxed()
}

fn spec(dims: usize, with_diff: bool, distinct: bool) -> SkylineSpec {
    let mut list = Vec::new();
    for i in 0..dims {
        let ty = if with_diff && i == 0 {
            SkylineType::Diff
        } else if i % 2 == 0 {
            SkylineType::Min
        } else {
            SkylineType::Max
        };
        list.push(SkylineDim::new(i, ty));
    }
    if distinct {
        SkylineSpec::distinct(list)
    } else {
        SkylineSpec::new(list)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Kernel-level agreement: every batch outcome equals the scalar
    /// `compare` for the same (candidate, row) pair, complete relation.
    #[test]
    fn kernel_agrees_with_scalar_compare(
        window in rows_of(numeric_value(), 3, 30),
        candidates in rows_of(numeric_value(), 3, 10),
    ) {
        let checker = DominanceChecker::complete(spec(3, false, false));
        let mut block = ColumnarBlock::for_checker(&checker);
        for row in &window {
            block.push(row);
        }
        prop_assume!(!block.is_fallback());
        let mut out = Vec::new();
        for cand in &candidates {
            let Some(enc) = block.encode(cand) else { continue };
            let res = block.compare_batch(&enc, &mut out, false);
            prop_assert_eq!(res.tested as usize, window.len());
            for (i, row) in window.iter().enumerate() {
                prop_assert_eq!(
                    out[i],
                    checker.compare(cand, row),
                    "cand={} row={}", cand, row
                );
            }
        }
    }

    /// Same agreement under the incomplete relation where the block stays
    /// representable (per null-bitmap classes in practice).
    #[test]
    fn kernel_agrees_with_scalar_compare_incomplete(
        window in rows_of(numeric_value(), 3, 30),
        candidates in rows_of(numeric_value(), 3, 10),
    ) {
        let checker = DominanceChecker::incomplete(spec(3, false, false));
        let mut block = ColumnarBlock::for_checker(&checker);
        for row in &window {
            block.push(row);
        }
        prop_assume!(!block.is_fallback());
        let mut out = Vec::new();
        for cand in &candidates {
            let Some(enc) = block.encode(cand) else { continue };
            block.compare_batch(&enc, &mut out, false);
            for (i, row) in window.iter().enumerate() {
                prop_assert_eq!(
                    out[i],
                    checker.compare(cand, row),
                    "cand={} row={}", cand, row
                );
            }
        }
    }

    /// End-to-end: batched BNL is byte-identical (rows *and* order) to
    /// scalar BNL on arbitrary value mixes — including strings, booleans,
    /// and NULLs that force the scalar-fallback path — for every
    /// MIN/MAX/DIFF/DISTINCT spec combination.
    #[test]
    fn batched_bnl_matches_scalar_on_wild_values(
        rows in rows_of(wild_value(), 3, 40),
        with_diff in 0u8..2,
        distinct in 0u8..2,
    ) {
        let checker =
            DominanceChecker::complete(spec(3, with_diff == 1, distinct == 1));
        let mut s1 = SkylineStats::default();
        let scalar = bnl_skyline(rows.clone(), &checker, &mut s1);
        let mut s2 = SkylineStats::default();
        let batched = bnl_skyline_batched(rows, &checker, &mut s2);
        prop_assert_eq!(scalar, batched);
        prop_assert_eq!(s2.dominance_tests, s2.batched_tests + s2.scalar_tests);
    }

    /// Batched BNL under the incomplete relation (the local phase runs it
    /// per null-bitmap class, but it must also be safe on mixed input).
    #[test]
    fn batched_bnl_matches_scalar_incomplete(rows in rows_of(numeric_value(), 3, 40)) {
        let checker = DominanceChecker::incomplete(spec(3, false, false));
        let mut s1 = SkylineStats::default();
        let scalar = bnl_skyline(rows.clone(), &checker, &mut s1);
        let mut s2 = SkylineStats::default();
        let batched = bnl_skyline_batched(rows, &checker, &mut s2);
        prop_assert_eq!(scalar, batched);
    }

    /// End-to-end: batched SFS equals scalar SFS (same rows, same order),
    /// and both record the same number of sort-discarding fallbacks.
    #[test]
    fn batched_sfs_matches_scalar_on_wild_values(
        rows in rows_of(wild_value(), 3, 40),
        distinct in 0u8..2,
    ) {
        let checker = DominanceChecker::complete(spec(3, false, distinct == 1));
        let mut s1 = SkylineStats::default();
        let scalar = sfs_skyline(rows.clone(), &checker, &mut s1);
        let mut s2 = SkylineStats::default();
        let batched = sfs_skyline_batched(rows, &checker, &mut s2);
        prop_assert_eq!(scalar, batched);
        prop_assert_eq!(s1.sfs_fallbacks, s2.sfs_fallbacks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Börzsönyi distributions: the batched local phase must equal the
    /// scalar one row-for-row on correlated / independent / anti-correlated
    /// float data at several dimension counts.
    #[test]
    fn batched_matches_scalar_on_datagen_distributions(
        seed in 0u64..1_000_000,
        dims in 2usize..5,
        dist in 0u8..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = match dist {
            0 => correlated_rows(&mut rng, 300, dims),
            1 => independent_rows(&mut rng, 300, dims),
            _ => anti_correlated_rows(&mut rng, 300, dims),
        };
        let checker = DominanceChecker::complete(spec(dims, false, false));
        let mut s1 = SkylineStats::default();
        let scalar = bnl_skyline(rows.clone(), &checker, &mut s1);
        let mut s2 = SkylineStats::default();
        let batched = bnl_skyline_batched(rows.clone(), &checker, &mut s2);
        prop_assert_eq!(&scalar, &batched);
        // Float data never demotes the block: the win is fully attributed
        // to the kernel.
        prop_assert_eq!(s2.scalar_tests, 0);
        // SFS agrees too.
        let mut s3 = SkylineStats::default();
        let sfs_s = sfs_skyline(rows.clone(), &checker, &mut s3);
        let mut s4 = SkylineStats::default();
        let sfs_b = sfs_skyline_batched(rows, &checker, &mut s4);
        prop_assert_eq!(sfs_s, sfs_b);
    }
}
