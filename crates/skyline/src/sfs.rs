//! Sort-Filter-Skyline (SFS) — the presorting-based algorithm class of
//! Chomicki, Godfrey, Gryz, Liang (ICDE 2003), which the paper names as
//! the primary future-work extension (§7: "implement additional
//! algorithms based on other paradigms like ordering [10, 11, ...]").
//!
//! The input is sorted by a *monotone scoring function*: if `a` dominates
//! `b` then `score(a) < score(b)` strictly. After sorting, no tuple can be
//! dominated by a tuple that comes later, so the BNL window becomes
//! **insert-only**:
//!
//! * a tuple dominated by the window is dropped, as in BNL;
//! * an undominated tuple is final immediately — it enters the window and
//!   is never evicted.
//!
//! This removes BNL's eviction work and makes every window insertion an
//! output, at the cost of the O(n log n) sort. The score used here is the
//! canonical sum of direction-normalized dimension values (`+v` for `MIN`
//! dimensions, `-v` for `MAX`; `DIFF` dimensions contribute their value so
//! equal-`DIFF` groups stay comparable, and dominance requires equality
//! there anyway).
//!
//! SFS requires the complete-data dominance relation (the sort argument
//! relies on transitive, acyclic dominance) and numeric dimensions (the
//! score is a sum). [`sfs_skyline`] falls back to BNL when a dimension is
//! non-numeric or NULL.

use sparkline_common::{DominanceKernel, Row, Value};

use crate::bnl::bnl_skyline_kernel;
use crate::columnar::{ColumnarBlock, EncodedCandidate};
use crate::dominance::{Dominance, DominanceChecker, SkylineStats};

/// The monotone score of a row, or `None` when a dimension value does not
/// admit the numeric scoring function (NULL or non-numeric).
pub fn monotone_score(row: &Row, checker: &DominanceChecker) -> Option<f64> {
    let mut score = 0.0;
    for dim in &checker.spec().dims {
        let v = match row.get(dim.index) {
            Value::Int64(i) => *i as f64,
            Value::Float64(f) => *f,
            Value::Boolean(b) => f64::from(*b),
            _ => return None,
        };
        score += match dim.ty {
            sparkline_common::SkylineType::Min => v,
            sparkline_common::SkylineType::Max => -v,
            // DIFF dims must be *equal* for dominance, so adding their
            // value keeps the function monotone w.r.t. dominance.
            sparkline_common::SkylineType::Diff => v,
        };
    }
    score.is_finite().then_some(score)
}

/// Compute the skyline with Sort-Filter-Skyline. Requires (and assumes)
/// the complete-data dominance relation; falls back to plain BNL when the
/// scoring function is not applicable to some row (recorded in
/// `stats.sfs_fallbacks`).
pub fn sfs_skyline(
    rows: Vec<Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    sfs_skyline_impl(rows, checker, stats, DominanceKernel::Scalar)
}

/// [`sfs_skyline`] with the insert-only window scan routed through the
/// columnar batch kernel: the window is encoded once and each presorted
/// tuple is tested against it in one chunked pass. Same skyline, same
/// order as the scalar variant (the BNL fallback also takes its batched
/// counterpart).
pub fn sfs_skyline_batched(
    rows: Vec<Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    sfs_skyline_impl(rows, checker, stats, DominanceKernel::Auto)
}

/// [`sfs_skyline`] on an explicit kernel knob: `Scalar` matches
/// [`sfs_skyline`], everything else routes the window scan through the
/// columnar kernel on the knob's resolved compare tier.
pub fn sfs_skyline_kernel(
    rows: Vec<Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    kernel: DominanceKernel,
) -> Vec<Row> {
    sfs_skyline_impl(rows, checker, stats, kernel)
}

fn sfs_skyline_impl(
    rows: Vec<Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    kernel: DominanceKernel,
) -> Vec<Row> {
    debug_assert!(
        !checker.is_incomplete(),
        "SFS relies on transitive dominance; use the incomplete pipeline for NULL data"
    );
    let mut scored: Vec<(f64, Row)> = Vec::with_capacity(rows.len());
    let mut iter = rows.into_iter();
    for row in iter.by_ref() {
        match monotone_score(&row, checker) {
            Some(s) => scored.push((s, row)),
            None => {
                // Non-numeric/NULL dimension: rebuild the input and fall
                // back to BNL, which has no scoring requirement. The
                // discarded sort work is recorded so the bench harness can
                // report how often the presorted path failed to engage.
                stats.sfs_fallbacks += 1;
                let mut rest: Vec<Row> = scored.into_iter().map(|(_, r)| r).collect();
                rest.push(row);
                rest.extend(iter);
                return bnl_skyline_kernel(rest, checker, stats, kernel);
            }
        }
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));

    let distinct = checker.distinct();
    let mut window: Vec<Row> = Vec::new();
    let mut block = kernel
        .is_vectorized()
        .then(|| ColumnarBlock::for_checker_with(checker, kernel));
    let mut out: Vec<Dominance> = Vec::new();
    let mut cand = EncodedCandidate::new();
    'next_tuple: for (_, tuple) in scored {
        let use_kernel = block.as_ref().is_some_and(|b| !b.is_fallback());
        if use_kernel {
            let b = block.as_mut().expect("kernel block");
            if b.encode_into(&tuple, &mut cand) {
                // `compare_batch` reports compare(tuple, kept); a window
                // tuple dominating the candidate shows up as DominatedBy.
                let res = b.compare_batch(&cand, &mut out, true);
                stats.add_block_tests(res.tested, b.is_simd());
                if res.dominated_at.is_some() {
                    continue 'next_tuple;
                }
                if distinct
                    && out.iter().enumerate().any(|(i, &o)| {
                        o == Dominance::Equal && checker.identical_dims(&window[i], &tuple)
                    })
                {
                    continue 'next_tuple;
                }
                b.push(&tuple);
                window.push(tuple);
                stats.max_window = stats.max_window.max(window.len());
                continue 'next_tuple;
            }
        }
        for kept in &window {
            stats.add_scalar();
            match checker.compare(kept, &tuple) {
                Dominance::Dominates => continue 'next_tuple,
                Dominance::Equal => {
                    if distinct && checker.identical_dims(kept, &tuple) {
                        continue 'next_tuple;
                    }
                }
                // `DominatedBy` is impossible after the monotone sort; it
                // can only be reported for score ties, which are mutually
                // non-dominating.
                Dominance::DominatedBy | Dominance::Incomparable => {}
            }
        }
        if let Some(b) = block.as_mut() {
            // Keep the block aligned for later tuples (the push may demote
            // it, after which every tuple takes the scalar loop).
            b.push(&tuple);
        }
        window.push(tuple);
        stats.max_window = stats.max_window.max(window.len());
    }
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use sparkline_common::{SkylineDim, SkylineSpec};

    fn rows(data: &[(i64, i64)]) -> Vec<Row> {
        data.iter()
            .map(|&(a, b)| Row::new(vec![Value::Int64(a), Value::Int64(b)]))
            .collect()
    }

    fn checker() -> DominanceChecker {
        DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::max(1),
        ]))
    }

    fn sorted(rows: Vec<Row>) -> Vec<String> {
        let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn matches_bnl_on_simple_input() {
        let data = rows(&[(1, 9), (2, 7), (3, 8), (4, 4), (5, 5), (6, 1), (1, 9)]);
        let c = checker();
        let mut s1 = SkylineStats::default();
        let mut s2 = SkylineStats::default();
        assert_eq!(
            sorted(sfs_skyline(data.clone(), &c, &mut s1)),
            sorted(bnl_skyline(data, &c, &mut s2))
        );
    }

    #[test]
    fn dominance_implies_strictly_smaller_score() {
        let c = checker();
        let a = Row::new(vec![Value::Int64(1), Value::Int64(9)]);
        let b = Row::new(vec![Value::Int64(2), Value::Int64(9)]);
        assert!(c.dominates(&a, &b));
        assert!(monotone_score(&a, &c).unwrap() < monotone_score(&b, &c).unwrap());
    }

    #[test]
    fn boolean_dimension_scores() {
        let c = DominanceChecker::complete(SkylineSpec::new(vec![SkylineDim::max(0)]));
        let yes = Row::new(vec![Value::Boolean(true)]);
        let no = Row::new(vec![Value::Boolean(false)]);
        assert!(monotone_score(&yes, &c).unwrap() < monotone_score(&no, &c).unwrap());
    }

    #[test]
    fn null_falls_back_to_bnl() {
        let c = checker();
        let data = vec![
            Row::new(vec![Value::Int64(1), Value::Int64(1)]),
            Row::new(vec![Value::Null, Value::Int64(2)]),
            Row::new(vec![Value::Int64(5), Value::Int64(0)]),
        ];
        let mut stats = SkylineStats::default();
        let result = sfs_skyline(data.clone(), &c, &mut stats);
        let mut s2 = SkylineStats::default();
        assert_eq!(sorted(result), sorted(bnl_skyline(data, &c, &mut s2)));
    }

    #[test]
    fn distinct_dedups() {
        let c = DominanceChecker::complete(SkylineSpec::distinct(vec![
            SkylineDim::min(0),
            SkylineDim::max(1),
        ]));
        let data = rows(&[(1, 9), (1, 9), (1, 9)]);
        let mut stats = SkylineStats::default();
        assert_eq!(sfs_skyline(data, &c, &mut stats).len(), 1);
    }

    #[test]
    fn batched_is_byte_identical_to_scalar() {
        let data: Vec<Row> = (0..150)
            .map(|i: i64| {
                Row::new(vec![
                    Value::Int64((i * 31) % 60),
                    Value::Int64((i * 47) % 60),
                ])
            })
            .collect();
        let c = checker();
        let mut s1 = SkylineStats::default();
        let scalar = sfs_skyline(data.clone(), &c, &mut s1);
        let mut s2 = SkylineStats::default();
        let batched = sfs_skyline_batched(data, &c, &mut s2);
        assert_eq!(scalar, batched);
        assert!(s2.batched_tests > 0);
        assert_eq!(s2.sfs_fallbacks, 0);
    }

    #[test]
    fn fallback_is_counted_and_batched_variant_agrees() {
        let c = checker();
        let data = vec![
            Row::new(vec![Value::Int64(1), Value::Int64(1)]),
            Row::new(vec![Value::Null, Value::Int64(2)]),
            Row::new(vec![Value::Int64(5), Value::Int64(0)]),
        ];
        let mut s1 = SkylineStats::default();
        let scalar = sfs_skyline(data.clone(), &c, &mut s1);
        assert_eq!(s1.sfs_fallbacks, 1);
        let mut s2 = SkylineStats::default();
        let batched = sfs_skyline_batched(data, &c, &mut s2);
        assert_eq!(s2.sfs_fallbacks, 1);
        assert_eq!(sorted(scalar), sorted(batched));
    }

    #[test]
    fn batched_distinct_dedups() {
        let c = DominanceChecker::complete(SkylineSpec::distinct(vec![
            SkylineDim::min(0),
            SkylineDim::max(1),
        ]));
        let data = rows(&[(1, 9), (1, 9), (2, 9), (1, 9)]);
        let mut stats = SkylineStats::default();
        assert_eq!(sfs_skyline_batched(data, &c, &mut stats).len(), 1);
    }

    #[test]
    fn diff_dimension_grouping() {
        let c = DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::diff(0),
            SkylineDim::min(1),
        ]));
        // Two groups; each keeps its minimum.
        let data = rows(&[(1, 5), (1, 3), (2, 9), (2, 1), (1, 3)]);
        let mut stats = SkylineStats::default();
        let result = sfs_skyline(data, &c, &mut stats);
        assert_eq!(result.len(), 3); // (1,3) twice + (2,1)
    }
}
