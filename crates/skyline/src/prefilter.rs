//! Representative-point pre-filtering (Ciaccia & Martinenghi's
//! representative filtering, adapted to the two-phase plan).
//!
//! Before the local phase runs, the planner computes the skyline of a
//! small seeded sample of the input and broadcasts it — capped at
//! `prefilter_max_points` — to every partition stream. During the scan,
//! each incoming tuple is tested against the representative points and
//! discarded if some point **strictly dominates** it; everything else
//! (incomparable, equal, NULL-bearing) passes through untouched.
//!
//! # Soundness
//!
//! Under the **complete-data** relation dominance is transitive, so a
//! strictly dominated tuple can never be a skyline member (nor a
//! `DISTINCT` representative — representatives are skyline members), and
//! dropping it early changes neither the final row set nor which
//! representative survives a tie (ties compare `Equal`, never
//! `DominatedBy`, so they are never dropped). The filter points are
//! sample rows of the same input: if a point is itself dominated later,
//! transitivity carries its kills to the dominator, so the global phase
//! agrees with the unfiltered plan. `DIFF` dimensions are handled by the
//! [`DominanceChecker`] itself (dominance additionally requires equality
//! there), and NULLs make a pair incomparable — both only *reduce* what
//! the filter may drop.
//!
//! Under the **incomplete** relation dominance is not transitive
//! (Appendix A's cycles), so discarding dominated tuples early is
//! unsound; the planner never builds a pre-filter for that family.
//!
//! The candidate-vs-points test reuses the PR 2 columnar kernel: the
//! filter set is encoded once into a [`ColumnarBlock`] per partition
//! stream, and each tuple is tested against all points in one chunked
//! pass with early exit; rows the kernel cannot represent take the scalar
//! checker, so filtering is exact either way.

use sparkline_common::{DominanceKernel, Row, SkylineSpec};

use crate::bnl::{bnl_skyline, kernel_for};
use crate::columnar::{ColumnarBlock, EncodedCandidate, MULTI_LANES};
use crate::dominance::{Dominance, DominanceChecker, SkylineStats};

/// Compute the representative filter set for a sample: the sample's
/// skyline under the complete relation, deduplicated (`DISTINCT` — tie
/// duplicates add no pruning power) and truncated to `max_points`.
///
/// The truncation is deterministic (BNL window order of the sample), so
/// the same sample always yields the same filter.
pub fn representative_points(sample: &[Row], spec: &SkylineSpec, max_points: usize) -> Vec<Row> {
    if max_points == 0 || sample.is_empty() {
        return Vec::new();
    }
    let dedup_spec = SkylineSpec::distinct(spec.dims.clone());
    let checker = DominanceChecker::complete(dedup_spec);
    let mut stats = SkylineStats::default();
    let mut points = bnl_skyline(sample.iter().cloned(), &checker, &mut stats);
    points.truncate(max_points);
    points
}

/// Per-partition-stream filter state: the representative points encoded
/// once, plus the scratch buffers of the chunked kernel.
#[derive(Debug)]
pub struct RepresentativeFilter {
    checker: DominanceChecker,
    points: Vec<Row>,
    /// `Some` on the vectorized path (possibly in fallback, which routes
    /// every tuple to the scalar loop), `None` on the scalar one.
    block: Option<ColumnarBlock>,
    cand: EncodedCandidate,
    out: Vec<Dominance>,
}

impl RepresentativeFilter {
    /// Filter over `points` (from [`representative_points`]) under the
    /// complete relation of `spec` ([`DominanceKernel::Auto`] when
    /// `vectorized`).
    pub fn new(points: Vec<Row>, spec: &SkylineSpec, vectorized: bool) -> Self {
        Self::with_kernel(points, spec, kernel_for(vectorized))
    }

    /// [`new`](Self::new) on an explicit kernel knob.
    pub fn with_kernel(points: Vec<Row>, spec: &SkylineSpec, kernel: DominanceKernel) -> Self {
        let checker = DominanceChecker::complete(spec.clone());
        let block = kernel.is_vectorized().then(|| {
            let mut block = ColumnarBlock::for_checker_with(&checker, kernel);
            for p in &points {
                block.push(p);
            }
            block
        });
        RepresentativeFilter {
            checker,
            points,
            block,
            cand: EncodedCandidate::new(),
            out: Vec::new(),
        }
    }

    /// Number of representative points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the filter holds no points (and hence drops nothing).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether some representative point strictly dominates `row`.
    fn dominated(&mut self, row: &Row, stats: &mut SkylineStats) -> bool {
        if let Some(block) = self.block.as_ref() {
            if !block.is_fallback() && block.encode_into(row, &mut self.cand) {
                let res = block.compare_batch(&self.cand, &mut self.out, true);
                stats.add_block_tests(res.tested, block.is_simd());
                return res.dominated_at.is_some();
            }
        }
        scalar_dominated(&self.checker, &self.points, row, stats)
    }

    /// Keep the rows of `batch` no representative point strictly
    /// dominates, preserving order; returns the survivors and the number
    /// of rows dropped.
    ///
    /// On the kernel path the batch is filtered in multi-candidate
    /// passes: groups of [`MULTI_LANES`] rows share one walk over the
    /// encoded points. The filter only consumes strict-dominator hits, so
    /// the multi pass *is* the complete filter decision for every
    /// encodable row; rows the kernel cannot represent take the scalar
    /// loop, exactly as before.
    pub fn retain_batch(&mut self, batch: Vec<Row>, stats: &mut SkylineStats) -> (Vec<Row>, u64) {
        if self.points.is_empty() {
            return (batch, 0);
        }
        let before = batch.len();
        let mut kept = Vec::with_capacity(batch.len());
        if self.block.as_ref().is_some_and(|b| !b.is_fallback()) {
            let block = self.block.as_ref().expect("kernel block");
            let simd = block.is_simd();
            let mut iter = batch.into_iter();
            let mut group: Vec<Row> = Vec::with_capacity(MULTI_LANES);
            let mut encoded: Vec<EncodedCandidate> = Vec::new();
            let mut lanes: Vec<usize> = Vec::with_capacity(MULTI_LANES);
            let mut dominated: Vec<Option<usize>> = Vec::new();
            loop {
                group.clear();
                group.extend(iter.by_ref().take(MULTI_LANES));
                if group.is_empty() {
                    break;
                }
                if encoded.len() < group.len() {
                    encoded.resize_with(group.len(), EncodedCandidate::new);
                }
                lanes.clear();
                let mut drop = [false; MULTI_LANES];
                let mut n = 0;
                for (i, row) in group.iter().enumerate() {
                    if block.encode_into(row, &mut encoded[n]) {
                        lanes.push(i);
                        n += 1;
                    } else {
                        drop[i] = scalar_dominated(&self.checker, &self.points, row, stats);
                    }
                }
                if n > 0 {
                    let res = block.first_dominators(&encoded[..n], &mut dominated);
                    stats.add_multi_pass(res.tested, simd);
                    for (j, d) in dominated.iter().enumerate() {
                        if d.is_some() {
                            drop[lanes[j]] = true;
                        }
                    }
                }
                let mut i = 0;
                kept.extend(group.drain(..).filter(|_| {
                    let keep = !drop[i];
                    i += 1;
                    keep
                }));
            }
        } else {
            for row in batch {
                if !self.dominated(&row, stats) {
                    kept.push(row);
                }
            }
        }
        let dropped = (before - kept.len()) as u64;
        (kept, dropped)
    }
}

/// Scalar filter decision: some point strictly dominates `row`.
fn scalar_dominated(
    checker: &DominanceChecker,
    points: &[Row],
    row: &Row,
    stats: &mut SkylineStats,
) -> bool {
    for point in points {
        stats.add_scalar();
        if checker.compare(row, point) == Dominance::DominatedBy {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skyline;
    use sparkline_common::{SkylineDim, Value};

    fn rows(data: &[(i64, i64)]) -> Vec<Row> {
        data.iter()
            .map(|&(a, b)| Row::new(vec![Value::Int64(a), Value::Int64(b)]))
            .collect()
    }

    fn spec2() -> SkylineSpec {
        SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)])
    }

    #[test]
    fn points_are_the_sample_skyline_deduped_and_capped() {
        let sample = rows(&[(5, 5), (1, 9), (9, 1), (1, 9), (3, 3), (7, 7)]);
        let points = representative_points(&sample, &spec2(), 64);
        // Skyline of the sample: (1,9), (9,1), (3,3); the (1,9) tie
        // collapses.
        assert_eq!(points.len(), 3);
        let capped = representative_points(&sample, &spec2(), 2);
        assert_eq!(capped.len(), 2);
        assert!(representative_points(&sample, &spec2(), 0).is_empty());
        assert!(representative_points(&[], &spec2(), 8).is_empty());
    }

    #[test]
    fn filter_never_drops_a_true_skyline_member() {
        let data: Vec<(i64, i64)> = (0..300).map(|i| ((i * 37) % 97, (i * 53) % 97)).collect();
        let all = rows(&data);
        let sample: Vec<Row> = all.iter().step_by(7).cloned().collect();
        let points = representative_points(&sample, &spec2(), 16);
        let checker = DominanceChecker::complete(spec2());
        let oracle = naive_skyline(&all, &checker);
        for vectorized in [false, true] {
            let mut filter = RepresentativeFilter::new(points.clone(), &spec2(), vectorized);
            let mut stats = SkylineStats::default();
            let (kept, dropped) = filter.retain_batch(all.clone(), &mut stats);
            assert!(dropped > 0, "vectorized={vectorized}");
            assert_eq!(kept.len() as u64 + dropped, all.len() as u64);
            for member in &oracle {
                assert!(
                    kept.contains(member),
                    "vectorized={vectorized}: dropped skyline member {member}"
                );
            }
            // Survivors have the same skyline as the full input.
            let mut filtered_sky: Vec<String> = naive_skyline(&kept, &checker)
                .iter()
                .map(|r| r.to_string())
                .collect();
            filtered_sky.sort();
            let mut full_sky: Vec<String> = oracle.iter().map(|r| r.to_string()).collect();
            full_sky.sort();
            assert_eq!(filtered_sky, full_sky, "vectorized={vectorized}");
            assert!(stats.dominance_tests > 0);
        }
    }

    #[test]
    fn batched_and_scalar_filters_agree() {
        let data: Vec<(i64, i64)> = (0..200).map(|i| ((i * 29) % 61, (i * 41) % 61)).collect();
        let all = rows(&data);
        let points = representative_points(&all[..40], &spec2(), 8);
        let run = |vectorized: bool| {
            let mut f = RepresentativeFilter::new(points.clone(), &spec2(), vectorized);
            let mut stats = SkylineStats::default();
            let (kept, dropped) = f.retain_batch(all.clone(), &mut stats);
            (kept, dropped, stats)
        };
        let (scalar_kept, scalar_dropped, s) = run(false);
        let (vec_kept, vec_dropped, v) = run(true);
        assert_eq!(scalar_kept, vec_kept, "byte-identical survivors");
        assert_eq!(scalar_dropped, vec_dropped);
        assert_eq!(s.batched_tests, 0);
        assert!(s.scalar_tests > 0);
        assert!(v.batched_tests > 0);
        assert_eq!(v.scalar_tests, 0);
    }

    #[test]
    fn null_rows_and_equal_rows_pass_through() {
        let spec = spec2();
        let points = representative_points(&rows(&[(1, 1)]), &spec, 8);
        let mut filter = RepresentativeFilter::new(points, &spec, true);
        let mut stats = SkylineStats::default();
        let batch = vec![
            Row::new(vec![Value::Null, Value::Int64(100)]), // incomparable
            Row::new(vec![Value::Int64(1), Value::Int64(1)]), // tie: kept
            Row::new(vec![Value::Int64(2), Value::Int64(2)]), // dominated
        ];
        let (kept, dropped) = filter.retain_batch(batch, &mut stats);
        assert_eq!(dropped, 1);
        assert_eq!(kept.len(), 2);
        assert!(kept[0].get(0).is_null());
        assert_eq!(kept[1].get(0), &Value::Int64(1));
    }

    #[test]
    fn non_numeric_rows_take_the_scalar_path_exactly() {
        // String dims put the block in fallback: results must match the
        // scalar checker (which keeps incomparable strings).
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let point = Row::new(vec![Value::str("a"), Value::Int64(1)]);
        let mut filter = RepresentativeFilter::new(vec![point], &spec, true);
        let mut stats = SkylineStats::default();
        let batch = vec![
            Row::new(vec![Value::str("a"), Value::Int64(5)]), // dominated
            Row::new(vec![Value::str("b"), Value::Int64(0)]), // incomparable
        ];
        let (kept, dropped) = filter.retain_batch(batch, &mut stats);
        assert_eq!(dropped, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].get(0), &Value::str("b"));
        assert!(stats.scalar_tests > 0, "fallback counts as scalar");
    }

    #[test]
    fn empty_filter_is_a_no_op() {
        let mut filter = RepresentativeFilter::new(Vec::new(), &spec2(), true);
        assert!(filter.is_empty());
        assert_eq!(filter.len(), 0);
        let mut stats = SkylineStats::default();
        let batch = rows(&[(1, 1), (2, 2)]);
        let (kept, dropped) = filter.retain_batch(batch.clone(), &mut stats);
        assert_eq!(kept, batch);
        assert_eq!(dropped, 0);
        assert_eq!(stats.dominance_tests, 0);
    }
}
