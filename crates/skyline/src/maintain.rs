//! Incremental skyline maintenance over a k-skyband (the continuous /
//! data-stream technique of the Kalyvas & Tzouramanis survey): instead of
//! recomputing the skyline after every INSERT/DELETE, a
//! [`MaintainedSkyline`] keeps, for the tuples near the Pareto front, a
//! per-tuple *dominator count* and applies each mutation as a delta,
//! returning the skyline change-set.
//!
//! # Structure
//!
//! The maintained state mirrors the relation in arrival order and tracks a
//! **band** of tuples whose dominator count was at most `k` when they
//! arrived:
//!
//! * `rows` — every live tuple, in arrival order (deletes shift positions,
//!   exactly like the relation's own row vector).
//! * `counts[i]` — `Some(c)` when row `i` is *tracked* (a band member with
//!   stated dominator count `c`), `None` when untracked.
//! * the band's rows are also transposed into a [`ColumnarBlock`], so one
//!   [`compare_batch`](ColumnarBlock::compare_batch) pass yields, for a
//!   candidate, both its dominators in the band (`DominatedBy` outcomes)
//!   and the band members it dominates (`Dominates` outcomes).
//!
//! The maintained skyline is the set of tracked tuples with stated count
//! 0, in arrival order — byte-identical to a cold BNL recompute, whose
//! order-preserving window also emits skyline members in arrival order.
//!
//! # Soundness: why the stated counts are exact where it matters
//!
//! Dominance on a **complete** relation is a strict partial order
//! (transitive, irreflexive). Write `true(q)` for the number of live
//! tuples strictly dominating `q`. The skyline is `{q : true(q) = 0}`.
//!
//! A tracked tuple's stated count is the size of its live **counted set**:
//! the dominators that were tracked when the tuple was inserted, plus
//! every dominator inserted later. Each mutation preserves this meaning
//! exactly:
//!
//! * **Insert of `q`** counts `q`'s dominators among the band (tracked
//!   tuples) and increments every tracked tuple `q` dominates — so each
//!   later-inserted dominator is counted the moment it arrives. Tuples are
//!   never evicted for growing past `k`; only a rebuild retires them.
//! * **Delete of `x`** decrements a tracked `t` dominated by `x` iff `x`
//!   was counted by `t` — that is, iff `x` is tracked (tracked status is
//!   decided at insert and never changes between rebuilds, so "tracked
//!   now" equals "tracked when `t` arrived") or `x` arrived after `t`
//!   (later-inserted dominators are always counted). Each counted
//!   dominator therefore contributes exactly one increment and exactly one
//!   decrement, and `stated(t) = |live counted dominators of t|` holds at
//!   all times.
//!
//! Since the counted set is a subset of the dominators,
//! `stated(t) <= true(t)`; hence `true(t) = 0` implies `stated(t) = 0` —
//! **no skyline member is ever missed**.
//!
//! For the converse, the **erosion budget** `e` (the number of *tracked*
//! deletions since the last rebuild) maintains the invariant that every
//! untracked live tuple `u` satisfies `true(u) >= k + 1 - e`:
//!
//! * `u` became untracked only by arriving with stated count `> k`, and
//!   stated ≤ true, so `true(u) >= k + 1` at that moment;
//! * inserts only grow `true(u)`;
//! * deleting an *untracked* `x` with `x ≻ u` cannot break the bound: the
//!   dominators of `x` all dominate `u` too (transitivity), so
//!   `true(u) >= true(x) + 1 >= k + 2 - e` before the delete;
//! * deleting a *tracked* `x` lowers the bound by one — and bumps `e`.
//!
//! While `e <= k` the bound keeps every untracked tuple at
//! `true >= k + 1 - e >= 1`, so **every true-skyline tuple is tracked**.
//! Now suppose a tracked `t` has `stated(t) = 0` but `true(t) > 0`, and
//! let `t*` be a minimal live dominator of `t`. Minimality plus
//! transitivity gives `true(t*) = 0` (any dominator of `t*` would be a
//! smaller dominator of `t`), so `t*` is in the true skyline, hence
//! tracked — and a tracked dominator is always counted (it was tracked at
//! `t`'s insert, or arrived later), so `stated(t) >= 1`: contradiction.
//! Therefore, while `e <= k`, `stated = 0 ⇔ true = 0` and the maintained
//! skyline **is** the true skyline. This is the classical "shadow
//! promotion is complete" argument: the (k+1)-deep shadow of any deleted
//! point is tracked, so each promotion surfaces from the band instead of
//! requiring a scan.
//!
//! When a tracked deletion would push `e` past `k`, the structure
//! **rebuilds**: the whole relation is replayed through the insert path
//! (a pure-insert history has `e = 0`, so the theorem applies to the
//! replayed state). Rebuilds also fire when stale band entries (stated
//! count past `k`) outnumber the live ones, bounding band bloat.
//!
//! # Scope
//!
//! Complete relations only — incomplete (`§5.7`) dominance is not
//! transitive, which breaks both the counted-set argument and the erosion
//! invariant, so [`MaintainedSkyline::new`] rejects incomplete specs and
//! callers fall back to recomputation. `SKYLINE OF DISTINCT` is likewise
//! rejected: duplicate elimination makes membership depend on arrival
//! *identity*, not just dominance counts. NULLs in skyline dimensions are
//! permitted and behave exactly like the complete-relation checker:
//! a NULL-bearing tuple is incomparable to everything, dominates nothing,
//! and sits in the skyline as an isolated point.

use sparkline_common::{Error, Result, Row, SkylineSpec};

use crate::columnar::{ColumnarBlock, EncodedCandidate};
use crate::dominance::{Dominance, DominanceChecker};

/// Rebuild when stale band entries (stated count > k) outnumber fresh
/// ones and the band is at least this large.
const STALE_REBUILD_FLOOR: usize = 64;

/// The skyline change-set produced by one mutation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkylineDelta {
    /// Tuples that entered the skyline.
    pub added: Vec<Row>,
    /// Tuples that left the skyline.
    pub removed: Vec<Row>,
}

impl SkylineDelta {
    /// Whether the mutation left the skyline unchanged (the common case
    /// for inserts of dominated tuples — the served result needs no
    /// re-rendering).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// An incrementally maintained skyline over a complete relation — see the
/// module docs for the structure and the soundness argument.
#[derive(Debug)]
pub struct MaintainedSkyline {
    checker: DominanceChecker,
    k: u32,
    /// Live tuples in arrival order (positions mirror the relation's).
    rows: Vec<Row>,
    /// Monotone arrival stamps, parallel to `rows`.
    seqs: Vec<u64>,
    /// `Some(stated count)` for tracked rows, `None` for untracked.
    counts: Vec<Option<u32>>,
    next_seq: u64,
    /// Tracked deletions since the last rebuild.
    erosion: u32,
    rebuilds: u64,
    /// Positions of tracked rows, ascending (arrival order).
    band: Vec<usize>,
    /// The band rows, transposed; index-aligned with `band`.
    block: ColumnarBlock,
    scratch: Vec<Dominance>,
    cand: EncodedCandidate,
}

impl MaintainedSkyline {
    /// Build the maintained state over the current rows. `k` is the band
    /// depth: up to `k` tracked deletions are absorbed as deltas before a
    /// rebuild. Rejects incomplete and `DISTINCT` specs (fall back to
    /// recomputation for those).
    pub fn new(spec: SkylineSpec, k: u32, rows: &[Row]) -> Result<Self> {
        if spec.distinct {
            return Err(Error::plan(
                "maintained skylines do not support SKYLINE OF DISTINCT",
            ));
        }
        let checker = DominanceChecker::complete(spec);
        let block = ColumnarBlock::for_checker(&checker);
        let mut this = MaintainedSkyline {
            checker,
            k,
            rows: Vec::with_capacity(rows.len()),
            seqs: Vec::with_capacity(rows.len()),
            counts: Vec::with_capacity(rows.len()),
            next_seq: 0,
            erosion: 0,
            rebuilds: 0,
            band: Vec::new(),
            block,
            scratch: Vec::new(),
            cand: EncodedCandidate::new(),
        };
        for row in rows {
            this.insert_internal(row.clone());
        }
        Ok(this)
    }

    /// The band depth `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Live tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Tracked (band) tuples.
    pub fn band_len(&self) -> usize {
        self.band.len()
    }

    /// Full rebuilds performed so far (erosion budget exhausted or band
    /// hygiene).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The maintained skyline, in arrival order — byte-identical to a
    /// cold BNL recompute over the current rows.
    pub fn skyline_rows(&self) -> Vec<Row> {
        self.band
            .iter()
            .filter(|&&p| self.counts[p] == Some(0))
            .map(|&p| self.rows[p].clone())
            .collect()
    }

    /// Apply an insert, returning the skyline change-set.
    pub fn apply_insert(&mut self, row: Row) -> SkylineDelta {
        let delta = self.insert_internal(row);
        // Band hygiene: replay when stale entries dominate. The replayed
        // state is exact for a pure-insert history, and exact-in implies
        // exact-out, so the skyline (and the delta) is unaffected.
        if self.band.len() >= STALE_REBUILD_FLOOR {
            let stale = self
                .band
                .iter()
                .filter(|&&p| self.counts[p].is_some_and(|c| c > self.k))
                .count();
            if stale * 2 > self.band.len() {
                self.rebuild();
            }
        }
        delta
    }

    /// Apply a delete by row position (positions mirror the relation:
    /// the value returned alongside `SessionCatalog::delete_rows`).
    /// Batched deletes must be applied in descending position order.
    pub fn apply_delete(&mut self, pos: usize) -> Result<SkylineDelta> {
        if pos >= self.rows.len() {
            return Err(Error::internal(format!(
                "maintained skyline: delete position {pos} out of bounds ({} rows)",
                self.rows.len()
            )));
        }
        let was_tracked = self.counts[pos].is_some();
        let in_skyline = self.counts[pos] == Some(0);
        let seq_x = self.seqs[pos];

        // Exactness holds only while erosion <= k; when this tracked
        // delete would exhaust the budget, diff a rebuild instead.
        if was_tracked && self.erosion >= self.k {
            let before = self.skyline_rows();
            self.remove_row(pos, true);
            self.rebuild();
            return Ok(diff_ordered(&before, &self.skyline_rows()));
        }

        let x = self.rows[pos].clone();
        self.remove_row(pos, was_tracked);

        let mut delta = SkylineDelta::default();
        if in_skyline {
            delta.removed.push(x.clone());
        }
        // Decrement the tracked tuples that counted x: x strictly
        // dominates them, and x was tracked (hence counted at their
        // insert) or arrived after them (hence counted on arrival).
        self.band_outcomes(&x);
        for i in 0..self.band.len() {
            if self.scratch[i] != Dominance::Dominates {
                continue;
            }
            let p = self.band[i];
            if !(was_tracked || seq_x > self.seqs[p]) {
                continue;
            }
            let c = self.counts[p].expect("band member untracked");
            debug_assert!(c > 0, "decrementing a zero stated count");
            self.counts[p] = Some(c.saturating_sub(1));
            if c == 1 {
                // Promotion: the deleted point's shadow surfaces.
                delta.added.push(self.rows[p].clone());
            }
        }
        if was_tracked {
            self.erosion += 1;
        }
        Ok(delta)
    }

    /// Shared insert path (no hygiene check — used by the replay too).
    fn insert_internal(&mut self, row: Row) -> SkylineDelta {
        let mut delta = SkylineDelta::default();
        self.band_outcomes(&row);
        let mut dominators = 0u32;
        for i in 0..self.band.len() {
            match self.scratch[i] {
                Dominance::DominatedBy => dominators += 1,
                Dominance::Dominates => {
                    let p = self.band[i];
                    let c = self.counts[p].expect("band member untracked");
                    self.counts[p] = Some(c + 1);
                    if c == 0 {
                        delta.removed.push(self.rows[p].clone());
                    }
                }
                _ => {}
            }
        }
        let pos = self.rows.len();
        self.rows.push(row);
        self.seqs.push(self.next_seq);
        self.next_seq += 1;
        if dominators <= self.k {
            self.counts.push(Some(dominators));
            self.band.push(pos);
            self.block.push(&self.rows[pos]);
            if dominators == 0 {
                delta.added.push(self.rows[pos].clone());
            }
        } else {
            self.counts.push(None);
        }
        delta
    }

    /// Fill `scratch[i]` with `compare(candidate, band[i])` — one batched
    /// kernel pass when the block supports it, the scalar checker
    /// otherwise.
    fn band_outcomes(&mut self, candidate: &Row) {
        if !self.block.is_fallback() && self.block.encode_into(candidate, &mut self.cand) {
            self.block
                .compare_batch(&self.cand, &mut self.scratch, false);
        } else {
            self.scratch.clear();
            for &p in &self.band {
                self.scratch
                    .push(self.checker.compare(candidate, &self.rows[p]));
            }
        }
        debug_assert_eq!(self.scratch.len(), self.band.len());
    }

    /// Remove row `pos` from the mirror (and the band, when tracked),
    /// shifting later positions down by one.
    fn remove_row(&mut self, pos: usize, was_tracked: bool) {
        if was_tracked {
            let bi = self
                .band
                .binary_search(&pos)
                .expect("tracked row missing from band");
            self.band.remove(bi);
            self.block.remove(bi);
        }
        self.rows.remove(pos);
        self.seqs.remove(pos);
        self.counts.remove(pos);
        for b in &mut self.band {
            if *b > pos {
                *b -= 1;
            }
        }
    }

    /// Replay the live rows through the insert path: exact counts for a
    /// pure-insert history, erosion budget reset.
    fn rebuild(&mut self) {
        let rows = std::mem::take(&mut self.rows);
        self.seqs.clear();
        self.counts.clear();
        self.band.clear();
        self.block = ColumnarBlock::for_checker(&self.checker);
        self.erosion = 0;
        self.rebuilds += 1;
        for row in rows {
            self.insert_internal(row);
        }
    }
}

/// Order-preserving multiset diff between two skyline renderings (used
/// for the rebuild path, where per-tuple deltas are not tracked).
fn diff_ordered(before: &[Row], after: &[Row]) -> SkylineDelta {
    let mut used = vec![false; before.len()];
    let mut added = Vec::new();
    for row in after {
        match before
            .iter()
            .enumerate()
            .find(|(i, b)| !used[*i] && *b == row)
        {
            Some((i, _)) => used[i] = true,
            None => added.push(row.clone()),
        }
    }
    let removed = before
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(r, _)| r.clone())
        .collect();
    SkylineDelta { added, removed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use sparkline_common::{SkylineDim, Value};

    fn row2(a: i64, b: i64) -> Row {
        Row::new(vec![Value::Int64(a), Value::Int64(b)])
    }

    fn spec2() -> SkylineSpec {
        SkylineSpec {
            dims: vec![SkylineDim::min(0), SkylineDim::min(1)],
            distinct: false,
        }
    }

    fn recompute(spec: &SkylineSpec, rows: &[Row]) -> Vec<Row> {
        let mut stats = crate::dominance::SkylineStats::default();
        bnl_skyline(
            rows.iter().cloned(),
            &DominanceChecker::complete(spec.clone()),
            &mut stats,
        )
    }

    #[test]
    fn insert_and_delete_track_the_front() {
        let mut m = MaintainedSkyline::new(spec2(), 2, &[]).unwrap();
        assert!(m.apply_insert(row2(5, 5)).added.len() == 1);
        // Dominated insert: no change.
        let d = m.apply_insert(row2(9, 9));
        assert!(d.is_empty());
        // Dominating insert: replaces (5,5) in the front.
        let d = m.apply_insert(row2(1, 1));
        assert_eq!(d.added, vec![row2(1, 1)]);
        assert_eq!(d.removed, vec![row2(5, 5)]);
        assert_eq!(m.skyline_rows(), vec![row2(1, 1)]);
        // Deleting (1,1) promotes its shadow (5,5).
        let d = m.apply_delete(2).unwrap();
        assert_eq!(d.removed, vec![row2(1, 1)]);
        assert_eq!(d.added, vec![row2(5, 5)]);
        assert_eq!(
            m.skyline_rows(),
            recompute(&spec2(), &[row2(5, 5), row2(9, 9)])
        );
    }

    #[test]
    fn erosion_budget_triggers_rebuild() {
        // k = 0: the very first tracked delete exhausts the budget.
        let rows: Vec<Row> = (0..20).map(|i| row2(i, 20 - i)).collect();
        let mut m = MaintainedSkyline::new(spec2(), 0, &rows).unwrap();
        let mut live = rows.clone();
        for _ in 0..10 {
            m.apply_delete(0).unwrap();
            live.remove(0);
            assert_eq!(m.skyline_rows(), recompute(&spec2(), &live));
        }
        assert!(m.rebuilds() > 0);
    }

    #[test]
    fn rejects_distinct_spec() {
        let spec = SkylineSpec {
            dims: vec![SkylineDim::min(0)],
            distinct: true,
        };
        assert!(MaintainedSkyline::new(spec, 4, &[]).is_err());
    }

    #[test]
    fn delete_out_of_bounds_is_an_error() {
        let mut m = MaintainedSkyline::new(spec2(), 4, &[row2(1, 1)]).unwrap();
        assert!(m.apply_delete(3).is_err());
    }

    #[test]
    fn duplicates_and_nulls_match_recompute() {
        let mut rows = vec![row2(3, 3), row2(3, 3), row2(1, 9)];
        rows.push(Row::new(vec![Value::Null, Value::Int64(0)]));
        let m = MaintainedSkyline::new(spec2(), 2, &rows).unwrap();
        assert_eq!(m.skyline_rows(), recompute(&spec2(), &rows));
    }
}
