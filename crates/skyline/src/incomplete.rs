//! Skyline computation over incomplete (NULL-containing) data, following
//! paper §5.7, Lemma 5.1, and Appendix A.
//!
//! The incomplete-data dominance relation is not transitive and may contain
//! cycles, so the BNL window trick is unsound across tuples with different
//! NULL patterns. The paper's approach:
//!
//! 1. **Partition by null bitmap.** Every tuple gets a bitmap with one bit
//!    per skyline dimension, set iff the dimension is NULL. Tuples with the
//!    same bitmap share their NULL positions; within one partition the
//!    restricted relation is transitive again, so the ordinary BNL
//!    algorithm computes each *local* skyline safely.
//! 2. **All-pairs global phase with deferred deletion.** The union of local
//!    skylines is compared pairwise; dominated tuples are only *flagged*,
//!    and flagged tuples are removed after all comparisons. Deleting
//!    eagerly is the bug of the algorithm in Gulzar et al. (see
//!    [`premature_deletion_global_skyline`], kept here to reproduce
//!    Appendix A's counterexample).
//!
//! Lemma 5.1 guarantees that the union of local skylines still contains a
//! dominating witness for every non-skyline tuple, so phase 2 over the
//! local skylines yields exactly `SKY(P)`.
//!
//! # Hierarchical (tree) merge of the global phase
//!
//! The paper runs phase 2 on a single executor. This module additionally
//! provides a *mergeable partial result* — [`IncompletePartial`] — that
//! lets the all-pairs pass run as a k-way tree merge over the executor
//! pool while remaining byte-identical to the flat plan. The soundness
//! argument:
//!
//! * **What the global phase actually computes.** Over the candidate set
//!   `C` (the union of the per-class local skylines) phase 2 returns
//!   `{ t ∈ C | ¬∃ s ∈ C : s ≺ t }` — each candidate survives iff *no*
//!   candidate dominates it. Deletion flags are **monotone** (a flag is
//!   never cleared) and flagged tuples keep participating as witnesses, so
//!   the result depends only on *which ordered pairs get compared*, never
//!   on the order of the comparisons. The flat plan compares every pair
//!   once; any schedule that also compares every pair exactly once
//!   produces the same flags.
//! * **How non-transitivity is contained.** Within one null-bitmap class
//!   every tuple shares its NULL positions, the restricted relation is
//!   transitive again, and a within-class dominator is a *stronger
//!   witness* than its victim: if `s ≺ t` with `bitmap(s) == bitmap(t)`,
//!   then `s` is at-least-as-good on every class dimension, so `t ≺ u ⇒
//!   s ≺ u` for any `u`. Within-class dominated tuples may therefore be
//!   deleted eagerly (this is exactly why the local phase is sound).
//!   *Across* classes the relation is cyclic, so a cross-class loser can
//!   only be **flagged**: it may still be the only witness dominating
//!   tuples of classes it has not met yet, and must travel with the
//!   partial result until every pair has been compared.
//! * **What must travel with a partial.** A partial covering a set of
//!   input partitions is *internally closed*: every pair of its
//!   candidates has been compared. It carries (a) the live candidates and
//!   (b) the *deferred-deletion set* — candidates flagged by a lost
//!   cross-class comparison. [`merge_incomplete_partials`] compares
//!   exactly the cross pairs of two partials (live *and* deferred on both
//!   sides — a deferred tuple still witnesses), concatenates, and stays
//!   internally closed. A leaf partial is built by
//!   [`IncompletePartialBuilder`]: per-class BNL windows (eager, sound)
//!   followed by the cross-class flag closure. Folding leaves through the
//!   merge in any tree shape compares every pair of `C` exactly once —
//!   the same flags as the flat plan.
//! * **Byte identity.** Partials keep their candidates in arrival order
//!   and the merge concatenates left-before-right, so with merges grouped
//!   in partition order the root's candidate order equals the flat plan's
//!   gathered order; identical flags then filter identical rows in an
//!   identical order. (`DISTINCT` ties flag the *later* of two identical
//!   candidates, on both paths.)

use std::collections::HashMap;

use sparkline_common::{
    DominanceKernel, QueryControl, Result, Row, SkylineSpec, CONTROL_CHECK_ROWS,
};

use crate::bnl::{bnl_skyline, kernel_for, BnlBuilder};
use crate::columnar::{ColumnarBlock, EncodedCandidate};
use crate::dominance::{Dominance, DominanceChecker, SkylineStats};

/// The null bitmap of a tuple over the skyline dimensions: bit `i` is set
/// iff dimension `i` (in spec order) is NULL (paper §5.7).
///
/// Supports up to 64 skyline dimensions, far beyond the paper's 6.
pub fn null_bitmap(row: &Row, spec: &SkylineSpec) -> u64 {
    assert!(
        spec.dims.len() <= 64,
        "at most 64 skyline dimensions are supported"
    );
    let mut bitmap = 0u64;
    for (i, dim) in spec.dims.iter().enumerate() {
        if row.get(dim.index).is_null() {
            bitmap |= 1 << i;
        }
    }
    bitmap
}

/// Group tuples by their null bitmap. Each group corresponds to one
/// partition `P_b` of the paper; the distributed engine instead realizes
/// this grouping as a hash exchange on the bitmap expression, but tests and
/// the standalone algorithms use this direct form.
pub fn partition_by_null_bitmap(
    rows: impl IntoIterator<Item = Row>,
    spec: &SkylineSpec,
) -> HashMap<u64, Vec<Row>> {
    let mut partitions: HashMap<u64, Vec<Row>> = HashMap::new();
    for row in rows {
        partitions
            .entry(null_bitmap(&row, spec))
            .or_default()
            .push(row);
    }
    partitions
}

/// Incremental per-null-bitmap local skyline for incomplete data — the
/// batch-feeding entry point of the streaming local phase (§5.7).
///
/// Rows are routed to one BNL window per bitmap class as they stream in;
/// within one class every tuple shares its NULL positions, the restricted
/// dominance relation is transitive again (Lemma 5.1), and — because a
/// class is uniformly NULL or non-NULL per column — each class window runs
/// on the columnar kernel when the kernel knob allows it. Because the
/// restricted relation *is* transitive inside a class, each class window
/// is marked class-pure and admits batches through the multi-candidate
/// pre-pass. `finish` concatenates the class windows in **first-seen
/// order**, making the streamed local phase deterministic (the
/// materialized seed iterated a `HashMap`).
pub struct GroupedBnlBuilder {
    checker: DominanceChecker,
    kernel: DominanceKernel,
    index: HashMap<u64, usize>,
    groups: Vec<BnlBuilder>,
}

impl GroupedBnlBuilder {
    /// A builder over the checker's spec (must be an incomplete-relation
    /// checker when NULLs can occur).
    pub fn new(checker: DominanceChecker, vectorized: bool) -> Self {
        Self::with_kernel(checker, kernel_for(vectorized))
    }

    /// As [`Self::new`], with an explicit compare-kernel selection.
    pub fn with_kernel(checker: DominanceChecker, kernel: DominanceKernel) -> Self {
        GroupedBnlBuilder {
            checker,
            kernel,
            index: HashMap::new(),
            groups: Vec::new(),
        }
    }

    /// The window slot of a row's bitmap class, creating the class window
    /// on first sight. New windows are marked class-pure: within one class
    /// the restricted relation is transitive (Lemma 5.1), so the
    /// multi-candidate pre-pass is sound.
    fn slot_for(&mut self, row: &Row) -> usize {
        let bitmap = null_bitmap(row, self.checker.spec());
        match self.index.get(&bitmap) {
            Some(&i) => i,
            None => {
                let mut builder = BnlBuilder::with_kernel(self.checker.clone(), self.kernel);
                builder.mark_class_pure();
                self.groups.push(builder);
                self.index.insert(bitmap, self.groups.len() - 1);
                self.groups.len() - 1
            }
        }
    }

    /// Feed one tuple into its bitmap class's window.
    pub fn push(&mut self, row: Row) {
        let slot = self.slot_for(&row);
        self.groups[slot].push(row);
    }

    /// Feed one batch of rows: the batch is routed per class first so each
    /// class window can admit its share through the multi-candidate
    /// pre-pass instead of row-at-a-time.
    pub fn push_batch(&mut self, rows: impl IntoIterator<Item = Row>) {
        let mut routed: Vec<(usize, Vec<Row>)> = Vec::new();
        let mut at: HashMap<usize, usize> = HashMap::new();
        for row in rows {
            let slot = self.slot_for(&row);
            let i = *at.entry(slot).or_insert_with(|| {
                routed.push((slot, Vec::new()));
                routed.len() - 1
            });
            routed[i].1.push(row);
        }
        for (slot, class_rows) in routed {
            self.groups[slot].push_batch(class_rows);
        }
    }

    /// [`push_batch`](Self::push_batch) under cooperative query control,
    /// checked every [`CONTROL_CHECK_ROWS`] routed rows.
    pub fn push_batch_checked(
        &mut self,
        rows: impl IntoIterator<Item = Row>,
        control: &QueryControl,
    ) -> Result<()> {
        let mut rows = rows.into_iter().peekable();
        while rows.peek().is_some() {
            control.check()?;
            self.push_batch(rows.by_ref().take(CONTROL_CHECK_ROWS));
        }
        Ok(())
    }

    /// Total window occupancy across all bitmap classes.
    pub fn window_len(&self) -> usize {
        self.groups.iter().map(BnlBuilder::window_len).sum()
    }

    /// Concatenate the class skylines (first-seen order) and merge stats.
    pub fn finish(self) -> (Vec<Row>, SkylineStats) {
        let (classes, stats) = self.finish_classes();
        (
            classes.into_iter().flat_map(|(_, rows)| rows).collect(),
            stats,
        )
    }

    /// The per-class skylines `(bitmap, window)` in first-seen class order
    /// (the structure [`IncompletePartialBuilder`] consumes), plus merged
    /// stats.
    pub fn finish_classes(self) -> (Vec<(u64, Vec<Row>)>, SkylineStats) {
        let mut bitmaps = vec![0u64; self.groups.len()];
        for (bitmap, slot) in &self.index {
            bitmaps[*slot] = *bitmap;
        }
        let mut classes = Vec::with_capacity(self.groups.len());
        let mut stats = SkylineStats::default();
        for (bitmap, builder) in bitmaps.into_iter().zip(self.groups) {
            let (window, group_stats) = builder.finish();
            classes.push((bitmap, window));
            stats.merge(&group_stats);
        }
        (classes, stats)
    }
}

/// One candidate of an [`IncompletePartial`], tagged with its null-bitmap
/// class and its deferred-deletion flag.
#[derive(Debug, Clone)]
struct PartialEntry {
    /// Null bitmap of the row (its class).
    bitmap: u64,
    /// Whether the candidate lost a comparison and is scheduled for
    /// deletion. A deferred candidate no longer belongs to the result but
    /// keeps traveling as a dominance witness — removing it early is the
    /// premature-deletion bug of Appendix A.
    deferred: bool,
    row: Row,
}

/// A mergeable partial result of the incomplete-data global phase: the
/// candidates of one or more input partitions, **internally closed** (every
/// pair among them has been compared) with per-candidate deferred-deletion
/// flags. See the module docs for the merge algebra and its soundness
/// argument.
///
/// Candidates stay in arrival order; [`Self::finish`] drops the deferred
/// set and yields the survivors, byte-identical to what the flat all-pairs
/// pass produces on the same concatenated input.
#[derive(Debug, Clone, Default)]
pub struct IncompletePartial {
    entries: Vec<PartialEntry>,
}

impl IncompletePartial {
    /// Total candidates (live + deferred).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the partial holds no candidates at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Candidates still scheduled to appear in the result.
    pub fn live_len(&self) -> usize {
        self.entries.iter().filter(|e| !e.deferred).count()
    }

    /// Size of the deferred-deletion set.
    pub fn deferred_len(&self) -> usize {
        self.entries.iter().filter(|e| e.deferred).count()
    }

    /// Number of distinct null-bitmap classes among the candidates.
    pub fn class_count(&self) -> usize {
        let mut bitmaps: Vec<u64> = self.entries.iter().map(|e| e.bitmap).collect();
        bitmaps.sort_unstable();
        bitmaps.dedup();
        bitmaps.len()
    }

    /// Drop the deferred-deletion set and return the surviving skyline
    /// members in arrival order.
    pub fn finish(self) -> Vec<Row> {
        self.entries
            .into_iter()
            .filter_map(|e| (!e.deferred).then_some(e.row))
            .collect()
    }
}

/// Streaming builder of one *leaf* [`IncompletePartial`]: rows are routed
/// into per-null-bitmap-class BNL windows as they arrive (the
/// [`GroupedBnlBuilder`] local phase — eager within-class deletion is
/// sound, see the module docs), and [`Self::finish`] closes the leaf by
/// running the cross-class deferred-deletion flag pass. Feeding it the
/// output of a local skyline phase re-derives the same class windows
/// unchanged, so the leaf is also correct (and idempotent) on raw input.
pub struct IncompletePartialBuilder {
    checker: DominanceChecker,
    kernel: DominanceKernel,
    grouped: GroupedBnlBuilder,
}

impl IncompletePartialBuilder {
    /// A builder over an incomplete-relation checker.
    pub fn new(checker: DominanceChecker, vectorized: bool) -> Self {
        Self::with_kernel(checker, kernel_for(vectorized))
    }

    /// As [`Self::new`], with an explicit compare-kernel selection.
    pub fn with_kernel(checker: DominanceChecker, kernel: DominanceKernel) -> Self {
        IncompletePartialBuilder {
            grouped: GroupedBnlBuilder::with_kernel(checker.clone(), kernel),
            checker,
            kernel,
        }
    }

    /// Feed one tuple into its class window.
    pub fn push(&mut self, row: Row) {
        self.grouped.push(row);
    }

    /// Feed one batch of rows.
    pub fn push_batch(&mut self, rows: impl IntoIterator<Item = Row>) {
        self.grouped.push_batch(rows);
    }

    /// Feed one batch under cooperative query control (checked every
    /// [`CONTROL_CHECK_ROWS`] rows).
    pub fn push_batch_checked(
        &mut self,
        rows: impl IntoIterator<Item = Row>,
        control: &QueryControl,
    ) -> Result<()> {
        self.grouped.push_batch_checked(rows, control)
    }

    /// Current window occupancy across all class windows.
    pub fn window_len(&self) -> usize {
        self.grouped.window_len()
    }

    /// Close the leaf: cross-class flag pass over the class windows
    /// (first-seen class order), yielding an internally closed partial.
    pub fn finish(self) -> (IncompletePartial, SkylineStats) {
        let (classes, mut stats) = self.grouped.finish_classes();
        let mut partial = IncompletePartial::default();
        for (bitmap, window) in classes {
            // Each class window is a skyline under the (transitive)
            // restricted relation: internally closed with no flags. The
            // incremental cross pass against the classes accumulated so
            // far is exactly one partial merge per class.
            let class_partial = IncompletePartial {
                entries: window
                    .into_iter()
                    .map(|row| PartialEntry {
                        bitmap,
                        deferred: false,
                        row,
                    })
                    .collect(),
            };
            partial = merge_incomplete_partials_kernel(
                partial,
                class_partial,
                &self.checker,
                self.kernel,
                &mut stats,
            );
        }
        (partial, stats)
    }
}

/// Merge two internally closed partials: compare exactly the cross pairs
/// (both directions of flags; deferred candidates still witness), then
/// concatenate `a`'s candidates before `b`'s. The result is internally
/// closed again. With `vectorized`, `b`'s candidates are encoded once per
/// bitmap class into the columnar kernel and every `a`-candidate is tested
/// against each class block in one batched pass (a class is uniformly NULL
/// or non-NULL per column — the layout the kernel encodes); classes the
/// kernel cannot represent fall back to the scalar checker. Results are
/// byte-identical either way.
pub fn merge_incomplete_partials(
    a: IncompletePartial,
    b: IncompletePartial,
    checker: &DominanceChecker,
    vectorized: bool,
    stats: &mut SkylineStats,
) -> IncompletePartial {
    merge_incomplete_partials_kernel(a, b, checker, kernel_for(vectorized), stats)
}

/// As [`merge_incomplete_partials`], with an explicit compare-kernel
/// selection for the per-class blocks of the cross pass.
pub fn merge_incomplete_partials_kernel(
    mut a: IncompletePartial,
    mut b: IncompletePartial,
    checker: &DominanceChecker,
    kernel: DominanceKernel,
    stats: &mut SkylineStats,
) -> IncompletePartial {
    if a.is_empty() {
        return b;
    }
    if !b.is_empty() {
        cross_flag(&mut a.entries, &mut b.entries, checker, kernel, stats);
        a.entries.append(&mut b.entries);
    }
    stats.max_window = stats.max_window.max(a.entries.len());
    a
}

/// Compare every pair `(a_i, b_j)` once, updating both deferral flags.
/// `a` precedes `b` in arrival order, so `DISTINCT`-identical ties flag
/// the `b` side — matching the flat pass's "keep the first" rule.
fn cross_flag(
    a: &mut [PartialEntry],
    b: &mut [PartialEntry],
    checker: &DominanceChecker,
    kernel: DominanceKernel,
    stats: &mut SkylineStats,
) {
    if kernel.is_vectorized() {
        // Encode once per class of `b`; flags never evict, so the blocks
        // stay valid for the whole pass.
        let mut blocks: Vec<(ColumnarBlock, Vec<usize>)> = Vec::new();
        let mut slots: HashMap<u64, usize> = HashMap::new();
        for (j, entry) in b.iter().enumerate() {
            let slot = *slots.entry(entry.bitmap).or_insert_with(|| {
                blocks.push((ColumnarBlock::for_checker_with(checker, kernel), Vec::new()));
                blocks.len() - 1
            });
            let (block, members) = &mut blocks[slot];
            block.push(&entry.row);
            members.push(j);
        }
        let distinct = checker.distinct();
        let mut cand = EncodedCandidate::new();
        let mut out: Vec<Dominance> = Vec::new();
        for i in 0..a.len() {
            for (block, members) in &blocks {
                if block.is_fallback() || !block.encode_into(&a[i].row, &mut cand) {
                    scalar_cross_flag(a, i, b, members, checker, stats);
                    continue;
                }
                // No early exit: a dominated candidate must still flag the
                // rows it dominates (it is a deferred witness, not dead).
                let res = block.compare_batch(&cand, &mut out, false);
                stats.add_block_tests(res.tested, block.is_simd());
                for (&j, outcome) in members.iter().zip(&out) {
                    match outcome {
                        Dominance::Dominates => b[j].deferred = true,
                        Dominance::DominatedBy => a[i].deferred = true,
                        Dominance::Equal => {
                            if distinct && checker.identical_dims(&a[i].row, &b[j].row) {
                                b[j].deferred = true;
                            }
                        }
                        Dominance::Incomparable => {}
                    }
                }
            }
        }
        return;
    }
    let all: Vec<usize> = (0..b.len()).collect();
    for i in 0..a.len() {
        scalar_cross_flag(a, i, b, &all, checker, stats);
    }
}

/// Scalar cross pass of one `a`-candidate against the listed `b` entries.
/// Mirrors the flat pass's skip: a pair where both sides are already
/// deferred can no longer change any flag.
fn scalar_cross_flag(
    a: &mut [PartialEntry],
    i: usize,
    b: &mut [PartialEntry],
    members: &[usize],
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) {
    let distinct = checker.distinct();
    for &j in members {
        if a[i].deferred && b[j].deferred {
            continue;
        }
        stats.add_scalar();
        match checker.compare(&a[i].row, &b[j].row) {
            Dominance::Dominates => b[j].deferred = true,
            Dominance::DominatedBy => a[i].deferred = true,
            Dominance::Equal => {
                if distinct && checker.identical_dims(&a[i].row, &b[j].row) {
                    b[j].deferred = true;
                }
            }
            Dominance::Incomparable => {}
        }
    }
}

/// Global skyline for (potentially) incomplete data: all-pairs dominance
/// checks with deferred deletion (paper §5.7 / Appendix A "Correct Skyline
/// Computation").
///
/// `rows` is typically the union of the per-bitmap local skylines, but the
/// routine is correct on arbitrary input (it implements Definition 3.2
/// directly). The checker must be an incomplete-relation checker when NULLs
/// can occur.
pub fn incomplete_global_skyline(
    rows: Vec<Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    let n = rows.len();
    stats.max_window = stats.max_window.max(n);
    let mut dominated = vec![false; n];
    let distinct = checker.distinct();
    for i in 0..n {
        for j in (i + 1)..n {
            // A pair where both tuples are already flagged can no longer
            // influence the result; skip the comparison. Pairs with one
            // flagged tuple must still run: the flagged tuple may be the
            // only witness dominating the other (premature-deletion trap).
            if dominated[i] && dominated[j] {
                continue;
            }
            stats.dominance_tests += 1;
            match checker.compare(&rows[i], &rows[j]) {
                Dominance::Dominates => dominated[j] = true,
                Dominance::DominatedBy => dominated[i] = true,
                Dominance::Equal => {
                    if distinct && checker.identical_dims(&rows[i], &rows[j]) {
                        // Keep the first representative of identical tuples.
                        dominated[j] = true;
                    }
                }
                Dominance::Incomparable => {}
            }
        }
    }
    rows.into_iter()
        .zip(dominated)
        .filter_map(|(row, dom)| (!dom).then_some(row))
        .collect()
}

/// Compute the full incomplete skyline of a dataset standalone: partition
/// by null bitmap, local BNL per partition, then the flagged global phase.
/// This is the single-node reference composition of the distributed plan.
pub fn incomplete_skyline(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    let mut candidates = Vec::new();
    for (_, partition) in partition_by_null_bitmap(rows, checker.spec()) {
        candidates.extend(bnl_skyline(partition, checker, stats));
    }
    incomplete_global_skyline(candidates, checker, stats)
}

/// The **incorrect** global-skyline procedure of Gulzar et al. (paper
/// Appendix A), kept for demonstration and regression tests.
///
/// It visits the bitmap clusters in order; for the current point `p` it
/// scans all not-yet-deleted points of *subsequent* clusters, deleting any
/// `q` with `p ≺ q` immediately and flagging `p` when `q ≺ p`. Flagged
/// points are deleted at the end of their iteration. Under cyclic dominance
/// this deletes a tuple's only dominating witness before the witness is
/// used, so a dominated tuple can survive — Appendix A's counterexample
/// `a=(1,*,10), b=(3,2,*), c=(*,5,3)` returns `{c}` instead of `{}`.
pub fn premature_deletion_global_skyline(
    clusters: Vec<Vec<Row>>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    // alive[c][k] tracks whether point k of cluster c is still a candidate.
    let mut alive: Vec<Vec<bool>> = clusters.iter().map(|c| vec![true; c.len()]).collect();
    for ci in 0..clusters.len() {
        for pi in 0..clusters[ci].len() {
            if !alive[ci][pi] {
                continue;
            }
            let mut flagged = false;
            for cj in (ci + 1)..clusters.len() {
                for qj in 0..clusters[cj].len() {
                    if !alive[cj][qj] {
                        continue;
                    }
                    stats.dominance_tests += 1;
                    match checker.compare(&clusters[ci][pi], &clusters[cj][qj]) {
                        Dominance::Dominates => alive[cj][qj] = false,
                        Dominance::DominatedBy => flagged = true,
                        _ => {}
                    }
                }
            }
            if flagged {
                alive[ci][pi] = false;
            }
        }
    }
    clusters
        .into_iter()
        .zip(alive)
        .flat_map(|(cluster, flags)| {
            cluster
                .into_iter()
                .zip(flags)
                .filter_map(|(row, keep)| keep.then_some(row))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{SkylineDim, Value};

    fn row(vals: &[Option<i64>]) -> Row {
        Row::new(
            vals.iter()
                .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
                .collect(),
        )
    }

    fn spec3() -> SkylineSpec {
        SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::min(2),
        ])
    }

    /// The three cyclic tuples of §3 / Appendix A.
    fn cycle() -> (Row, Row, Row) {
        (
            row(&[Some(1), None, Some(10)]),
            row(&[Some(3), Some(2), None]),
            row(&[None, Some(5), Some(3)]),
        )
    }

    #[test]
    fn bitmaps() {
        let spec = spec3();
        assert_eq!(null_bitmap(&row(&[Some(1), None, Some(10)]), &spec), 0b010);
        assert_eq!(null_bitmap(&row(&[Some(3), Some(2), None]), &spec), 0b100);
        assert_eq!(null_bitmap(&row(&[None, Some(5), Some(3)]), &spec), 0b001);
        assert_eq!(null_bitmap(&row(&[Some(1), Some(2), Some(3)]), &spec), 0);
        assert_eq!(null_bitmap(&row(&[None, None, None]), &spec), 0b111);
    }

    #[test]
    fn bitmap_uses_dim_order_not_column_order() {
        // Dimensions can reference columns in any order; the bitmap is in
        // *dimension* order.
        let spec = SkylineSpec::new(vec![SkylineDim::min(2), SkylineDim::min(0)]);
        let r = row(&[None, Some(1), Some(2)]);
        assert_eq!(null_bitmap(&r, &spec), 0b10);
    }

    #[test]
    fn partitioning_groups_by_bitmap() {
        let spec = spec3();
        let (a, b, c) = cycle();
        let complete1 = row(&[Some(9), Some(9), Some(9)]);
        let complete2 = row(&[Some(8), Some(8), Some(8)]);
        let parts = partition_by_null_bitmap(vec![a, b, c, complete1, complete2], &spec);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[&0].len(), 2);
    }

    #[test]
    fn cyclic_dominance_yields_empty_skyline() {
        // Paper §3: a ≺ b, b ≺ c, c ≺ a — every tuple is dominated, the
        // skyline must be empty.
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        let mut stats = SkylineStats::default();
        let sky = incomplete_global_skyline(vec![a, b, c], &checker, &mut stats);
        assert!(sky.is_empty(), "cyclic dominance must empty the skyline");
    }

    #[test]
    fn appendix_a_counterexample_faulty_algorithm_returns_c() {
        // Reproduce Appendix A: the premature-deletion algorithm of [20]
        // wrongly returns {c} on the cycle while the correct result is {}.
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        let mut stats = SkylineStats::default();
        let wrong = premature_deletion_global_skyline(
            vec![vec![a], vec![b], vec![c.clone()]],
            &checker,
            &mut stats,
        );
        assert_eq!(wrong, vec![c], "the faulty algorithm keeps tuple c");
    }

    #[test]
    fn full_incomplete_pipeline_on_cycle_plus_survivor() {
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        // This tuple is dominated by nothing: 0 is minimal on dim 0 and 2,
        // and dim 1 is NULL, so only dims 0/2 can be compared.
        let survivor = row(&[Some(0), None, Some(0)]);
        let mut stats = SkylineStats::default();
        let sky = incomplete_skyline(vec![a, b, c, survivor.clone()], &checker, &mut stats);
        assert_eq!(sky, vec![survivor]);
    }

    #[test]
    fn incomplete_pipeline_equals_global_on_small_input() {
        // The partition+local phase must not change the result, only
        // shrink the candidate set.
        let checker = DominanceChecker::incomplete(spec3());
        let data = vec![
            row(&[Some(1), Some(2), Some(3)]),
            row(&[Some(1), Some(2), None]),
            row(&[Some(2), Some(2), Some(3)]),
            row(&[None, Some(1), Some(4)]),
            row(&[Some(1), None, Some(3)]),
        ];
        let mut s1 = SkylineStats::default();
        let with_partitioning = incomplete_skyline(data.clone(), &checker, &mut s1);
        let mut s2 = SkylineStats::default();
        let direct = incomplete_global_skyline(data, &checker, &mut s2);
        let key = |r: &Row| format!("{r}");
        let mut a: Vec<String> = with_partitioning.iter().map(key).collect();
        let mut b: Vec<String> = direct.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn global_distinct_dedups_identical_tuples() {
        let mut spec = spec3();
        spec.distinct = true;
        let checker = DominanceChecker::incomplete(spec);
        let r = row(&[Some(1), None, Some(1)]);
        let mut stats = SkylineStats::default();
        let sky =
            incomplete_global_skyline(vec![r.clone(), r.clone(), r.clone()], &checker, &mut stats);
        assert_eq!(sky.len(), 1);
    }

    #[test]
    fn complete_data_single_partition() {
        // On complete data the bitmap partitioner degenerates to a single
        // partition (the paper's worst case for the incomplete algorithm).
        let spec = spec3();
        let parts = partition_by_null_bitmap(
            vec![
                row(&[Some(1), Some(2), Some(3)]),
                row(&[Some(4), Some(5), Some(6)]),
            ],
            &spec,
        );
        assert_eq!(parts.len(), 1);
        assert!(parts.contains_key(&0));
    }

    #[test]
    fn stats_are_recorded() {
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        let mut stats = SkylineStats::default();
        incomplete_global_skyline(vec![a, b, c], &checker, &mut stats);
        assert_eq!(stats.dominance_tests, 3); // all pairs of 3 tuples
        assert_eq!(stats.max_window, 3);
    }

    /// Deterministic mixed-bitmap test data: ~30% NULLs over `dims`
    /// small-domain dimensions, so dominance, equality, and cycles all
    /// occur.
    fn mixed_rows(n: usize, dims: usize, seed: u64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(
                    (0..dims)
                        .map(|d| {
                            let h = (i as u64)
                                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .wrapping_add(seed)
                                .wrapping_add((d as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                            let h = (h ^ (h >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
                            if h % 10 < 3 {
                                Value::Null
                            } else {
                                Value::Int64(((h >> 8) % 6) as i64)
                            }
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// Tree-merge the rows split into `parts` leaf partials with the given
    /// fan-in; returns the surviving rows in order.
    fn tree_merge(
        rows: &[Row],
        checker: &DominanceChecker,
        parts: usize,
        fan_in: usize,
        vectorized: bool,
    ) -> (Vec<Row>, usize) {
        let chunk = rows.len().div_ceil(parts.max(1)).max(1);
        let mut partials: Vec<IncompletePartial> = rows
            .chunks(chunk)
            .map(|chunk| {
                let mut builder = IncompletePartialBuilder::new(checker.clone(), vectorized);
                builder.push_batch(chunk.to_vec());
                builder.finish().0
            })
            .collect();
        let mut stats = SkylineStats::default();
        while partials.len() > 1 {
            let mut next = Vec::new();
            let mut iter = partials.into_iter().peekable();
            while iter.peek().is_some() {
                let group: Vec<IncompletePartial> = iter.by_ref().take(fan_in).collect();
                let mut merged = IncompletePartial::default();
                for p in group {
                    merged = merge_incomplete_partials(merged, p, checker, vectorized, &mut stats);
                }
                next.push(merged);
            }
            partials = next;
        }
        let root = partials.pop().unwrap_or_default();
        let deferred = root.deferred_len();
        (root.finish(), deferred)
    }

    #[test]
    fn grouped_builder_kernel_knobs_are_byte_identical() {
        // Per-class windows are class-pure, so the vectorized knobs run
        // the multi-candidate pre-pass; every knob must produce the same
        // rows in the same order.
        let checker = DominanceChecker::incomplete(spec3());
        let data = mixed_rows(240, 3, 7);
        let mut baseline = GroupedBnlBuilder::with_kernel(checker.clone(), DominanceKernel::Scalar);
        baseline.push_batch(data.clone());
        let (expected, base_stats) = baseline.finish();
        assert_eq!(base_stats.multi_candidate_passes, 0);
        for kernel in [
            DominanceKernel::Auto,
            DominanceKernel::Simd,
            DominanceKernel::Chunked,
        ] {
            let mut builder = GroupedBnlBuilder::with_kernel(checker.clone(), kernel);
            builder.push_batch(data.clone());
            let (rows, stats) = builder.finish();
            assert_eq!(rows, expected, "kernel {kernel:?}");
            assert_eq!(stats.max_window, base_stats.max_window);
            assert!(
                stats.multi_candidate_passes > 0,
                "class-pure windows must batch candidates under {kernel:?}"
            );
        }
    }

    #[test]
    fn partial_tree_merge_is_byte_identical_to_flat() {
        // Local phase first (as in the distributed plan), then flat vs
        // every tree shape: identical rows in identical order.
        let checker = DominanceChecker::incomplete(spec3());
        for seed in 0..4u64 {
            let data = mixed_rows(120, 3, seed);
            let mut local = GroupedBnlBuilder::new(checker.clone(), true);
            local.push_batch(data);
            let (candidates, _) = local.finish();
            let mut stats = SkylineStats::default();
            let flat = incomplete_global_skyline(candidates.clone(), &checker, &mut stats);
            let flat_deferred = candidates.len() - flat.len();
            for parts in [1usize, 2, 3, 5] {
                for fan_in in [2usize, 3] {
                    for vectorized in [false, true] {
                        let (tree, deferred) =
                            tree_merge(&candidates, &checker, parts, fan_in, vectorized);
                        assert_eq!(
                            tree, flat,
                            "seed {seed}, {parts} parts, fan-in {fan_in}, v={vectorized}"
                        );
                        assert_eq!(deferred, flat_deferred, "same tuples flagged");
                    }
                }
            }
        }
    }

    #[test]
    fn partial_merge_handles_the_cycle_across_partials() {
        // The Appendix A cycle split over three leaves: every tuple loses
        // one cross-class comparison, so the deferred set swallows all
        // three and the root survivor set is empty — the case eager
        // deletion gets wrong.
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        let (sky, deferred) = tree_merge(&[a, b, c], &checker, 3, 2, false);
        assert!(sky.is_empty());
        assert_eq!(deferred, 3);
    }

    #[test]
    fn partial_counters_and_classes() {
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        let mut builder = IncompletePartialBuilder::new(checker.clone(), true);
        builder.push_batch(vec![a, b, c, row(&[Some(9), Some(9), Some(9)])]);
        assert_eq!(builder.window_len(), 4);
        let (partial, stats) = builder.finish();
        assert_eq!(partial.len(), 4);
        assert_eq!(partial.class_count(), 4, "three NULL classes + complete");
        assert!(stats.dominance_tests > 0);
        // The cycle members flag each other; the complete row is dominated
        // by a=(1,*,10)? No: (9,9,9) vs (1,*,10) compares dims 0,2 → a
        // dominates. So at least the three cycle members plus the complete
        // row carry flags.
        assert_eq!(partial.deferred_len(), 4);
        assert_eq!(partial.live_len(), 0);
        assert!(partial.clone().finish().is_empty());
        assert!(!partial.is_empty());
    }

    #[test]
    fn distinct_ties_flag_the_later_candidate_across_partials() {
        let mut spec = spec3();
        spec.distinct = true;
        let checker = DominanceChecker::incomplete(spec);
        let r = row(&[Some(1), None, Some(1)]);
        for vectorized in [false, true] {
            let (sky, deferred) = tree_merge(
                &[r.clone(), r.clone(), r.clone()],
                &checker,
                3,
                2,
                vectorized,
            );
            assert_eq!(sky, vec![r.clone()], "v={vectorized}");
            assert_eq!(deferred, 2);
        }
    }

    #[test]
    fn vectorized_merge_falls_back_on_non_numeric_classes() {
        // String dimensions demote the class blocks to the scalar path;
        // results must not change.
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let checker = DominanceChecker::incomplete(spec);
        let data: Vec<Row> = (0..30)
            .map(|i: i64| {
                Row::new(vec![
                    if i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::str(format!("s{:02}", i % 5))
                    },
                    Value::Int64(i % 7),
                ])
            })
            .collect();
        let mut stats = SkylineStats::default();
        let flat = incomplete_skyline(data.clone(), &checker, &mut stats);
        let key = |rows: &[Row]| {
            let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        for vectorized in [false, true] {
            let (tree, _) = tree_merge(&data, &checker, 3, 2, vectorized);
            assert_eq!(key(&tree), key(&flat), "v={vectorized}");
        }
    }
}
