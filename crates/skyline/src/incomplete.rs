//! Skyline computation over incomplete (NULL-containing) data, following
//! paper §5.7, Lemma 5.1, and Appendix A.
//!
//! The incomplete-data dominance relation is not transitive and may contain
//! cycles, so the BNL window trick is unsound across tuples with different
//! NULL patterns. The paper's approach:
//!
//! 1. **Partition by null bitmap.** Every tuple gets a bitmap with one bit
//!    per skyline dimension, set iff the dimension is NULL. Tuples with the
//!    same bitmap share their NULL positions; within one partition the
//!    restricted relation is transitive again, so the ordinary BNL
//!    algorithm computes each *local* skyline safely.
//! 2. **All-pairs global phase with deferred deletion.** The union of local
//!    skylines is compared pairwise; dominated tuples are only *flagged*,
//!    and flagged tuples are removed after all comparisons. Deleting
//!    eagerly is the bug of the algorithm in Gulzar et al. (see
//!    [`premature_deletion_global_skyline`], kept here to reproduce
//!    Appendix A's counterexample).
//!
//! Lemma 5.1 guarantees that the union of local skylines still contains a
//! dominating witness for every non-skyline tuple, so phase 2 over the
//! local skylines yields exactly `SKY(P)`.

use std::collections::HashMap;

use sparkline_common::{Row, SkylineSpec};

use crate::bnl::{bnl_skyline, BnlBuilder};
use crate::dominance::{Dominance, DominanceChecker, SkylineStats};

/// The null bitmap of a tuple over the skyline dimensions: bit `i` is set
/// iff dimension `i` (in spec order) is NULL (paper §5.7).
///
/// Supports up to 64 skyline dimensions, far beyond the paper's 6.
pub fn null_bitmap(row: &Row, spec: &SkylineSpec) -> u64 {
    assert!(
        spec.dims.len() <= 64,
        "at most 64 skyline dimensions are supported"
    );
    let mut bitmap = 0u64;
    for (i, dim) in spec.dims.iter().enumerate() {
        if row.get(dim.index).is_null() {
            bitmap |= 1 << i;
        }
    }
    bitmap
}

/// Group tuples by their null bitmap. Each group corresponds to one
/// partition `P_b` of the paper; the distributed engine instead realizes
/// this grouping as a hash exchange on the bitmap expression, but tests and
/// the standalone algorithms use this direct form.
pub fn partition_by_null_bitmap(
    rows: impl IntoIterator<Item = Row>,
    spec: &SkylineSpec,
) -> HashMap<u64, Vec<Row>> {
    let mut partitions: HashMap<u64, Vec<Row>> = HashMap::new();
    for row in rows {
        partitions
            .entry(null_bitmap(&row, spec))
            .or_default()
            .push(row);
    }
    partitions
}

/// Incremental per-null-bitmap local skyline for incomplete data — the
/// batch-feeding entry point of the streaming local phase (§5.7).
///
/// Rows are routed to one BNL window per bitmap class as they stream in;
/// within one class every tuple shares its NULL positions, the restricted
/// dominance relation is transitive again (Lemma 5.1), and — because a
/// class is uniformly NULL or non-NULL per column — each class window runs
/// on the columnar kernel when `vectorized`. `finish` concatenates the
/// class windows in **first-seen order**, making the streamed local phase
/// deterministic (the materialized seed iterated a `HashMap`).
pub struct GroupedBnlBuilder {
    checker: DominanceChecker,
    vectorized: bool,
    index: HashMap<u64, usize>,
    groups: Vec<BnlBuilder>,
}

impl GroupedBnlBuilder {
    /// A builder over the checker's spec (must be an incomplete-relation
    /// checker when NULLs can occur).
    pub fn new(checker: DominanceChecker, vectorized: bool) -> Self {
        GroupedBnlBuilder {
            checker,
            vectorized,
            index: HashMap::new(),
            groups: Vec::new(),
        }
    }

    /// Feed one tuple into its bitmap class's window.
    pub fn push(&mut self, row: Row) {
        let bitmap = null_bitmap(&row, self.checker.spec());
        let slot = match self.index.get(&bitmap) {
            Some(&i) => i,
            None => {
                self.groups
                    .push(BnlBuilder::new(self.checker.clone(), self.vectorized));
                self.index.insert(bitmap, self.groups.len() - 1);
                self.groups.len() - 1
            }
        };
        self.groups[slot].push(row);
    }

    /// Feed one batch of rows.
    pub fn push_batch(&mut self, rows: impl IntoIterator<Item = Row>) {
        for row in rows {
            self.push(row);
        }
    }

    /// Total window occupancy across all bitmap classes.
    pub fn window_len(&self) -> usize {
        self.groups.iter().map(BnlBuilder::window_len).sum()
    }

    /// Concatenate the class skylines (first-seen order) and merge stats.
    pub fn finish(self) -> (Vec<Row>, SkylineStats) {
        let mut rows = Vec::new();
        let mut stats = SkylineStats::default();
        for builder in self.groups {
            let (window, group_stats) = builder.finish();
            rows.extend(window);
            stats.merge(&group_stats);
        }
        (rows, stats)
    }
}

/// Global skyline for (potentially) incomplete data: all-pairs dominance
/// checks with deferred deletion (paper §5.7 / Appendix A "Correct Skyline
/// Computation").
///
/// `rows` is typically the union of the per-bitmap local skylines, but the
/// routine is correct on arbitrary input (it implements Definition 3.2
/// directly). The checker must be an incomplete-relation checker when NULLs
/// can occur.
pub fn incomplete_global_skyline(
    rows: Vec<Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    let n = rows.len();
    stats.max_window = stats.max_window.max(n);
    let mut dominated = vec![false; n];
    let distinct = checker.distinct();
    for i in 0..n {
        for j in (i + 1)..n {
            // A pair where both tuples are already flagged can no longer
            // influence the result; skip the comparison. Pairs with one
            // flagged tuple must still run: the flagged tuple may be the
            // only witness dominating the other (premature-deletion trap).
            if dominated[i] && dominated[j] {
                continue;
            }
            stats.dominance_tests += 1;
            match checker.compare(&rows[i], &rows[j]) {
                Dominance::Dominates => dominated[j] = true,
                Dominance::DominatedBy => dominated[i] = true,
                Dominance::Equal => {
                    if distinct && checker.identical_dims(&rows[i], &rows[j]) {
                        // Keep the first representative of identical tuples.
                        dominated[j] = true;
                    }
                }
                Dominance::Incomparable => {}
            }
        }
    }
    rows.into_iter()
        .zip(dominated)
        .filter_map(|(row, dom)| (!dom).then_some(row))
        .collect()
}

/// Compute the full incomplete skyline of a dataset standalone: partition
/// by null bitmap, local BNL per partition, then the flagged global phase.
/// This is the single-node reference composition of the distributed plan.
pub fn incomplete_skyline(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    let mut candidates = Vec::new();
    for (_, partition) in partition_by_null_bitmap(rows, checker.spec()) {
        candidates.extend(bnl_skyline(partition, checker, stats));
    }
    incomplete_global_skyline(candidates, checker, stats)
}

/// The **incorrect** global-skyline procedure of Gulzar et al. (paper
/// Appendix A), kept for demonstration and regression tests.
///
/// It visits the bitmap clusters in order; for the current point `p` it
/// scans all not-yet-deleted points of *subsequent* clusters, deleting any
/// `q` with `p ≺ q` immediately and flagging `p` when `q ≺ p`. Flagged
/// points are deleted at the end of their iteration. Under cyclic dominance
/// this deletes a tuple's only dominating witness before the witness is
/// used, so a dominated tuple can survive — Appendix A's counterexample
/// `a=(1,*,10), b=(3,2,*), c=(*,5,3)` returns `{c}` instead of `{}`.
pub fn premature_deletion_global_skyline(
    clusters: Vec<Vec<Row>>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    // alive[c][k] tracks whether point k of cluster c is still a candidate.
    let mut alive: Vec<Vec<bool>> = clusters.iter().map(|c| vec![true; c.len()]).collect();
    for ci in 0..clusters.len() {
        for pi in 0..clusters[ci].len() {
            if !alive[ci][pi] {
                continue;
            }
            let mut flagged = false;
            for cj in (ci + 1)..clusters.len() {
                for qj in 0..clusters[cj].len() {
                    if !alive[cj][qj] {
                        continue;
                    }
                    stats.dominance_tests += 1;
                    match checker.compare(&clusters[ci][pi], &clusters[cj][qj]) {
                        Dominance::Dominates => alive[cj][qj] = false,
                        Dominance::DominatedBy => flagged = true,
                        _ => {}
                    }
                }
            }
            if flagged {
                alive[ci][pi] = false;
            }
        }
    }
    clusters
        .into_iter()
        .zip(alive)
        .flat_map(|(cluster, flags)| {
            cluster
                .into_iter()
                .zip(flags)
                .filter_map(|(row, keep)| keep.then_some(row))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{SkylineDim, Value};

    fn row(vals: &[Option<i64>]) -> Row {
        Row::new(
            vals.iter()
                .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
                .collect(),
        )
    }

    fn spec3() -> SkylineSpec {
        SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::min(2),
        ])
    }

    /// The three cyclic tuples of §3 / Appendix A.
    fn cycle() -> (Row, Row, Row) {
        (
            row(&[Some(1), None, Some(10)]),
            row(&[Some(3), Some(2), None]),
            row(&[None, Some(5), Some(3)]),
        )
    }

    #[test]
    fn bitmaps() {
        let spec = spec3();
        assert_eq!(null_bitmap(&row(&[Some(1), None, Some(10)]), &spec), 0b010);
        assert_eq!(null_bitmap(&row(&[Some(3), Some(2), None]), &spec), 0b100);
        assert_eq!(null_bitmap(&row(&[None, Some(5), Some(3)]), &spec), 0b001);
        assert_eq!(null_bitmap(&row(&[Some(1), Some(2), Some(3)]), &spec), 0);
        assert_eq!(null_bitmap(&row(&[None, None, None]), &spec), 0b111);
    }

    #[test]
    fn bitmap_uses_dim_order_not_column_order() {
        // Dimensions can reference columns in any order; the bitmap is in
        // *dimension* order.
        let spec = SkylineSpec::new(vec![SkylineDim::min(2), SkylineDim::min(0)]);
        let r = row(&[None, Some(1), Some(2)]);
        assert_eq!(null_bitmap(&r, &spec), 0b10);
    }

    #[test]
    fn partitioning_groups_by_bitmap() {
        let spec = spec3();
        let (a, b, c) = cycle();
        let complete1 = row(&[Some(9), Some(9), Some(9)]);
        let complete2 = row(&[Some(8), Some(8), Some(8)]);
        let parts = partition_by_null_bitmap(vec![a, b, c, complete1, complete2], &spec);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[&0].len(), 2);
    }

    #[test]
    fn cyclic_dominance_yields_empty_skyline() {
        // Paper §3: a ≺ b, b ≺ c, c ≺ a — every tuple is dominated, the
        // skyline must be empty.
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        let mut stats = SkylineStats::default();
        let sky = incomplete_global_skyline(vec![a, b, c], &checker, &mut stats);
        assert!(sky.is_empty(), "cyclic dominance must empty the skyline");
    }

    #[test]
    fn appendix_a_counterexample_faulty_algorithm_returns_c() {
        // Reproduce Appendix A: the premature-deletion algorithm of [20]
        // wrongly returns {c} on the cycle while the correct result is {}.
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        let mut stats = SkylineStats::default();
        let wrong = premature_deletion_global_skyline(
            vec![vec![a], vec![b], vec![c.clone()]],
            &checker,
            &mut stats,
        );
        assert_eq!(wrong, vec![c], "the faulty algorithm keeps tuple c");
    }

    #[test]
    fn full_incomplete_pipeline_on_cycle_plus_survivor() {
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        // This tuple is dominated by nothing: 0 is minimal on dim 0 and 2,
        // and dim 1 is NULL, so only dims 0/2 can be compared.
        let survivor = row(&[Some(0), None, Some(0)]);
        let mut stats = SkylineStats::default();
        let sky = incomplete_skyline(vec![a, b, c, survivor.clone()], &checker, &mut stats);
        assert_eq!(sky, vec![survivor]);
    }

    #[test]
    fn incomplete_pipeline_equals_global_on_small_input() {
        // The partition+local phase must not change the result, only
        // shrink the candidate set.
        let checker = DominanceChecker::incomplete(spec3());
        let data = vec![
            row(&[Some(1), Some(2), Some(3)]),
            row(&[Some(1), Some(2), None]),
            row(&[Some(2), Some(2), Some(3)]),
            row(&[None, Some(1), Some(4)]),
            row(&[Some(1), None, Some(3)]),
        ];
        let mut s1 = SkylineStats::default();
        let with_partitioning = incomplete_skyline(data.clone(), &checker, &mut s1);
        let mut s2 = SkylineStats::default();
        let direct = incomplete_global_skyline(data, &checker, &mut s2);
        let key = |r: &Row| format!("{r}");
        let mut a: Vec<String> = with_partitioning.iter().map(key).collect();
        let mut b: Vec<String> = direct.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn global_distinct_dedups_identical_tuples() {
        let mut spec = spec3();
        spec.distinct = true;
        let checker = DominanceChecker::incomplete(spec);
        let r = row(&[Some(1), None, Some(1)]);
        let mut stats = SkylineStats::default();
        let sky =
            incomplete_global_skyline(vec![r.clone(), r.clone(), r.clone()], &checker, &mut stats);
        assert_eq!(sky.len(), 1);
    }

    #[test]
    fn complete_data_single_partition() {
        // On complete data the bitmap partitioner degenerates to a single
        // partition (the paper's worst case for the incomplete algorithm).
        let spec = spec3();
        let parts = partition_by_null_bitmap(
            vec![
                row(&[Some(1), Some(2), Some(3)]),
                row(&[Some(4), Some(5), Some(6)]),
            ],
            &spec,
        );
        assert_eq!(parts.len(), 1);
        assert!(parts.contains_key(&0));
    }

    #[test]
    fn stats_are_recorded() {
        let checker = DominanceChecker::incomplete(spec3());
        let (a, b, c) = cycle();
        let mut stats = SkylineStats::default();
        incomplete_global_skyline(vec![a, b, c], &checker, &mut stats);
        assert_eq!(stats.dominance_tests, 3); // all pairs of 3 tuples
        assert_eq!(stats.max_window, 3);
    }
}
