//! The Block-Nested-Loop (BNL) skyline algorithm (Börzsönyi, Kossmann,
//! Stocker 2001), as adapted by the paper for complete data (§5.6).
//!
//! The algorithm keeps a *window* holding the skyline of all tuples
//! processed so far. For each incoming tuple `t`:
//!
//! * if some window tuple dominates `t`, drop `t` — by transitivity `t`
//!   cannot dominate anything in the window, so no further checks are
//!   needed;
//! * every window tuple dominated by `t` is evicted, and `t` enters the
//!   window — by transitivity `t` cannot be dominated by the remaining
//!   window tuples;
//! * if `t` is incomparable with every window tuple, it enters the window.
//!
//! Correctness relies on transitivity of dominance and therefore on the
//! **complete-data** relation. The same routine also serves as the local
//! skyline inside one null-bitmap partition of incomplete data, where all
//! tuples share their NULL positions and the restricted relation is
//! transitive again (paper §5.7 / Lemma 5.1).

use sparkline_common::{DominanceKernel, QueryControl, Result, Row, CONTROL_CHECK_ROWS};

use crate::columnar::{ColumnarBlock, EncodedCandidate, MULTI_LANES};
use crate::dominance::{Dominance, DominanceChecker, SkylineStats};

/// Kernel knob equivalent of the legacy `vectorized` flag.
pub(crate) fn kernel_for(vectorized: bool) -> DominanceKernel {
    if vectorized {
        DominanceKernel::Auto
    } else {
        DominanceKernel::Scalar
    }
}

/// Compute the skyline of `rows` with the BNL window algorithm, recording
/// dominance-test counts into `stats`.
///
/// With `checker.distinct()` set, tuples whose *compared* dimensions are
/// all equal keep a single representative (the first one encountered),
/// implementing `SKYLINE OF DISTINCT`.
pub fn bnl_skyline(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    let mut window: Vec<Row> = Vec::new();
    bnl_skyline_into(rows, checker, stats, &mut window);
    window
}

/// Like [`bnl_skyline`] but feeding tuples into an existing window, which
/// allows the global phase to reuse the first local skyline as its initial
/// window without copying.
///
/// The caller must guarantee that `window` is itself a skyline (no tuple in
/// it dominates another); the empty window trivially qualifies.
pub fn bnl_skyline_into(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    window: &mut Vec<Row>,
) {
    let mut builder = BnlBuilder::with_seed(checker.clone(), false, std::mem::take(window));
    builder.push_batch(rows);
    let (merged, builder_stats) = builder.finish();
    stats.merge(&builder_stats);
    *window = merged;
}

/// Incremental Block-Nested-Loop skyline — the batch-feeding entry point
/// of the streaming operators.
///
/// The window *is* the running skyline, so a stream operator can push row
/// batches as they are pulled from upstream and drop them immediately:
/// peak memory is bounded by the skyline size plus one batch, never by
/// the input size. With `vectorized`, the window is mirrored into the
/// columnar kernel's [`ColumnarBlock`] (encode-once, evict-by-index) and
/// every pushed tuple is tested against the whole window in one chunked
/// pass; rows the kernel cannot represent take the scalar step, so the
/// result is always byte-identical to the scalar builder.
///
/// [`bnl_skyline_into`] / [`bnl_skyline_into_batched`] are one-shot
/// wrappers around this builder.
pub struct BnlBuilder {
    checker: DominanceChecker,
    window: Vec<Row>,
    /// `Some` on the vectorized path (even after a fallback demotion, so
    /// the per-tuple routing below stays cheap), `None` on the scalar one.
    block: Option<ColumnarBlock>,
    /// Whether the dominance relation in effect is transitive — the
    /// complete relation, or the incomplete relation on class-pure input
    /// (one null-bitmap class, Lemma 5.1). Gates the multi-candidate
    /// admission pre-pass in [`push_batch`](Self::push_batch).
    transitive: bool,
    cand: EncodedCandidate,
    out: Vec<Dominance>,
    stats: SkylineStats,
}

impl BnlBuilder {
    /// An empty builder ([`DominanceKernel::Auto`] when `vectorized`).
    pub fn new(checker: DominanceChecker, vectorized: bool) -> Self {
        Self::with_seed(checker, vectorized, Vec::new())
    }

    /// An empty builder on an explicit kernel knob.
    pub fn with_kernel(checker: DominanceChecker, kernel: DominanceKernel) -> Self {
        Self::with_seed_kernel(checker, kernel, Vec::new())
    }

    /// Seed the window with an existing skyline (the hierarchical merge's
    /// encode-once path). The caller must guarantee `window` is a skyline.
    pub fn with_seed(checker: DominanceChecker, vectorized: bool, window: Vec<Row>) -> Self {
        Self::with_seed_kernel(checker, kernel_for(vectorized), window)
    }

    /// [`with_seed`](Self::with_seed) on an explicit kernel knob.
    pub fn with_seed_kernel(
        checker: DominanceChecker,
        kernel: DominanceKernel,
        window: Vec<Row>,
    ) -> Self {
        let block = kernel.is_vectorized().then(|| {
            let mut block = ColumnarBlock::for_checker_with(&checker, kernel);
            for row in &window {
                block.push(row);
            }
            block
        });
        // A pre-seeded window is window occupancy even when every incoming
        // tuple is dominated; record it before the scan.
        let stats = SkylineStats {
            max_window: window.len(),
            ..SkylineStats::default()
        };
        let transitive = !checker.is_incomplete();
        BnlBuilder {
            checker,
            window,
            block,
            transitive,
            cand: EncodedCandidate::new(),
            out: Vec::new(),
            stats,
        }
    }

    /// Declare the input class-pure: every row pushed shares one null
    /// bitmap, so the restricted incomplete relation is transitive within
    /// it (paper Lemma 5.1) and the multi-candidate admission pre-pass is
    /// sound. Used by the per-class builders of
    /// [`GroupedBnlBuilder`](crate::incomplete::GroupedBnlBuilder).
    pub(crate) fn mark_class_pure(&mut self) {
        self.transitive = true;
    }

    /// Current window occupancy (== the running skyline size).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SkylineStats {
        &self.stats
    }

    /// Feed one batch of rows.
    ///
    /// Under a transitive relation with a live kernel block, incoming rows
    /// are admitted in groups of [`MULTI_LANES`]: one multi-candidate
    /// kernel pass tests the whole group against the current window
    /// snapshot and drops the strictly dominated rows before the
    /// sequential insert-eviction steps run for the survivors.
    pub fn push_batch(&mut self, rows: impl IntoIterator<Item = Row>) {
        if !self.transitive || self.block.is_none() {
            for row in rows {
                self.push(row);
            }
            return;
        }
        let mut rows = rows.into_iter();
        let mut group: Vec<Row> = Vec::with_capacity(MULTI_LANES);
        let mut encoded: Vec<EncodedCandidate> = Vec::new();
        let mut lanes: Vec<usize> = Vec::with_capacity(MULTI_LANES);
        let mut dominated: Vec<Option<usize>> = Vec::new();
        loop {
            group.clear();
            group.extend(rows.by_ref().take(MULTI_LANES));
            if group.is_empty() {
                return;
            }
            self.admit_group(&mut group, &mut encoded, &mut lanes, &mut dominated);
        }
    }

    /// [`push_batch`](Self::push_batch) under cooperative query control:
    /// the deadline/cancellation flag is consulted every
    /// [`CONTROL_CHECK_ROWS`] rows, bounding the staleness of a timeout
    /// or cancel to one chunk of admission work. The chunks feed the same
    /// multi-candidate pre-pass, so admitted rows are byte-identical to
    /// the unchecked path.
    ///
    /// [`CONTROL_CHECK_ROWS`]: sparkline_common::CONTROL_CHECK_ROWS
    pub fn push_batch_checked(
        &mut self,
        rows: impl IntoIterator<Item = Row>,
        control: &QueryControl,
    ) -> Result<()> {
        let mut rows = rows.into_iter().peekable();
        while rows.peek().is_some() {
            control.check()?;
            self.push_batch(rows.by_ref().take(CONTROL_CHECK_ROWS));
        }
        Ok(())
    }

    /// Multi-candidate admission of one group of at most [`MULTI_LANES`]
    /// rows (see [`push_batch`](Self::push_batch)).
    ///
    /// Soundness of pre-dropping (transitive relations only): a window
    /// snapshot row dominating candidate `c` is either still in the window
    /// at `c`'s sequential turn, or was evicted by a chain of dominating
    /// rows whose live end dominates `c` by transitivity — so `c` would be
    /// dropped at its turn anyway; and since the window is an antichain, a
    /// dominated `c` evicts nothing, so the other rows are unaffected.
    /// Only *strict* `DominatedBy` lanes are dropped (never `Equal`), so
    /// `SKYLINE OF DISTINCT` dedup still happens in the sequential steps.
    fn admit_group(
        &mut self,
        group: &mut Vec<Row>,
        encoded: &mut Vec<EncodedCandidate>,
        lanes: &mut Vec<usize>,
        dominated: &mut Vec<Option<usize>>,
    ) {
        debug_assert!(group.len() <= MULTI_LANES);
        let prepass = group.len() > 1
            && self
                .block
                .as_ref()
                .is_some_and(|b| !b.is_fallback() && !b.is_empty());
        if prepass {
            let mut pass: Option<(u64, bool)> = None;
            {
                let block = self.block.as_ref().expect("prepass checked the block");
                if encoded.len() < group.len() {
                    encoded.resize_with(group.len(), EncodedCandidate::new);
                }
                lanes.clear();
                let mut n = 0;
                for (i, row) in group.iter().enumerate() {
                    // Rows the kernel cannot represent skip the pre-pass
                    // and take their normal (scalar) sequential step.
                    if block.encode_into(row, &mut encoded[n]) {
                        lanes.push(i);
                        n += 1;
                    }
                }
                if n > 0 {
                    let res = block.first_dominators(&encoded[..n], dominated);
                    pass = Some((res.tested, block.is_simd()));
                }
            }
            if let Some((tested, simd)) = pass {
                self.stats.add_multi_pass(tested, simd);
                let mut keep = [true; MULTI_LANES];
                for (j, d) in dominated.iter().enumerate() {
                    if d.is_some() {
                        keep[lanes[j]] = false;
                    }
                }
                let mut i = 0;
                group.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
            }
        }
        for row in group.drain(..) {
            self.push(row);
        }
    }

    /// Feed one tuple through the BNL window step.
    pub fn push(&mut self, tuple: Row) {
        let Some(block) = self.block.as_mut() else {
            scalar_window_step(
                tuple,
                &self.checker,
                &mut self.stats,
                &mut self.window,
                None,
            );
            return;
        };
        if block.is_fallback() {
            // The block is dead for good; no point mirroring into it.
            scalar_window_step(
                tuple,
                &self.checker,
                &mut self.stats,
                &mut self.window,
                None,
            );
            return;
        }
        if !block.encode_into(&tuple, &mut self.cand) {
            // Only this tuple needs the scalar path; keep the block alive
            // and aligned for the following tuples.
            scalar_window_step(
                tuple,
                &self.checker,
                &mut self.stats,
                &mut self.window,
                Some(block),
            );
            return;
        }
        let distinct = self.checker.distinct();
        if self.checker.is_incomplete() {
            // The incomplete relation is not transitive: the scalar loop
            // may evict window rows *before* discovering the tuple is
            // dominated, so its behavior on mixed-bitmap input can only be
            // matched by replaying it verbatim. Compute all outcomes in
            // one batched pass (no early exit), then replay.
            let res = block.compare_batch(&self.cand, &mut self.out, false);
            self.stats.add_block_tests(res.tested, block.is_simd());
            let mut dominated = false;
            let mut i = 0;
            while i < self.out.len() {
                match self.out[i] {
                    Dominance::Dominates => {
                        self.window.remove(i);
                        block.remove(i);
                        self.out.remove(i);
                    }
                    Dominance::DominatedBy => {
                        dominated = true;
                        break;
                    }
                    Dominance::Equal => {
                        if distinct && self.checker.identical_dims(&tuple, &self.window[i]) {
                            dominated = true;
                            break;
                        }
                        i += 1;
                    }
                    Dominance::Incomparable => i += 1,
                }
            }
            if !dominated {
                block.push(&tuple);
                self.window.push(tuple);
                self.stats.max_window = self.stats.max_window.max(self.window.len());
            }
            return;
        }
        let res = block.compare_batch(&self.cand, &mut self.out, true);
        self.stats.add_block_tests(res.tested, block.is_simd());
        if res.dominated_at.is_some() {
            return;
        }
        // Complete-data relation from here on: dominance is transitive and
        // the window holds no mutually dominating rows, so a tuple that is
        // dominated (or DISTINCT-identical to a window tuple) dominates
        // nothing in the window — dropping it without evictions matches
        // the scalar loop exactly, which is what makes the chunked early
        // exit above sound.
        if distinct
            && self.out.iter().enumerate().any(|(i, &o)| {
                o == Dominance::Equal && self.checker.identical_dims(&tuple, &self.window[i])
            })
        {
            return;
        }
        // Evict every dominated window row in one order-preserving
        // compaction (identical survivors, same relative order as the
        // scalar loop's per-row `Vec::remove`, without shifting the tail
        // once per eviction). All verdicts are precomputed in `out`, so
        // no mid-scan state needs replaying here — unlike the incomplete
        // branch above.
        let out = &self.out;
        let mut i = 0;
        self.window.retain(|_| {
            let keep = out[i] != Dominance::Dominates;
            i += 1;
            keep
        });
        block.retain(|i| out[i] != Dominance::Dominates);
        block.push(&tuple);
        self.window.push(tuple);
        self.stats.max_window = self.stats.max_window.max(self.window.len());
    }

    /// The skyline window and the accumulated statistics.
    pub fn finish(self) -> (Vec<Row>, SkylineStats) {
        (self.window, self.stats)
    }
}

/// One scalar BNL window step: test `tuple` against the window, evict
/// dominated window tuples, insert `tuple` unless dominated (or, with
/// `DISTINCT`, identical to a window tuple). When a [`ColumnarBlock`]
/// mirror is supplied, its rows are kept index-aligned with the window.
fn scalar_window_step(
    tuple: Row,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    window: &mut Vec<Row>,
    mut block: Option<&mut ColumnarBlock>,
) {
    let distinct = checker.distinct();
    let mut dominated = false;
    let mut i = 0;
    while i < window.len() {
        stats.add_scalar();
        match checker.compare(&tuple, &window[i]) {
            Dominance::Dominates => {
                // The incoming tuple evicts a window tuple. Eviction is
                // order-preserving (`Vec::remove`): the final window is
                // then exactly the skyline members in arrival order, no
                // matter which dominated tuples transiently entered it —
                // the invariant that makes the flat and hierarchical
                // merges (and the pre-filtered plans) byte-identical.
                window.remove(i);
                if let Some(b) = block.as_deref_mut() {
                    b.remove(i);
                }
            }
            Dominance::DominatedBy => {
                dominated = true;
                break;
            }
            Dominance::Equal => {
                if distinct && checker.identical_dims(&tuple, &window[i]) {
                    // Same values in all skyline dimensions: keep the
                    // window's representative, drop the newcomer.
                    dominated = true;
                    break;
                }
                i += 1;
            }
            Dominance::Incomparable => i += 1,
        }
    }
    if !dominated {
        if let Some(b) = block {
            b.push(&tuple);
        }
        window.push(tuple);
        stats.max_window = stats.max_window.max(window.len());
    }
}

/// [`bnl_skyline`] with the candidate-vs-window tests routed through the
/// columnar batch kernel. Produces a byte-identical window (same rows,
/// same order) as the scalar variant. Test *counts* differ: the kernel's
/// early exit is chunk-granular (and the incomplete replay scans the whole
/// window), so `dominance_tests` can exceed the scalar loop's — each
/// performed test is just much cheaper. `batched_tests` / `scalar_tests`
/// record which checker answered them.
pub fn bnl_skyline_batched(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    let mut window: Vec<Row> = Vec::new();
    bnl_skyline_into_batched(rows, checker, stats, &mut window);
    window
}

/// [`bnl_skyline_into`] on the columnar batch kernel: the seeded window is
/// encoded into a [`ColumnarBlock`] once, every incoming tuple is tested
/// against the whole window in one chunked pass (early-exiting when a
/// dominator is found), and evictions keep the block index-aligned with
/// the row window. Rows the kernel cannot represent — see the fallback
/// rules in [`crate::columnar`] — take the scalar step instead, so the
/// result is always byte-identical to [`bnl_skyline_into`].
pub fn bnl_skyline_into_batched(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    window: &mut Vec<Row>,
) {
    let mut builder = BnlBuilder::with_seed(checker.clone(), true, std::mem::take(window));
    builder.push_batch(rows);
    let (merged, builder_stats) = builder.finish();
    stats.merge(&builder_stats);
    *window = merged;
}

/// [`bnl_skyline`] on an explicit kernel knob: `Scalar` matches
/// [`bnl_skyline`], everything else routes through the columnar kernel on
/// the knob's resolved compare tier. All knobs produce byte-identical
/// windows.
pub fn bnl_skyline_kernel(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    kernel: DominanceKernel,
) -> Vec<Row> {
    let mut window: Vec<Row> = Vec::new();
    bnl_skyline_into_kernel(rows, checker, stats, &mut window, kernel);
    window
}

/// [`bnl_skyline_into`] on an explicit kernel knob.
pub fn bnl_skyline_into_kernel(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    window: &mut Vec<Row>,
    kernel: DominanceKernel,
) {
    let mut builder = BnlBuilder::with_seed_kernel(checker.clone(), kernel, std::mem::take(window));
    builder.push_batch(rows);
    let (merged, builder_stats) = builder.finish();
    stats.merge(&builder_stats);
    *window = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{SkylineDim, SkylineSpec, Value};

    fn rows(data: &[(i64, i64)]) -> Vec<Row> {
        data.iter()
            .map(|&(a, b)| Row::new(vec![Value::Int64(a), Value::Int64(b)]))
            .collect()
    }

    fn min_min(distinct: bool) -> DominanceChecker {
        let dims = vec![SkylineDim::min(0), SkylineDim::min(1)];
        DominanceChecker::complete(if distinct {
            SkylineSpec::distinct(dims)
        } else {
            SkylineSpec::new(dims)
        })
    }

    fn as_pairs(mut rows: Vec<Row>) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = rows
            .drain(..)
            .map(|r| {
                let a = match r.get(0) {
                    Value::Int64(v) => *v,
                    other => panic!("unexpected {other:?}"),
                };
                let b = match r.get(1) {
                    Value::Int64(v) => *v,
                    other => panic!("unexpected {other:?}"),
                };
                (a, b)
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn hotel_example_shape() {
        // Classic price/rating trade-off; skyline = the Pareto staircase.
        let mut stats = SkylineStats::default();
        let input = rows(&[(1, 9), (2, 7), (3, 8), (4, 4), (5, 5), (6, 1), (7, 2)]);
        let sky = bnl_skyline(input, &min_min(false), &mut stats);
        assert_eq!(as_pairs(sky), vec![(1, 9), (2, 7), (4, 4), (6, 1)]);
        assert!(stats.dominance_tests > 0);
        assert!(stats.max_window >= 4);
    }

    #[test]
    fn single_tuple() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows(&[(5, 5)]), &min_min(false), &mut stats);
        assert_eq!(sky.len(), 1);
        assert_eq!(stats.dominance_tests, 0);
    }

    #[test]
    fn empty_input() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows(&[]), &min_min(false), &mut stats);
        assert!(sky.is_empty());
    }

    #[test]
    fn all_dominated_by_one() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(
            rows(&[(5, 5), (4, 4), (3, 3), (0, 0), (2, 2)]),
            &min_min(false),
            &mut stats,
        );
        assert_eq!(as_pairs(sky), vec![(0, 0)]);
    }

    #[test]
    fn duplicates_kept_without_distinct() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows(&[(1, 1), (1, 1), (1, 1)]), &min_min(false), &mut stats);
        assert_eq!(sky.len(), 3);
    }

    #[test]
    fn duplicates_collapsed_with_distinct() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows(&[(1, 1), (1, 1), (1, 1)]), &min_min(true), &mut stats);
        assert_eq!(sky.len(), 1);
    }

    #[test]
    fn distinct_keeps_non_dim_payload_of_first() {
        // Two tuples identical on skyline dims but different elsewhere:
        // DISTINCT keeps exactly one (the first).
        let spec = SkylineSpec::distinct(vec![SkylineDim::min(0)]);
        let checker = DominanceChecker::complete(spec);
        let r1 = Row::new(vec![Value::Int64(1), Value::str("first")]);
        let r2 = Row::new(vec![Value::Int64(1), Value::str("second")]);
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(vec![r1.clone(), r2], &checker, &mut stats);
        assert_eq!(sky, vec![r1]);
    }

    #[test]
    fn eviction_of_multiple_window_tuples() {
        // (9,9) arrives after several incomparable tuples it dominates none
        // of; (0,0) then evicts everything.
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(
            rows(&[(1, 8), (8, 1), (5, 5), (0, 0)]),
            &min_min(false),
            &mut stats,
        );
        assert_eq!(as_pairs(sky), vec![(0, 0)]);
    }

    #[test]
    fn bnl_into_seeds_window() {
        let checker = min_min(false);
        let mut stats = SkylineStats::default();
        let mut window = bnl_skyline(rows(&[(1, 9), (9, 1)]), &checker, &mut stats);
        bnl_skyline_into(rows(&[(0, 0)]), &checker, &mut stats, &mut window);
        assert_eq!(as_pairs(window), vec![(0, 0)]);
    }

    #[test]
    fn seeded_window_counts_toward_max_window() {
        let checker = min_min(false);
        let mut stats = SkylineStats::default();
        let mut window = bnl_skyline(rows(&[(1, 9), (9, 1), (5, 5)]), &checker, &mut stats);
        assert_eq!(window.len(), 3);
        // Every incoming tuple is dominated, so the window never grows —
        // the pre-seeded occupancy must still be reported.
        let mut stats2 = SkylineStats::default();
        bnl_skyline_into(rows(&[(2, 9), (9, 2)]), &checker, &mut stats2, &mut window);
        assert_eq!(stats2.max_window, 3);
        let mut stats3 = SkylineStats::default();
        bnl_skyline_into_batched(rows(&[(3, 9), (9, 3)]), &checker, &mut stats3, &mut window);
        assert_eq!(stats3.max_window, 3);
    }

    #[test]
    fn batched_is_byte_identical_to_scalar() {
        // Mixed workload with evictions, duplicates, and incomparables;
        // result vectors must match row-for-row (same order), not just as
        // sets.
        let data: Vec<(i64, i64)> = (0..120).map(|i| ((i * 37) % 50, (i * 53) % 50)).collect();
        for distinct in [false, true] {
            let checker = min_min(distinct);
            let mut s1 = SkylineStats::default();
            let scalar = bnl_skyline(rows(&data), &checker, &mut s1);
            let mut s2 = SkylineStats::default();
            let batched = bnl_skyline_batched(rows(&data), &checker, &mut s2);
            assert_eq!(scalar, batched, "distinct={distinct}");
            assert!(s2.batched_tests > 0);
            assert_eq!(s2.scalar_tests, 0);
            assert_eq!(s2.dominance_tests, s2.batched_tests);
        }
    }

    #[test]
    fn batched_falls_back_on_non_numeric_dims() {
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let checker = DominanceChecker::complete(spec);
        let data: Vec<Row> = (0..20)
            .map(|i: i64| Row::new(vec![Value::str(format!("s{:02}", i % 7)), Value::Int64(i)]))
            .collect();
        let mut s1 = SkylineStats::default();
        let scalar = bnl_skyline(data.clone(), &checker, &mut s1);
        let mut s2 = SkylineStats::default();
        let batched = bnl_skyline_batched(data, &checker, &mut s2);
        assert_eq!(scalar, batched);
        assert_eq!(s2.batched_tests, 0, "strings must demote to scalar");
        assert_eq!(s2.scalar_tests, s2.dominance_tests);
        assert!(s2.scalar_tests > 0);
    }

    #[test]
    fn batched_seeded_window_merge_matches_scalar() {
        let checker = min_min(false);
        let mut stats = SkylineStats::default();
        let seed_rows = rows(&[(1, 9), (9, 1), (4, 4)]);
        let incoming = rows(&[(0, 10), (3, 3), (10, 0), (5, 5)]);
        let mut w_scalar = bnl_skyline(seed_rows.clone(), &checker, &mut stats);
        let mut w_batched = w_scalar.clone();
        bnl_skyline_into(incoming.clone(), &checker, &mut stats, &mut w_scalar);
        bnl_skyline_into_batched(incoming, &checker, &mut stats, &mut w_batched);
        assert_eq!(w_scalar, w_batched);
    }

    #[test]
    fn incremental_builder_matches_one_shot_across_batch_splits() {
        let data: Vec<(i64, i64)> = (0..150).map(|i| ((i * 37) % 60, (i * 53) % 60)).collect();
        for vectorized in [false, true] {
            for distinct in [false, true] {
                let checker = min_min(distinct);
                let mut stats = SkylineStats::default();
                let one_shot = if vectorized {
                    bnl_skyline_batched(rows(&data), &checker, &mut stats)
                } else {
                    bnl_skyline(rows(&data), &checker, &mut stats)
                };
                // Feed the same rows in ragged batches.
                let mut builder = BnlBuilder::new(checker.clone(), vectorized);
                for chunk in rows(&data).chunks(7) {
                    builder.push_batch(chunk.to_vec());
                }
                let (incremental, inc_stats) = builder.finish();
                assert_eq!(one_shot, incremental, "v={vectorized} d={distinct}");
                // The multi-candidate admission pre-pass makes vectorized
                // test *counts* batch-boundary-dependent (group sizes
                // differ between one big batch and chunks of 7); only the
                // scalar path counts identically. The window itself — and
                // its peak size — never depends on batch splits.
                if !vectorized {
                    assert_eq!(stats.dominance_tests, inc_stats.dominance_tests);
                }
                assert_eq!(stats.max_window, inc_stats.max_window);
            }
        }
    }

    #[test]
    fn kernel_knobs_are_byte_identical() {
        let data: Vec<(i64, i64)> = (0..200).map(|i| ((i * 37) % 70, (i * 53) % 70)).collect();
        for distinct in [false, true] {
            let checker = min_min(distinct);
            let mut s_ref = SkylineStats::default();
            let reference = bnl_skyline(rows(&data), &checker, &mut s_ref);
            for kernel in [
                DominanceKernel::Scalar,
                DominanceKernel::Chunked,
                DominanceKernel::Simd,
                DominanceKernel::Auto,
            ] {
                let mut s = SkylineStats::default();
                let sky = bnl_skyline_kernel(rows(&data), &checker, &mut s, kernel);
                assert_eq!(reference, sky, "kernel={kernel:?} distinct={distinct}");
                if kernel == DominanceKernel::Scalar {
                    assert_eq!(s.batched_tests, 0);
                    assert_eq!(s.simd_tests, 0);
                    assert_eq!(s.multi_candidate_passes, 0);
                } else {
                    assert!(s.batched_tests > 0);
                    assert_eq!(s.scalar_tests, 0);
                    assert!(s.multi_candidate_passes > 0, "kernel={kernel:?}");
                    if kernel == DominanceKernel::Chunked {
                        assert_eq!(s.simd_tests, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn prepass_batched_matches_scalar_with_nulls_and_floats() {
        // NULL rows (all-incomparable lanes) and float columns through the
        // grouped admission pre-pass.
        let checker = min_min(false);
        let data: Vec<Row> = (0..90)
            .map(|i: i64| {
                let v0 = if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Float64(((i * 37) % 50) as f64 / 2.0)
                };
                Row::new(vec![v0, Value::Float64(((i * 53) % 50) as f64)])
            })
            .collect();
        let mut s1 = SkylineStats::default();
        let scalar = bnl_skyline(data.clone(), &checker, &mut s1);
        let mut s2 = SkylineStats::default();
        let batched = bnl_skyline_batched(data, &checker, &mut s2);
        assert_eq!(scalar, batched);
        assert!(s2.multi_candidate_passes > 0);
    }

    #[test]
    fn builder_window_len_tracks_running_skyline() {
        let checker = min_min(false);
        let mut b = BnlBuilder::new(checker, true);
        b.push_batch(rows(&[(1, 9), (9, 1)]));
        assert_eq!(b.window_len(), 2);
        b.push_batch(rows(&[(0, 0)]));
        assert_eq!(b.window_len(), 1, "dominator evicts the whole window");
        assert!(b.stats().dominance_tests > 0);
    }

    #[test]
    fn checked_push_matches_unchecked_and_observes_cancel() {
        let data: Vec<(i64, i64)> = (0..3000).map(|i| (i % 57, (i * 31) % 53)).collect();
        let mut plain = BnlBuilder::new(min_min(true), true);
        plain.push_batch(rows(&data));
        let mut checked = BnlBuilder::new(min_min(true), true);
        checked
            .push_batch_checked(rows(&data), &QueryControl::unlimited())
            .unwrap();
        assert_eq!(
            as_pairs(plain.finish().0),
            as_pairs(checked.finish().0),
            "control checks must not change admission"
        );

        let control = QueryControl::unlimited();
        control.cancel();
        let mut cancelled = BnlBuilder::new(min_min(true), true);
        let err = cancelled
            .push_batch_checked(rows(&data), &control)
            .unwrap_err();
        assert!(err.is_cancelled());
        assert_eq!(cancelled.window_len(), 0, "cancel fires before any chunk");
    }

    #[test]
    fn order_independence() {
        let checker = min_min(false);
        let data = [(3, 1), (1, 3), (2, 2), (4, 4), (0, 5), (5, 0)];
        let mut s1 = SkylineStats::default();
        let forward = bnl_skyline(rows(&data), &checker, &mut s1);
        let mut reversed = data;
        reversed.reverse();
        let mut s2 = SkylineStats::default();
        let backward = bnl_skyline(rows(&reversed), &checker, &mut s2);
        assert_eq!(as_pairs(forward), as_pairs(backward));
    }
}
