//! The Block-Nested-Loop (BNL) skyline algorithm (Börzsönyi, Kossmann,
//! Stocker 2001), as adapted by the paper for complete data (§5.6).
//!
//! The algorithm keeps a *window* holding the skyline of all tuples
//! processed so far. For each incoming tuple `t`:
//!
//! * if some window tuple dominates `t`, drop `t` — by transitivity `t`
//!   cannot dominate anything in the window, so no further checks are
//!   needed;
//! * every window tuple dominated by `t` is evicted, and `t` enters the
//!   window — by transitivity `t` cannot be dominated by the remaining
//!   window tuples;
//! * if `t` is incomparable with every window tuple, it enters the window.
//!
//! Correctness relies on transitivity of dominance and therefore on the
//! **complete-data** relation. The same routine also serves as the local
//! skyline inside one null-bitmap partition of incomplete data, where all
//! tuples share their NULL positions and the restricted relation is
//! transitive again (paper §5.7 / Lemma 5.1).

use sparkline_common::Row;

use crate::dominance::{Dominance, DominanceChecker, SkylineStats};

/// Compute the skyline of `rows` with the BNL window algorithm, recording
/// dominance-test counts into `stats`.
///
/// With `checker.distinct()` set, tuples whose *compared* dimensions are
/// all equal keep a single representative (the first one encountered),
/// implementing `SKYLINE OF DISTINCT`.
pub fn bnl_skyline(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
) -> Vec<Row> {
    let mut window: Vec<Row> = Vec::new();
    bnl_skyline_into(rows, checker, stats, &mut window);
    window
}

/// Like [`bnl_skyline`] but feeding tuples into an existing window, which
/// allows the global phase to reuse the first local skyline as its initial
/// window without copying.
///
/// The caller must guarantee that `window` is itself a skyline (no tuple in
/// it dominates another); the empty window trivially qualifies.
pub fn bnl_skyline_into(
    rows: impl IntoIterator<Item = Row>,
    checker: &DominanceChecker,
    stats: &mut SkylineStats,
    window: &mut Vec<Row>,
) {
    let distinct = checker.distinct();
    for tuple in rows {
        let mut dominated = false;
        let mut i = 0;
        while i < window.len() {
            stats.dominance_tests += 1;
            match checker.compare(&tuple, &window[i]) {
                Dominance::Dominates => {
                    // The incoming tuple evicts a window tuple; order of
                    // the window is irrelevant, so swap_remove is fine.
                    window.swap_remove(i);
                }
                Dominance::DominatedBy => {
                    dominated = true;
                    break;
                }
                Dominance::Equal => {
                    if distinct && checker.identical_dims(&tuple, &window[i]) {
                        // Same values in all skyline dimensions: keep the
                        // window's representative, drop the newcomer.
                        dominated = true;
                        break;
                    }
                    i += 1;
                }
                Dominance::Incomparable => i += 1,
            }
        }
        if !dominated {
            window.push(tuple);
            stats.max_window = stats.max_window.max(window.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{SkylineDim, SkylineSpec, Value};

    fn rows(data: &[(i64, i64)]) -> Vec<Row> {
        data.iter()
            .map(|&(a, b)| Row::new(vec![Value::Int64(a), Value::Int64(b)]))
            .collect()
    }

    fn min_min(distinct: bool) -> DominanceChecker {
        let dims = vec![SkylineDim::min(0), SkylineDim::min(1)];
        DominanceChecker::complete(if distinct {
            SkylineSpec::distinct(dims)
        } else {
            SkylineSpec::new(dims)
        })
    }

    fn as_pairs(mut rows: Vec<Row>) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = rows
            .drain(..)
            .map(|r| {
                let a = match r.get(0) {
                    Value::Int64(v) => *v,
                    other => panic!("unexpected {other:?}"),
                };
                let b = match r.get(1) {
                    Value::Int64(v) => *v,
                    other => panic!("unexpected {other:?}"),
                };
                (a, b)
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn hotel_example_shape() {
        // Classic price/rating trade-off; skyline = the Pareto staircase.
        let mut stats = SkylineStats::default();
        let input = rows(&[(1, 9), (2, 7), (3, 8), (4, 4), (5, 5), (6, 1), (7, 2)]);
        let sky = bnl_skyline(input, &min_min(false), &mut stats);
        assert_eq!(as_pairs(sky), vec![(1, 9), (2, 7), (4, 4), (6, 1)]);
        assert!(stats.dominance_tests > 0);
        assert!(stats.max_window >= 4);
    }

    #[test]
    fn single_tuple() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows(&[(5, 5)]), &min_min(false), &mut stats);
        assert_eq!(sky.len(), 1);
        assert_eq!(stats.dominance_tests, 0);
    }

    #[test]
    fn empty_input() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows(&[]), &min_min(false), &mut stats);
        assert!(sky.is_empty());
    }

    #[test]
    fn all_dominated_by_one() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(
            rows(&[(5, 5), (4, 4), (3, 3), (0, 0), (2, 2)]),
            &min_min(false),
            &mut stats,
        );
        assert_eq!(as_pairs(sky), vec![(0, 0)]);
    }

    #[test]
    fn duplicates_kept_without_distinct() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows(&[(1, 1), (1, 1), (1, 1)]), &min_min(false), &mut stats);
        assert_eq!(sky.len(), 3);
    }

    #[test]
    fn duplicates_collapsed_with_distinct() {
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(rows(&[(1, 1), (1, 1), (1, 1)]), &min_min(true), &mut stats);
        assert_eq!(sky.len(), 1);
    }

    #[test]
    fn distinct_keeps_non_dim_payload_of_first() {
        // Two tuples identical on skyline dims but different elsewhere:
        // DISTINCT keeps exactly one (the first).
        let spec = SkylineSpec::distinct(vec![SkylineDim::min(0)]);
        let checker = DominanceChecker::complete(spec);
        let r1 = Row::new(vec![Value::Int64(1), Value::str("first")]);
        let r2 = Row::new(vec![Value::Int64(1), Value::str("second")]);
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(vec![r1.clone(), r2], &checker, &mut stats);
        assert_eq!(sky, vec![r1]);
    }

    #[test]
    fn eviction_of_multiple_window_tuples() {
        // (9,9) arrives after several incomparable tuples it dominates none
        // of; (0,0) then evicts everything.
        let mut stats = SkylineStats::default();
        let sky = bnl_skyline(
            rows(&[(1, 8), (8, 1), (5, 5), (0, 0)]),
            &min_min(false),
            &mut stats,
        );
        assert_eq!(as_pairs(sky), vec![(0, 0)]);
    }

    #[test]
    fn bnl_into_seeds_window() {
        let checker = min_min(false);
        let mut stats = SkylineStats::default();
        let mut window = bnl_skyline(rows(&[(1, 9), (9, 1)]), &checker, &mut stats);
        bnl_skyline_into(rows(&[(0, 0)]), &checker, &mut stats, &mut window);
        assert_eq!(as_pairs(window), vec![(0, 0)]);
    }

    #[test]
    fn order_independence() {
        let checker = min_min(false);
        let data = [(3, 1), (1, 3), (2, 2), (4, 4), (0, 5), (5, 0)];
        let mut s1 = SkylineStats::default();
        let forward = bnl_skyline(rows(&data), &checker, &mut s1);
        let mut reversed = data;
        reversed.reverse();
        let mut s2 = SkylineStats::default();
        let backward = bnl_skyline(rows(&reversed), &checker, &mut s2);
        assert_eq!(as_pairs(forward), as_pairs(backward));
    }
}
