//! Columnar (struct-of-arrays) dominance kernel.
//!
//! The paper treats the number of dominance tests as the main cost factor
//! of skyline computation (§2), but the *per-test constant* matters just as
//! much once the test count is fixed: the scalar [`DominanceChecker`] walks
//! a `Vec<Value>` enum per row, re-matching on type tags and re-resolving
//! `dim.index` for every pair. This module batches that work: the skyline
//! dimensions of a row window are transposed into contiguous,
//! sign-normalized column buffers once, and a candidate tuple is then
//! tested against the *entire* window in a tight per-dimension loop over
//! flat `i64`/`f64` slices (64-row chunks with early exit, amenable to
//! auto-vectorization).
//!
//! # Block layout and encode rules
//!
//! A [`ColumnarBlock`] holds one column per skyline dimension plus one
//! `any_null` bit per row:
//!
//! * **Sign normalization** — `MIN` dimensions are stored as-is, `MAX`
//!   dimensions are stored negated, so the kernel only ever asks "is
//!   smaller better"; the MIN/MAX branch disappears from the inner loop.
//!   (`i64::MIN` cannot be negated; a row carrying it in a `MAX` dimension
//!   demotes the block to scalar fallback.)
//! * **Column classes** — a column materializes as `i64` (all `Int64`, or
//!   all `Boolean` encoded 0/1), or `f64` (all `Float64`, or a mix of
//!   `Float64` and `Int64` where every integer round-trips through `f64`
//!   exactly — otherwise the lossless integer comparison of
//!   `Value::sql_compare` could not be reproduced and the block falls back
//!   to scalar). `Utf8` values and class mixes whose scalar comparison is
//!   not a plain numeric ordering (e.g. `Boolean` vs `Int64`) mark the
//!   block scalar-fallback.
//! * **Null mask semantics** — under the complete-data relation a NULL (or
//!   NaN, which compares like NULL under `sql_compare`) in *any* dimension
//!   of *either* tuple makes the pair incomparable, so the block only
//!   tracks one `any_null` bit per row and the kernel forces
//!   [`Dominance::Incomparable`] wherever the candidate's or the row's bit
//!   is set. Under the incomplete relation a NULL restricts the comparison
//!   to the shared non-NULL dimensions instead; the kernel supports the
//!   case that arises in practice — the local phase runs per null-bitmap
//!   class, where a dimension is NULL either in *every* row (the column
//!   stays unmaterialized and is skipped) or in *none* — and demotes mixed
//!   columns to scalar fallback.
//! * **`DIFF` dimensions** mark the block scalar-fallback: dominance then
//!   additionally requires equality on those dimensions, which the ranked
//!   kernel does not model.
//!
//! Fallback is never an error: callers keep the row window authoritative
//! and simply route comparisons through the scalar checker when
//! [`ColumnarBlock::is_fallback`] reports `true` (whole-block) or
//! [`ColumnarBlock::encode`] returns `None` (single candidate). The
//! batched and scalar paths produce byte-identical *skylines*; the test
//! counters differ — the chunked early exit makes the kernel perform more
//! (much cheaper) tests than the scalar loop's per-pair exit, which
//! `batched_tests` / `scalar_tests` make visible per path.
//!
//! Follow-up (see ROADMAP): the chunked masks are written so the compiler
//! can auto-vectorize the per-dimension loops; explicit SIMD intrinsics and
//! a widened (multi-candidate) kernel are the next step.

use sparkline_common::{Row, SkylineSpec, SkylineType, Value};

use crate::dominance::{Dominance, DominanceChecker};

/// Maximum rows per kernel chunk: outcomes are derived from `u64` bit
/// masks, and a chunk is also the early-exit granularity when a dominator
/// is found.
pub const CHUNK: usize = 64;

/// First chunk size of a candidate scan. BNL windows keep their most
/// dominant tuples near the front, so most dominated candidates die within
/// a few comparisons; starting small (then doubling up to [`CHUNK`]) keeps
/// the early exit nearly as fine-grained as the scalar loop's while large
/// windows still run full-width chunks.
const FIRST_CHUNK: usize = 4;

/// One encoded skyline dimension of a candidate tuple, matched against the
/// corresponding block column's class.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CandDim {
    /// Dimension contributes nothing for any row (unmaterialized column, or
    /// a NULL-like value under the incomplete relation).
    Skip,
    /// Sign-normalized integer compared against an `i64` column.
    Int(i64),
    /// Sign-normalized float compared against an `f64` column.
    Float(f64),
}

/// A candidate tuple's skyline dimensions, encoded once and then compared
/// against every row of the block.
#[derive(Debug, Clone)]
pub struct EncodedCandidate {
    dims: Vec<CandDim>,
    /// Complete relation only: the candidate has a NULL-like value (NULL,
    /// NaN, or a class mismatch) in some dimension, so it is incomparable
    /// with every row regardless of the buffers.
    all_incomparable: bool,
}

impl EncodedCandidate {
    /// Empty buffer for [`ColumnarBlock::encode_into`] reuse.
    pub fn new() -> Self {
        EncodedCandidate {
            dims: Vec::new(),
            all_incomparable: false,
        }
    }
}

impl Default for EncodedCandidate {
    fn default() -> Self {
        EncodedCandidate::new()
    }
}

/// Result of one candidate-vs-block kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchResult {
    /// Pairwise dominance tests performed (chunk-granular under early
    /// exit).
    pub tested: u64,
    /// Index of the first row that dominates the candidate, when the call
    /// asked to stop there.
    pub dominated_at: Option<usize>,
}

/// Storage of one dimension column.
#[derive(Debug, Clone)]
enum ColumnData {
    /// No non-NULL value seen yet; rows are tracked only through the null
    /// machinery until a value fixes the class.
    Pending,
    /// All-`Int64` (or all-`Boolean`, encoded 0/1) column.
    Ints(Vec<i64>),
    /// `Float64` column, possibly holding exactly-converted integers.
    Floats(Vec<f64>),
    /// All-`Boolean` column, encoded 0/1. Kept distinct from [`Ints`]
    /// because `Boolean` and `Int64` are *not* comparable under
    /// `sql_compare`.
    Bools(Vec<i64>),
}

#[derive(Debug, Clone)]
struct Column {
    /// Column position in the input rows.
    index: usize,
    /// Sign normalization: negate values of `MAX` dimensions on encode.
    negate: bool,
    /// NULL (or NaN) seen in this column.
    saw_null: bool,
    data: ColumnData,
}

impl Column {
    fn fold_i64(&self, v: i64) -> Option<i64> {
        fold_i64(v, self.negate)
    }

    fn fold_f64(&self, v: f64) -> f64 {
        fold_f64(v, self.negate)
    }
}

fn fold_i64(v: i64, negate: bool) -> Option<i64> {
    if negate {
        v.checked_neg()
    } else {
        Some(v)
    }
}

fn fold_f64(v: f64, negate: bool) -> f64 {
    if negate {
        -v
    } else {
        v
    }
}

/// Whether an `i64` survives the round trip through `f64` unchanged, i.e.
/// comparisons performed in the `f64` domain are exact for it.
///
/// `i64::MAX` must be rejected explicitly: `i64::MAX as f64` rounds *up*
/// to 2^63 and the saturating `f64 -> i64` cast folds that back to
/// `i64::MAX`, so the round-trip alone would falsely report exactness.
fn int_is_f64_exact(v: i64) -> bool {
    v != i64::MAX && (v as f64) as i64 == v
}

/// A float that behaves like NULL under `sql_compare` (NaN compares `None`
/// against every value, including itself).
fn is_null_like(v: &Value) -> bool {
    match v {
        Value::Null => true,
        Value::Float64(f) => f.is_nan(),
        _ => false,
    }
}

/// Struct-of-arrays window of the skyline dimensions of a row batch.
///
/// The block mirrors a caller-owned `Vec<Row>` window: encode rows once
/// with [`push`](Self::push), keep evictions in sync with
/// [`remove`](Self::remove), and test a candidate against all
/// rows with [`compare_batch`](Self::compare_batch). See the module docs
/// for the encode rules and the fallback contract.
#[derive(Debug, Clone)]
pub struct ColumnarBlock {
    cols: Vec<Column>,
    /// Complete relation: per-row "has a NULL-like value in some skyline
    /// dimension" bit (forces `Incomparable` against everything).
    any_null: Vec<bool>,
    incomplete: bool,
    len: usize,
    fallback: Option<&'static str>,
}

impl ColumnarBlock {
    /// Empty block for `spec` under the chosen dominance relation.
    ///
    /// A spec with `DIFF` dimensions (or no dimensions) starts in scalar
    /// fallback; pushes and encodes are then inert and the caller must use
    /// the scalar checker.
    pub fn new(spec: &SkylineSpec, incomplete: bool) -> Self {
        let fallback = if spec.dims.is_empty() {
            Some("no skyline dimensions")
        } else if spec.diff_dims().count() > 0 {
            Some("DIFF dimensions require equality tests")
        } else {
            None
        };
        ColumnarBlock {
            cols: spec
                .dims
                .iter()
                .map(|d| Column {
                    index: d.index,
                    negate: d.ty == SkylineType::Max,
                    saw_null: false,
                    data: ColumnData::Pending,
                })
                .collect(),
            any_null: Vec::new(),
            incomplete,
            len: 0,
            fallback,
        }
    }

    /// Block matching a checker's spec and relation.
    pub fn for_checker(checker: &DominanceChecker) -> Self {
        ColumnarBlock::new(checker.spec(), checker.is_incomplete())
    }

    /// Number of encoded rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the block has been demoted to scalar fallback.
    pub fn is_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// Why the block fell back to scalar comparisons, if it did.
    pub fn fallback_reason(&self) -> Option<&'static str> {
        self.fallback
    }

    fn demote(&mut self, reason: &'static str) {
        self.fallback = Some(reason);
    }

    /// Append a row's skyline dimensions to the column buffers.
    ///
    /// May demote the block to scalar fallback (non-numeric value, class
    /// mix, inexact int↔float conversion, `i64::MIN` under `MAX`, or a
    /// partially-NULL column under the incomplete relation); the push is
    /// then abandoned and the block must no longer be consulted.
    pub fn push(&mut self, row: &Row) {
        if self.is_fallback() {
            return;
        }
        let mut row_null = false;
        for c in 0..self.cols.len() {
            let value = row.get(self.cols[c].index).clone();
            if let Err(reason) = self.push_value(c, &value) {
                self.demote(reason);
                return;
            }
            if is_null_like(&value) {
                row_null = true;
            }
        }
        self.any_null.push(row_null);
        self.len += 1;
    }

    fn push_value(&mut self, c: usize, value: &Value) -> Result<(), &'static str> {
        let len = self.len;
        let incomplete = self.incomplete;
        let col = &mut self.cols[c];
        let negate = col.negate;
        if is_null_like(value) {
            // Incomplete relation: a column mixing NULL and non-NULL rows
            // would need per-dimension restriction; demote. (All-NULL
            // columns stay `Pending` and are simply skipped.)
            if incomplete && !matches!(col.data, ColumnData::Pending) {
                return Err("NULL mixed into a materialized column (incomplete relation)");
            }
            col.saw_null = true;
            // Complete relation: keep indices aligned with a placeholder;
            // the row's `any_null` bit makes every comparison against it
            // incomparable before the buffers are consulted.
            match &mut col.data {
                ColumnData::Pending => {}
                ColumnData::Ints(b) | ColumnData::Bools(b) => b.push(0),
                ColumnData::Floats(b) => b.push(0.0),
            }
            return Ok(());
        }
        if incomplete && col.saw_null {
            return Err("non-NULL mixed into a NULL column (incomplete relation)");
        }
        match (value, &mut col.data) {
            (Value::Boolean(v), ColumnData::Bools(b)) => {
                let folded = fold_i64(i64::from(*v), negate).expect("0/1 negation is safe");
                b.push(folded);
                Ok(())
            }
            (Value::Boolean(v), ColumnData::Pending) => {
                let folded = fold_i64(i64::from(*v), negate).expect("0/1 negation is safe");
                let mut b = vec![0i64; len];
                b.push(folded);
                col.data = ColumnData::Bools(b);
                Ok(())
            }
            (Value::Int64(v), ColumnData::Ints(b)) => {
                let folded = fold_i64(*v, negate).ok_or("i64::MIN under a MAX dimension")?;
                b.push(folded);
                Ok(())
            }
            (Value::Int64(v), ColumnData::Pending) => {
                let folded = fold_i64(*v, negate).ok_or("i64::MIN under a MAX dimension")?;
                let mut b = vec![0i64; len];
                b.push(folded);
                col.data = ColumnData::Ints(b);
                Ok(())
            }
            (Value::Int64(v), ColumnData::Floats(b)) => {
                if !int_is_f64_exact(*v) {
                    return Err("integer not exactly representable as f64");
                }
                b.push(fold_f64(*v as f64, negate));
                Ok(())
            }
            (Value::Float64(v), ColumnData::Floats(b)) => {
                b.push(fold_f64(*v, negate));
                Ok(())
            }
            (Value::Float64(v), ColumnData::Pending) => {
                let mut b = vec![0.0f64; len];
                b.push(fold_f64(*v, negate));
                col.data = ColumnData::Floats(b);
                Ok(())
            }
            (Value::Float64(v), ColumnData::Ints(ints)) => {
                // Upgrade the integer column to floats; every stored value
                // must convert exactly or lossless comparison is lost.
                if ints.iter().any(|&i| !int_is_f64_exact(i)) {
                    return Err("integer column not exactly convertible to f64");
                }
                let mut b: Vec<f64> = ints.iter().map(|&i| i as f64).collect();
                b.push(fold_f64(*v, negate));
                col.data = ColumnData::Floats(b);
                Ok(())
            }
            (Value::Utf8(_), _) => Err("non-numeric skyline dimension"),
            (Value::Boolean(_), _) | (_, ColumnData::Bools(_)) => {
                Err("BOOLEAN mixed with numeric values")
            }
            (Value::Null, _) => unreachable!("handled above"),
        }
    }

    /// Remove row `i`, shifting later rows down — the exact (order-
    /// preserving) eviction of the BNL window's `Vec::remove`, keeping
    /// block and row window index-aligned. Ordered eviction is what makes
    /// the BNL output "skyline members in arrival order" independently of
    /// which dominated tuples transiently entered the window — the
    /// property the flat/hierarchical merge and pre-filter byte-identity
    /// guarantees rest on.
    pub fn remove(&mut self, i: usize) {
        if self.is_fallback() {
            return;
        }
        debug_assert!(i < self.len);
        for col in &mut self.cols {
            match &mut col.data {
                ColumnData::Pending => {}
                ColumnData::Ints(b) | ColumnData::Bools(b) => {
                    b.remove(i);
                }
                ColumnData::Floats(b) => {
                    b.remove(i);
                }
            }
        }
        self.any_null.remove(i);
        self.len -= 1;
    }

    /// Keep only the rows `keep(i)` approves, preserving order — the
    /// batched equivalent of one [`remove`](Self::remove) per evicted
    /// row, but with a single compaction pass over every buffer instead
    /// of one tail shift per eviction.
    pub fn retain<F: FnMut(usize) -> bool>(&mut self, mut keep: F) {
        if self.is_fallback() {
            return;
        }
        let mask: Vec<bool> = (0..self.len).map(&mut keep).collect();
        fn compact<T>(buf: &mut Vec<T>, mask: &[bool]) {
            let mut i = 0;
            buf.retain(|_| {
                let k = mask[i];
                i += 1;
                k
            });
        }
        for col in &mut self.cols {
            match &mut col.data {
                ColumnData::Pending => {}
                ColumnData::Ints(b) | ColumnData::Bools(b) => compact(b, &mask),
                ColumnData::Floats(b) => compact(b, &mask),
            }
        }
        compact(&mut self.any_null, &mask);
        self.len = mask.iter().filter(|&&k| k).count();
    }

    /// Encode a candidate tuple against this block's column classes.
    ///
    /// `None` means this one tuple needs the scalar path (e.g. a
    /// non-integral float against an integer column); the block itself
    /// stays valid.
    pub fn encode(&self, row: &Row) -> Option<EncodedCandidate> {
        let mut cand = EncodedCandidate {
            dims: Vec::new(),
            all_incomparable: false,
        };
        self.encode_into(row, &mut cand).then_some(cand)
    }

    /// [`encode`](Self::encode) into a caller-owned buffer, avoiding the
    /// per-candidate allocation on the hot BNL/SFS loops. Returns `false`
    /// when this tuple needs the scalar path (`cand` is then unspecified).
    pub fn encode_into(&self, row: &Row, cand: &mut EncodedCandidate) -> bool {
        cand.dims.clear();
        cand.all_incomparable = false;
        if self.is_fallback() {
            return false;
        }
        for col in &self.cols {
            let value = row.get(col.index);
            let dim = if is_null_like(value) {
                if self.incomplete {
                    // Restricted relation: the dimension is skipped for
                    // every pair.
                    CandDim::Skip
                } else {
                    cand.all_incomparable = true;
                    return true;
                }
            } else {
                match (value, &col.data) {
                    // Unmaterialized column: all rows are NULL there, so
                    // the dimension never differentiates (complete mode
                    // forces Incomparable through `any_null` anyway).
                    (_, ColumnData::Pending) => CandDim::Skip,
                    (Value::Boolean(v), ColumnData::Bools(_)) => {
                        CandDim::Int(col.fold_i64(i64::from(*v)).expect("0/1 negation is safe"))
                    }
                    (Value::Int64(v), ColumnData::Ints(_)) => match col.fold_i64(*v) {
                        Some(folded) => CandDim::Int(folded),
                        None => return false,
                    },
                    (Value::Int64(v), ColumnData::Floats(_)) => {
                        if !int_is_f64_exact(*v) {
                            return false;
                        }
                        CandDim::Float(col.fold_f64(*v as f64))
                    }
                    (Value::Float64(v), ColumnData::Floats(_)) => CandDim::Float(col.fold_f64(*v)),
                    (Value::Float64(v), ColumnData::Ints(_)) => {
                        // Exact only when the float is an in-range integer;
                        // otherwise fall back to the scalar comparison.
                        if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v < i64::MAX as f64 + 1.0 {
                            match col.fold_i64(*v as i64) {
                                Some(folded) => CandDim::Int(folded),
                                None => return false,
                            }
                        } else {
                            return false;
                        }
                    }
                    // Any remaining combination compares `None` under
                    // `sql_compare` (Utf8 vs numeric, Boolean vs Int64, …):
                    // NULL-like for the pair, for every row of the column.
                    _ => {
                        if self.incomplete {
                            CandDim::Skip
                        } else {
                            cand.all_incomparable = true;
                            return true;
                        }
                    }
                }
            };
            cand.dims.push(dim);
        }
        true
    }

    /// Test `cand` against every row: `out` receives one [`Dominance`] per
    /// *tested* row, where `out[i]` is `compare(candidate, row_i)` of the
    /// scalar checker.
    ///
    /// With `stop_at_dominator`, scanning stops after the first chunk
    /// containing a row that dominates the candidate (`DominatedBy`) and
    /// its index is reported — the BNL/SFS early exit.
    pub fn compare_batch(
        &self,
        cand: &EncodedCandidate,
        out: &mut Vec<Dominance>,
        stop_at_dominator: bool,
    ) -> BatchResult {
        out.clear();
        debug_assert!(!self.is_fallback(), "compare_batch on a fallback block");
        if cand.all_incomparable {
            out.resize(self.len, Dominance::Incomparable);
            return BatchResult {
                tested: self.len as u64,
                dominated_at: None,
            };
        }
        let mut tested = 0u64;
        let mut dominated_at = None;
        let mut base = 0;
        let mut width = if stop_at_dominator {
            FIRST_CHUNK
        } else {
            CHUNK
        };
        while base < self.len {
            let m = width.min(self.len - base);
            width = (width * 2).min(CHUNK);
            // Candidate-better / row-better bits, accumulated per dim over
            // the chunk's contiguous buffer slice.
            let mut a: u64 = 0;
            let mut b: u64 = 0;
            for (col, dim) in self.cols.iter().zip(&cand.dims) {
                match (&col.data, dim) {
                    (ColumnData::Ints(buf), CandDim::Int(v))
                    | (ColumnData::Bools(buf), CandDim::Int(v)) => {
                        for (k, &x) in buf[base..base + m].iter().enumerate() {
                            a |= u64::from(*v < x) << k;
                            b |= u64::from(x < *v) << k;
                        }
                    }
                    (ColumnData::Floats(buf), CandDim::Float(v)) => {
                        for (k, &x) in buf[base..base + m].iter().enumerate() {
                            a |= u64::from(*v < x) << k;
                            b |= u64::from(x < *v) << k;
                        }
                    }
                    (_, CandDim::Skip) | (ColumnData::Pending, _) => {}
                    mismatch => unreachable!("encode/class invariant violated: {mismatch:?}"),
                }
            }
            for k in 0..m {
                let bit = 1u64 << k;
                let outcome = if !self.incomplete && self.any_null[base + k] {
                    Dominance::Incomparable
                } else {
                    match (a & bit != 0, b & bit != 0) {
                        (true, true) => Dominance::Incomparable,
                        (true, false) => Dominance::Dominates,
                        (false, true) => Dominance::DominatedBy,
                        (false, false) => Dominance::Equal,
                    }
                };
                if outcome == Dominance::DominatedBy && dominated_at.is_none() {
                    dominated_at = Some(base + k);
                }
                out.push(outcome);
            }
            tested += m as u64;
            if stop_at_dominator && dominated_at.is_some() {
                break;
            }
            base += m;
        }
        BatchResult {
            tested,
            dominated_at,
        }
    }
}

/// Struct-of-arrays block of plain `f64` points in folded ("smaller is
/// better") space — the grid partitioner's cell corners live here, so the
/// corner-dominance pruning pass runs on the same chunked kernel as the
/// row windows.
#[derive(Debug, Clone)]
pub struct PointBlock {
    dims: usize,
    len: usize,
    cols: Vec<Vec<f64>>,
}

impl PointBlock {
    /// Empty block of `dims`-dimensional points.
    pub fn new(dims: usize) -> Self {
        PointBlock {
            dims,
            len: 0,
            cols: (0..dims).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one point.
    pub fn push(&mut self, point: &[f64]) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        for (col, &v) in self.cols.iter_mut().zip(point) {
            col.push(v);
        }
        self.len += 1;
    }

    /// First stored point that strictly dominates `point` (component-wise
    /// `<=` everywhere and `<` somewhere, smaller-is-better), plus the
    /// number of point-vs-point tests performed (chunk-granular early
    /// exit).
    pub fn first_dominator(&self, point: &[f64]) -> (u64, Option<usize>) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let mut tested = 0u64;
        let mut base = 0;
        while base < self.len {
            let m = CHUNK.min(self.len - base);
            let mut a: u64 = 0; // candidate strictly better somewhere
            let mut b: u64 = 0; // stored point strictly better somewhere
            for (col, &v) in self.cols.iter().zip(point) {
                for (k, &x) in col[base..base + m].iter().enumerate() {
                    a |= u64::from(v < x) << k;
                    b |= u64::from(x < v) << k;
                }
            }
            tested += m as u64;
            // Dominator: never better on the candidate side, strictly
            // better somewhere on the stored side.
            let dominators = b & !a & mask(m);
            if dominators != 0 {
                return (tested, Some(base + dominators.trailing_zeros() as usize));
            }
            base += m;
        }
        (tested, None)
    }
}

fn mask(m: usize) -> u64 {
    if m >= 64 {
        u64::MAX
    } else {
        (1u64 << m) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::SkylineDim;

    fn spec_mm() -> SkylineSpec {
        SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::max(1)])
    }

    fn block_of(rows: &[Row], incomplete: bool) -> ColumnarBlock {
        let mut b = ColumnarBlock::new(&spec_mm(), incomplete);
        for r in rows {
            b.push(r);
        }
        b
    }

    fn int_row(a: i64, b: i64) -> Row {
        Row::new(vec![Value::Int64(a), Value::Int64(b)])
    }

    /// Oracle: batch outcomes must equal the scalar checker pairwise.
    fn assert_agrees(rows: &[Row], cand: &Row, incomplete: bool) {
        let checker = if incomplete {
            DominanceChecker::incomplete(spec_mm())
        } else {
            DominanceChecker::complete(spec_mm())
        };
        let block = block_of(rows, incomplete);
        assert!(!block.is_fallback(), "{:?}", block.fallback_reason());
        let enc = block.encode(cand).expect("encodable candidate");
        let mut out = Vec::new();
        let res = block.compare_batch(&enc, &mut out, false);
        assert_eq!(res.tested, rows.len() as u64);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                out[i],
                checker.compare(cand, row),
                "row {i}: cand={cand} row={row}"
            );
        }
    }

    #[test]
    fn batch_matches_scalar_on_ints() {
        let rows: Vec<Row> = (0..10).map(|i| int_row(i, 10 - i)).collect();
        for c in [int_row(0, 10), int_row(5, 5), int_row(9, 9), int_row(4, 2)] {
            assert_agrees(&rows, &c, false);
        }
    }

    #[test]
    fn batch_matches_scalar_on_floats_and_mixed() {
        let rows = vec![
            Row::new(vec![Value::Float64(1.5), Value::Int64(3)]),
            Row::new(vec![Value::Int64(2), Value::Int64(9)]),
            Row::new(vec![Value::Float64(0.25), Value::Float64(-2.0)]),
        ];
        let c = Row::new(vec![Value::Float64(1.0), Value::Float64(3.0)]);
        assert_agrees(&rows, &c, false);
    }

    #[test]
    fn complete_null_rows_are_incomparable() {
        let rows = vec![
            int_row(1, 1),
            Row::new(vec![Value::Null, Value::Int64(99)]),
            Row::new(vec![Value::Int64(0), Value::Float64(f64::NAN)]),
        ];
        // NaN promotes the second column to floats before the NaN row; use
        // a float column from the start.
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|r| {
                Row::new(
                    r.values()
                        .iter()
                        .map(|v| match v {
                            Value::Int64(i) => Value::Float64(*i as f64),
                            other => other.clone(),
                        })
                        .collect(),
                )
            })
            .collect();
        assert_agrees(
            &rows,
            &Row::new(vec![Value::Float64(0.0), Value::Float64(0.0)]),
            false,
        );
    }

    #[test]
    fn null_candidate_is_incomparable_to_everything() {
        let rows: Vec<Row> = (0..70).map(|i| int_row(i, i)).collect();
        let block = block_of(&rows, false);
        let cand = Row::new(vec![Value::Null, Value::Int64(5)]);
        let enc = block.encode(&cand).unwrap();
        let mut out = Vec::new();
        let res = block.compare_batch(&enc, &mut out, true);
        assert_eq!(res.dominated_at, None);
        assert!(out.iter().all(|&o| o == Dominance::Incomparable));
    }

    #[test]
    fn early_exit_stops_at_dominator_chunk() {
        // Row 3 dominates the candidate; with 200 rows, the scan must stop
        // after the first (progressively sized) chunk.
        let mut rows: Vec<Row> = vec![int_row(9, 1), int_row(8, 2), int_row(9, 3), int_row(0, 99)];
        rows.extend((0..200).map(|i| int_row(50 + i, 50)));
        let block = block_of(&rows, false);
        let enc = block.encode(&int_row(5, 5)).unwrap();
        let mut out = Vec::new();
        let res = block.compare_batch(&enc, &mut out, true);
        assert_eq!(res.dominated_at, Some(3));
        assert_eq!(res.tested, 4);
        assert_eq!(out.len(), 4);
        // Without the early exit the whole window is tested.
        let res = block.compare_batch(&enc, &mut out, false);
        assert_eq!(res.tested, rows.len() as u64);
        assert_eq!(out.len(), rows.len());
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let rows: Vec<Row> = (0..5).map(|i| int_row(i, i)).collect();
        let block = block_of(&rows, false);
        let mut cand = EncodedCandidate::new();
        assert!(block.encode_into(&int_row(2, 2), &mut cand));
        let mut out = Vec::new();
        block.compare_batch(&cand, &mut out, false);
        assert_eq!(out[2], Dominance::Equal);
        // A NULL candidate flips the buffer to all-incomparable.
        assert!(block.encode_into(&Row::new(vec![Value::Null, Value::Int64(1)]), &mut cand));
        block.compare_batch(&cand, &mut out, false);
        assert!(out.iter().all(|&o| o == Dominance::Incomparable));
    }

    #[test]
    fn retain_mirrors_vec_semantics() {
        let mut rows: Vec<Row> = (0..6).map(|i| int_row(i, 5 - i)).collect();
        let mut block = block_of(&rows, false);
        let mut k = 0;
        rows.retain(|_| {
            let keep = k % 2 == 0;
            k += 1;
            keep
        });
        block.retain(|i| i % 2 == 0);
        assert_eq!(block.len(), rows.len());
        let checker = DominanceChecker::complete(spec_mm());
        let cand = int_row(3, 3);
        let enc = block.encode(&cand).unwrap();
        let mut out = Vec::new();
        block.compare_batch(&enc, &mut out, false);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out[i], checker.compare(&cand, row));
        }
    }

    #[test]
    fn remove_mirrors_vec_semantics() {
        let mut rows: Vec<Row> = (0..5).map(|i| int_row(i, i)).collect();
        let mut block = block_of(&rows, false);
        rows.remove(1);
        block.remove(1);
        let checker = DominanceChecker::complete(spec_mm());
        let cand = int_row(2, 2);
        let enc = block.encode(&cand).unwrap();
        let mut out = Vec::new();
        block.compare_batch(&enc, &mut out, false);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out[i], checker.compare(&cand, row));
        }
    }

    #[test]
    fn diff_spec_falls_back() {
        let spec = SkylineSpec::new(vec![SkylineDim::diff(0), SkylineDim::min(1)]);
        let block = ColumnarBlock::new(&spec, false);
        assert!(block.is_fallback());
    }

    #[test]
    fn utf8_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::str("x"), Value::Int64(1)]));
        assert!(block.is_fallback());
    }

    #[test]
    fn bool_int_mix_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::Boolean(true), Value::Int64(1)]));
        block.push(&int_row(3, 4));
        assert!(block.is_fallback());
    }

    #[test]
    fn huge_int_in_float_column_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::Float64(1.0), Value::Int64(0)]));
        block.push(&Row::new(vec![
            Value::Int64((1i64 << 60) + 1),
            Value::Int64(0),
        ]));
        assert!(block.is_fallback());
    }

    #[test]
    fn i64_max_in_float_column_demotes_block() {
        // `i64::MAX as f64` rounds up to 2^63 and the saturating cast back
        // hides it; the kernel must treat i64::MAX as inexact or it would
        // compare equal to Float64(2^63) where the scalar checker says
        // Incomparable-breaking Greater.
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::Float64(1.0e10), Value::Int64(0)]));
        block.push(&Row::new(vec![Value::Int64(i64::MAX), Value::Int64(0)]));
        assert!(block.is_fallback());
        // Same as an already-float column's candidate.
        let block = block_of(
            &[Row::new(vec![
                Value::Float64(9_223_372_036_854_775_808.0),
                Value::Int64(0),
            ])],
            false,
        );
        assert!(block
            .encode(&Row::new(vec![Value::Int64(i64::MAX), Value::Int64(0)]))
            .is_none());
        // End to end, batched must still equal scalar via the fallback.
        let rows = vec![
            Row::new(vec![Value::Float64(1.0e10), Value::Int64(100)]),
            Row::new(vec![Value::Int64(i64::MAX), Value::Int64(3)]),
            Row::new(vec![
                Value::Float64(9_223_372_036_854_775_808.0),
                Value::Int64(2),
            ]),
        ];
        let checker = DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
        ]));
        let mut s1 = crate::SkylineStats::default();
        let scalar = crate::bnl_skyline(rows.clone(), &checker, &mut s1);
        let mut s2 = crate::SkylineStats::default();
        let batched = crate::bnl_skyline_batched(rows, &checker, &mut s2);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn i64_min_under_max_dim_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::Int64(0), Value::Int64(i64::MIN)]));
        assert!(block.is_fallback());
    }

    #[test]
    fn incomplete_mixed_null_column_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), true);
        block.push(&Row::new(vec![Value::Null, Value::Int64(1)]));
        block.push(&int_row(1, 2));
        assert!(block.is_fallback());
    }

    #[test]
    fn incomplete_all_null_column_is_skipped() {
        // One null-bitmap class: dim 0 NULL everywhere, dim 1 ranked MAX.
        let rows = vec![
            Row::new(vec![Value::Null, Value::Int64(5)]),
            Row::new(vec![Value::Null, Value::Int64(9)]),
        ];
        let checker = DominanceChecker::incomplete(spec_mm());
        let mut block = ColumnarBlock::new(&spec_mm(), true);
        for r in &rows {
            block.push(r);
        }
        assert!(!block.is_fallback());
        let cand = Row::new(vec![Value::Null, Value::Int64(7)]);
        let enc = block.encode(&cand).unwrap();
        let mut out = Vec::new();
        block.compare_batch(&enc, &mut out, false);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out[i], checker.compare(&cand, row));
        }
    }

    #[test]
    fn non_integral_float_candidate_on_int_column_needs_scalar() {
        let block = block_of(&[int_row(1, 1)], false);
        let cand = Row::new(vec![Value::Float64(1.5), Value::Int64(0)]);
        assert!(block.encode(&cand).is_none());
    }

    #[test]
    fn point_block_finds_first_dominator() {
        let mut pb = PointBlock::new(2);
        pb.push(&[5.0, 5.0]); // incomparable corner
        pb.push(&[2.0, 2.0]); // dominator
        pb.push(&[0.0, 0.0]); // also a dominator, but later
        let (tested, hit) = pb.first_dominator(&[3.0, 3.0]);
        assert_eq!(hit, Some(1));
        assert_eq!(tested, 3);
        // Equal corner is not a strict dominator.
        let (_, none) = pb.first_dominator(&[0.0, 0.0]);
        assert_eq!(none, None);
    }

    #[test]
    fn point_block_early_exits_between_chunks() {
        let mut pb = PointBlock::new(2);
        for i in 0..70 {
            pb.push(&[100.0 + i as f64, 100.0]);
        }
        pb.push(&[0.0, 0.0]);
        for _ in 0..70 {
            pb.push(&[100.0, 100.0]);
        }
        let (tested, hit) = pb.first_dominator(&[50.0, 50.0]);
        assert_eq!(hit, Some(70));
        assert_eq!(tested, 128);
    }
}
