//! Columnar (struct-of-arrays) dominance kernel.
//!
//! The paper treats the number of dominance tests as the main cost factor
//! of skyline computation (§2), but the *per-test constant* matters just as
//! much once the test count is fixed: the scalar [`DominanceChecker`] walks
//! a `Vec<Value>` enum per row, re-matching on type tags and re-resolving
//! `dim.index` for every pair. This module batches that work: the skyline
//! dimensions of a row window are transposed into contiguous,
//! sign-normalized column buffers once, and a candidate tuple is then
//! tested against the *entire* window in a tight per-dimension loop over
//! flat `i64`/`f64` slices (64-row chunks with early exit).
//!
//! # Compare tiers and runtime dispatch
//!
//! The per-chunk mask computation ships in three tiers, selected once per
//! block from the [`DominanceKernel`] knob via
//! `is_x86_feature_detected!`-based runtime dispatch ([`KernelTier`]):
//!
//! * **`simd(avx2)`** — explicit `core::arch::x86_64` intrinsics, four
//!   64-bit lanes per instruction: `_mm256_cmpgt_epi64` both directions
//!   for integer columns, `_mm256_cmp_pd` (ordered, non-signalling) for
//!   float columns, sign-extracted into the chunk masks with
//!   `movemask`. Float buffers never contain NaN (NaN is NULL-like and
//!   becomes a placeholder plus an `any_null` bit), so the ordered
//!   compares are exact.
//! * **`simd(sse2)`** — the x86-64 baseline tier: two-lane `_mm_cmplt_pd`
//!   / `_mm_cmpneq_pd` for float columns; integer columns take the
//!   chunked loop (SSE2 has no 64-bit signed compare).
//! * **`chunked`** — the portable PR 2 mask loop, kept verbatim. It is
//!   both the fallback for non-x86-64 targets and the differential
//!   oracle the SIMD tiers are tested against: all tiers produce
//!   bit-identical `(a, b, neq)` masks, hence byte-identical outcomes.
//!
//! # Multi-candidate passes
//!
//! [`ColumnarBlock::first_dominators`] widens the kernel to a batch of
//! [`MULTI_LANES`] candidates per window walk: each 64-row chunk of the
//! sign-normalized buffers (and its null bits) is visited once while all
//! live candidate lanes compute their masks against it, amortizing the
//! memory traffic of the window walk across the lanes. Each lane keeps a
//! per-candidate outcome in the form of its first dominating row index;
//! a lane goes dead once a dominator is found, and the walk stops —
//! chunk-granular — when every lane is dead. Callers that hold many
//! candidates at once (BNL batch admission, the representative
//! pre-filter, grid corner pruning) use it as a sound pre-pass: only
//! *strict* `DominatedBy` outcomes are consumed, which under a
//! transitive relation are stable against any later window evolution.
//!
//! # Block layout and encode rules
//!
//! A [`ColumnarBlock`] holds one column per skyline dimension plus one
//! `any_null` bit per row:
//!
//! * **Sign normalization** — `MIN` dimensions are stored as-is, `MAX`
//!   dimensions are stored negated, so the kernel only ever asks "is
//!   smaller better"; the MIN/MAX branch disappears from the inner loop.
//!   (`i64::MIN` cannot be negated; a row carrying it in a `MAX` dimension
//!   demotes the block to scalar fallback.)
//! * **Column classes** — a column materializes as `i64` (all `Int64`, or
//!   all `Boolean` encoded 0/1), or `f64` (all `Float64`, or a mix of
//!   `Float64` and `Int64` where every integer round-trips through `f64`
//!   exactly — otherwise the lossless integer comparison of
//!   `Value::sql_compare` could not be reproduced and the block falls back
//!   to scalar). `Utf8` values and class mixes whose scalar comparison is
//!   not a plain numeric ordering (e.g. `Boolean` vs `Int64`) mark the
//!   block scalar-fallback.
//! * **Null mask semantics** — under the complete-data relation a NULL (or
//!   NaN, which compares like NULL under `sql_compare`) in *any* dimension
//!   of *either* tuple makes the pair incomparable, so the block only
//!   tracks one `any_null` bit per row and the kernel forces
//!   [`Dominance::Incomparable`] wherever the candidate's or the row's bit
//!   is set. Under the incomplete relation a NULL restricts the comparison
//!   to the shared non-NULL dimensions instead; the kernel supports the
//!   case that arises in practice — the local phase runs per null-bitmap
//!   class, where a dimension is NULL either in *every* row (the column
//!   stays unmaterialized and is skipped) or in *none* — and demotes mixed
//!   columns to scalar fallback.
//! * **`DIFF` dimensions** are stored un-negated; dominance additionally
//!   requires *equality* on them, which the kernel folds in as a third
//!   per-chunk mask: any inequality (`neq`) bit forces
//!   [`Dominance::Incomparable`] for that pair, mirroring the scalar
//!   checker's immediate exit on a `DIFF` mismatch. Non-numeric `DIFF`
//!   values demote the block through the same class rules as ranked
//!   dimensions.
//!
//! Fallback is never an error: callers keep the row window authoritative
//! and simply route comparisons through the scalar checker when
//! [`ColumnarBlock::is_fallback`] reports `true` (whole-block) or
//! [`ColumnarBlock::encode`] returns `None` (single candidate). The
//! batched and scalar paths produce byte-identical *skylines*; the test
//! counters differ — the chunked early exit makes the kernel perform more
//! (much cheaper) tests than the scalar loop's per-pair exit, which
//! `batched_tests` / `scalar_tests` make visible per path, and the
//! `simd_tests` counter additionally splits out tests performed on a SIMD
//! tier.

use sparkline_common::{DominanceKernel, Row, SkylineSpec, SkylineType, Value};

use crate::dominance::{Dominance, DominanceChecker};

/// Maximum rows per kernel chunk: outcomes are derived from `u64` bit
/// masks, and a chunk is also the early-exit granularity when a dominator
/// is found.
pub const CHUNK: usize = 64;

/// First chunk size of a single-candidate scan. BNL windows keep their most
/// dominant tuples near the front, so most dominated candidates die within
/// a few comparisons; starting small (then doubling up to [`CHUNK`]) keeps
/// the early exit nearly as fine-grained as the scalar loop's while large
/// windows still run full-width chunks.
///
/// Re-tuned against the explicit-SIMD tiers (the `first_chunk_tuning`
/// section of BENCH_PR6.json records the sweep): the curve is flat to
/// within scheduler noise — small starts (1–4) trade blows with
/// full-width chunks on the anti-correlated window — so 4 is kept; the
/// win comes from aborting *before* the first full-width chunk, and SIMD
/// makes wide chunks cheaper without making early exits less valuable.
/// Multi-candidate passes
/// ([`ColumnarBlock::first_dominators`]) start at full [`CHUNK`] width
/// instead: their walk only stops once *every* lane has found a
/// dominator, which rarely happens inside the first few rows, so
/// progressive sizing would add per-lane bookkeeping for nothing.
pub const CANDIDATE_FIRST_CHUNK: usize = 4;

/// Candidate lanes per multi-candidate window pass
/// ([`ColumnarBlock::first_dominators`]): callers slice their pending
/// candidates into groups of this size, each group amortizing one walk
/// over the block buffers and null bits.
pub const MULTI_LANES: usize = 8;

/// Compare tier a block dispatches its per-chunk mask computation to,
/// resolved once per block from the [`DominanceKernel`] knob and the host
/// CPU (`is_x86_feature_detected!`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Portable chunked-scalar mask loop (the PR 2 kernel, kept verbatim):
    /// the fallback for non-x86-64 targets and the differential oracle the
    /// SIMD tiers are tested against.
    Chunked,
    /// x86-64 baseline tier: two-lane SSE2 float compares; integer columns
    /// take the chunked loop (SSE2 has no 64-bit signed compare).
    Sse2,
    /// Four-lane AVX2 integer and float compares.
    Avx2,
}

impl KernelTier {
    /// Tier for a kernel knob on this CPU. `Auto` and `Simd` resolve to
    /// the best detected SIMD tier; `Chunked` (and `Scalar`, for callers
    /// that build a block anyway) pin the portable loop.
    pub fn resolve(kernel: DominanceKernel) -> KernelTier {
        match kernel {
            DominanceKernel::Auto | DominanceKernel::Simd => KernelTier::detect(),
            DominanceKernel::Chunked | DominanceKernel::Scalar => KernelTier::Chunked,
        }
    }

    /// Best SIMD tier the host CPU supports;
    /// [`Chunked`](KernelTier::Chunked) off x86-64.
    pub fn detect() -> KernelTier {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                KernelTier::Avx2
            } else {
                // SSE2 is part of the x86-64 baseline, always present.
                KernelTier::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            KernelTier::Chunked
        }
    }

    /// Every tier runnable on this CPU, for differential tests and
    /// benchmarks.
    pub fn available() -> Vec<KernelTier> {
        #[allow(unused_mut)]
        let mut tiers = vec![KernelTier::Chunked];
        #[cfg(target_arch = "x86_64")]
        {
            tiers.push(KernelTier::Sse2);
            if std::arch::is_x86_feature_detected!("avx2") {
                tiers.push(KernelTier::Avx2);
            }
        }
        tiers
    }

    /// Whether the tier runs explicit SIMD intrinsics (feeds the
    /// `simd_tests` metric).
    pub fn is_simd(self) -> bool {
        !matches!(self, KernelTier::Chunked)
    }

    /// EXPLAIN label of the tier.
    pub fn label(self) -> &'static str {
        match self {
            KernelTier::Chunked => "chunked",
            KernelTier::Sse2 => "simd(sse2)",
            KernelTier::Avx2 => "simd(avx2)",
        }
    }
}

/// EXPLAIN description of a kernel knob as resolved on this CPU, e.g.
/// `scalar`, `chunked`, or `simd(avx2), lanes=8`.
pub fn kernel_label(kernel: DominanceKernel) -> String {
    match kernel {
        DominanceKernel::Scalar => "scalar".to_string(),
        _ => {
            let tier = KernelTier::resolve(kernel);
            if tier.is_simd() {
                format!("{}, lanes={MULTI_LANES}", tier.label())
            } else {
                tier.label().to_string()
            }
        }
    }
}

/// Explicit-SIMD per-column mask kernels. Every function produces the
/// exact same `a`/`b`/`neq` bits as the chunked loops in
/// `ColumnarBlock::chunk_masks_chunked`; the differential suites assert
/// that equivalence on every tier the CPU offers. Buffers never contain
/// NaN (NaN is NULL-like and encodes as a placeholder plus an `any_null`
/// bit), so the ordered float compares are exact.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;

    /// `a |= (v < x) << k`, `b |= (x < v) << k` over up to 64 `i64`s.
    ///
    /// # Safety
    /// AVX2 must be available; callers dispatch on [`KernelTier::Avx2`],
    /// which is only produced after `is_x86_feature_detected!("avx2")`.
    ///
    /// [`KernelTier::Avx2`]: super::KernelTier::Avx2
    #[target_feature(enable = "avx2")]
    pub unsafe fn ranked_i64_avx2(buf: &[i64], v: i64, a: &mut u64, b: &mut u64) {
        let splat = _mm256_set1_epi64x(v);
        let mut k = 0;
        while k + 4 <= buf.len() {
            let x = _mm256_loadu_si256(buf.as_ptr().add(k) as *const __m256i);
            let gt = _mm256_cmpgt_epi64(x, splat); // x > v  ⇒  v < x  ⇒  a
            let lt = _mm256_cmpgt_epi64(splat, x); // v > x  ⇒  x < v  ⇒  b
            *a |= (_mm256_movemask_pd(_mm256_castsi256_pd(gt)) as u32 as u64) << k;
            *b |= (_mm256_movemask_pd(_mm256_castsi256_pd(lt)) as u32 as u64) << k;
            k += 4;
        }
        for (i, &x) in buf[k..].iter().enumerate() {
            *a |= u64::from(v < x) << (k + i);
            *b |= u64::from(x < v) << (k + i);
        }
    }

    /// `neq |= (x != v) << k` over up to 64 `i64`s of a `DIFF` column.
    ///
    /// # Safety
    /// AVX2 must be available (see [`ranked_i64_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn diff_i64_avx2(buf: &[i64], v: i64, neq: &mut u64) {
        let splat = _mm256_set1_epi64x(v);
        let mut k = 0;
        while k + 4 <= buf.len() {
            let x = _mm256_loadu_si256(buf.as_ptr().add(k) as *const __m256i);
            let eq = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(x, splat)));
            *neq |= (!(eq as u32 as u64) & 0xF) << k;
            k += 4;
        }
        for (i, &x) in buf[k..].iter().enumerate() {
            *neq |= u64::from(x != v) << (k + i);
        }
    }

    /// `a |= (v < x) << k`, `b |= (x < v) << k` over up to 64 `f64`s.
    ///
    /// # Safety
    /// AVX2 must be available (see [`ranked_i64_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn ranked_f64_avx2(buf: &[f64], v: f64, a: &mut u64, b: &mut u64) {
        let splat = _mm256_set1_pd(v);
        let mut k = 0;
        while k + 4 <= buf.len() {
            let x = _mm256_loadu_pd(buf.as_ptr().add(k));
            let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(x, splat);
            let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(x, splat);
            *a |= (_mm256_movemask_pd(gt) as u32 as u64) << k;
            *b |= (_mm256_movemask_pd(lt) as u32 as u64) << k;
            k += 4;
        }
        for (i, &x) in buf[k..].iter().enumerate() {
            *a |= u64::from(v < x) << (k + i);
            *b |= u64::from(x < v) << (k + i);
        }
    }

    /// `neq |= (x != v) << k` over up to 64 `f64`s of a `DIFF` column.
    ///
    /// # Safety
    /// AVX2 must be available (see [`ranked_i64_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn diff_f64_avx2(buf: &[f64], v: f64, neq: &mut u64) {
        let splat = _mm256_set1_pd(v);
        let mut k = 0;
        while k + 4 <= buf.len() {
            let x = _mm256_loadu_pd(buf.as_ptr().add(k));
            let ne = _mm256_cmp_pd::<_CMP_NEQ_OQ>(x, splat);
            *neq |= (_mm256_movemask_pd(ne) as u32 as u64) << k;
            k += 4;
        }
        for (i, &x) in buf[k..].iter().enumerate() {
            *neq |= u64::from(x != v) << (k + i);
        }
    }

    /// Two-lane SSE2 variant of [`ranked_f64_avx2`]. SSE2 is in the
    /// x86-64 baseline, so this is a safe function.
    pub fn ranked_f64_sse2(buf: &[f64], v: f64, a: &mut u64, b: &mut u64) {
        unsafe {
            let splat = _mm_set1_pd(v);
            let mut k = 0;
            while k + 2 <= buf.len() {
                let x = _mm_loadu_pd(buf.as_ptr().add(k));
                *a |= (_mm_movemask_pd(_mm_cmpgt_pd(x, splat)) as u32 as u64) << k;
                *b |= (_mm_movemask_pd(_mm_cmplt_pd(x, splat)) as u32 as u64) << k;
                k += 2;
            }
            if k < buf.len() {
                let x = buf[k];
                *a |= u64::from(v < x) << k;
                *b |= u64::from(x < v) << k;
            }
        }
    }

    /// Two-lane SSE2 variant of [`diff_f64_avx2`].
    pub fn diff_f64_sse2(buf: &[f64], v: f64, neq: &mut u64) {
        unsafe {
            let splat = _mm_set1_pd(v);
            let mut k = 0;
            while k + 2 <= buf.len() {
                let x = _mm_loadu_pd(buf.as_ptr().add(k));
                *neq |= (_mm_movemask_pd(_mm_cmpneq_pd(x, splat)) as u32 as u64) << k;
                k += 2;
            }
            if k < buf.len() {
                *neq |= u64::from(buf[k] != v) << k;
            }
        }
    }
}

/// One encoded skyline dimension of a candidate tuple, matched against the
/// corresponding block column's class.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CandDim {
    /// Dimension contributes nothing for any row (unmaterialized column, or
    /// a NULL-like value under the incomplete relation).
    Skip,
    /// Sign-normalized integer compared against an `i64` column.
    Int(i64),
    /// Sign-normalized float compared against an `f64` column.
    Float(f64),
}

/// A candidate tuple's skyline dimensions, encoded once and then compared
/// against every row of the block.
#[derive(Debug, Clone)]
pub struct EncodedCandidate {
    dims: Vec<CandDim>,
    /// Complete relation only: the candidate has a NULL-like value (NULL,
    /// NaN, or a class mismatch) in some dimension, so it is incomparable
    /// with every row regardless of the buffers.
    all_incomparable: bool,
}

impl EncodedCandidate {
    /// Empty buffer for [`ColumnarBlock::encode_into`] reuse.
    pub fn new() -> Self {
        EncodedCandidate {
            dims: Vec::new(),
            all_incomparable: false,
        }
    }
}

impl Default for EncodedCandidate {
    fn default() -> Self {
        EncodedCandidate::new()
    }
}

/// Result of one candidate-vs-block kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchResult {
    /// Pairwise dominance tests performed (chunk-granular under early
    /// exit).
    pub tested: u64,
    /// Index of the first row that dominates the candidate, when the call
    /// asked to stop there.
    pub dominated_at: Option<usize>,
}

/// Result of one multi-candidate window pass
/// ([`ColumnarBlock::first_dominators`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiBatchResult {
    /// Pairwise dominance tests performed across all lanes (chunk-granular
    /// per live lane).
    pub tested: u64,
    /// Number of candidate lanes in the pass.
    pub lanes: usize,
}

/// Storage of one dimension column.
#[derive(Debug, Clone)]
enum ColumnData {
    /// No non-NULL value seen yet; rows are tracked only through the null
    /// machinery until a value fixes the class.
    Pending,
    /// All-`Int64` (or all-`Boolean`, encoded 0/1) column.
    Ints(Vec<i64>),
    /// `Float64` column, possibly holding exactly-converted integers.
    Floats(Vec<f64>),
    /// All-`Boolean` column, encoded 0/1. Kept distinct from [`Ints`]
    /// because `Boolean` and `Int64` are *not* comparable under
    /// `sql_compare`.
    Bools(Vec<i64>),
}

#[derive(Debug, Clone)]
struct Column {
    /// Column position in the input rows.
    index: usize,
    /// Sign normalization: negate values of `MAX` dimensions on encode.
    /// `DIFF` columns are stored un-negated.
    negate: bool,
    /// `DIFF` dimension: compared for equality (`neq` mask) instead of
    /// order (`a`/`b` masks).
    is_diff: bool,
    /// NULL (or NaN) seen in this column.
    saw_null: bool,
    data: ColumnData,
}

impl Column {
    fn fold_i64(&self, v: i64) -> Option<i64> {
        fold_i64(v, self.negate)
    }

    fn fold_f64(&self, v: f64) -> f64 {
        fold_f64(v, self.negate)
    }
}

fn fold_i64(v: i64, negate: bool) -> Option<i64> {
    if negate {
        v.checked_neg()
    } else {
        Some(v)
    }
}

fn fold_f64(v: f64, negate: bool) -> f64 {
    if negate {
        -v
    } else {
        v
    }
}

/// Whether an `i64` survives the round trip through `f64` unchanged, i.e.
/// comparisons performed in the `f64` domain are exact for it.
///
/// `i64::MAX` must be rejected explicitly: `i64::MAX as f64` rounds *up*
/// to 2^63 and the saturating `f64 -> i64` cast folds that back to
/// `i64::MAX`, so the round-trip alone would falsely report exactness.
fn int_is_f64_exact(v: i64) -> bool {
    v != i64::MAX && (v as f64) as i64 == v
}

/// A float that behaves like NULL under `sql_compare` (NaN compares `None`
/// against every value, including itself).
fn is_null_like(v: &Value) -> bool {
    match v {
        Value::Null => true,
        Value::Float64(f) => f.is_nan(),
        _ => false,
    }
}

/// Struct-of-arrays window of the skyline dimensions of a row batch.
///
/// The block mirrors a caller-owned `Vec<Row>` window: encode rows once
/// with [`push`](Self::push), keep evictions in sync with
/// [`remove`](Self::remove), and test a candidate against all
/// rows with [`compare_batch`](Self::compare_batch). See the module docs
/// for the encode rules and the fallback contract.
#[derive(Debug, Clone)]
pub struct ColumnarBlock {
    cols: Vec<Column>,
    /// Complete relation: per-row "has a NULL-like value in some skyline
    /// dimension" bit (forces `Incomparable` against everything).
    any_null: Vec<bool>,
    incomplete: bool,
    len: usize,
    fallback: Option<&'static str>,
    tier: KernelTier,
}

impl ColumnarBlock {
    /// Empty block for `spec` under the chosen dominance relation, with
    /// the compare tier auto-detected ([`DominanceKernel::Auto`]).
    ///
    /// A spec with no dimensions starts in scalar fallback; pushes and
    /// encodes are then inert and the caller must use the scalar checker.
    pub fn new(spec: &SkylineSpec, incomplete: bool) -> Self {
        ColumnarBlock::with_tier(spec, incomplete, KernelTier::detect())
    }

    /// Empty block dispatching to the tier the `kernel` knob resolves to
    /// on this CPU.
    pub fn with_kernel(spec: &SkylineSpec, incomplete: bool, kernel: DominanceKernel) -> Self {
        ColumnarBlock::with_tier(spec, incomplete, KernelTier::resolve(kernel))
    }

    /// Empty block pinned to an explicit tier (differential tests and
    /// benchmarks; [`new`](Self::new) / [`with_kernel`](Self::with_kernel)
    /// otherwise).
    pub fn with_tier(spec: &SkylineSpec, incomplete: bool, tier: KernelTier) -> Self {
        let fallback = if spec.dims.is_empty() {
            Some("no skyline dimensions")
        } else {
            None
        };
        ColumnarBlock {
            cols: spec
                .dims
                .iter()
                .map(|d| Column {
                    index: d.index,
                    negate: d.ty == SkylineType::Max,
                    is_diff: d.ty == SkylineType::Diff,
                    saw_null: false,
                    data: ColumnData::Pending,
                })
                .collect(),
            any_null: Vec::new(),
            incomplete,
            len: 0,
            fallback,
            tier,
        }
    }

    /// Block matching a checker's spec and relation, tier auto-detected.
    pub fn for_checker(checker: &DominanceChecker) -> Self {
        ColumnarBlock::new(checker.spec(), checker.is_incomplete())
    }

    /// Block matching a checker's spec and relation, tier resolved from
    /// the `kernel` knob.
    pub fn for_checker_with(checker: &DominanceChecker, kernel: DominanceKernel) -> Self {
        ColumnarBlock::with_kernel(checker.spec(), checker.is_incomplete(), kernel)
    }

    /// Resolved compare tier of this block.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Whether comparisons run on a SIMD tier (feeds the `simd_tests`
    /// metric).
    pub fn is_simd(&self) -> bool {
        self.tier.is_simd()
    }

    /// Number of encoded rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the block has been demoted to scalar fallback.
    pub fn is_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// Why the block fell back to scalar comparisons, if it did.
    pub fn fallback_reason(&self) -> Option<&'static str> {
        self.fallback
    }

    fn demote(&mut self, reason: &'static str) {
        self.fallback = Some(reason);
    }

    /// Append a row's skyline dimensions to the column buffers.
    ///
    /// May demote the block to scalar fallback (non-numeric value, class
    /// mix, inexact int↔float conversion, `i64::MIN` under `MAX`, or a
    /// partially-NULL column under the incomplete relation); the push is
    /// then abandoned and the block must no longer be consulted.
    pub fn push(&mut self, row: &Row) {
        if self.is_fallback() {
            return;
        }
        let mut row_null = false;
        for c in 0..self.cols.len() {
            let value = row.get(self.cols[c].index).clone();
            if let Err(reason) = self.push_value(c, &value) {
                self.demote(reason);
                return;
            }
            if is_null_like(&value) {
                row_null = true;
            }
        }
        self.any_null.push(row_null);
        self.len += 1;
    }

    fn push_value(&mut self, c: usize, value: &Value) -> Result<(), &'static str> {
        let len = self.len;
        let incomplete = self.incomplete;
        let col = &mut self.cols[c];
        let negate = col.negate;
        if is_null_like(value) {
            // Incomplete relation: a column mixing NULL and non-NULL rows
            // would need per-dimension restriction; demote. (All-NULL
            // columns stay `Pending` and are simply skipped.)
            if incomplete && !matches!(col.data, ColumnData::Pending) {
                return Err("NULL mixed into a materialized column (incomplete relation)");
            }
            col.saw_null = true;
            // Complete relation: keep indices aligned with a placeholder;
            // the row's `any_null` bit makes every comparison against it
            // incomparable before the buffers are consulted.
            match &mut col.data {
                ColumnData::Pending => {}
                ColumnData::Ints(b) | ColumnData::Bools(b) => b.push(0),
                ColumnData::Floats(b) => b.push(0.0),
            }
            return Ok(());
        }
        if incomplete && col.saw_null {
            return Err("non-NULL mixed into a NULL column (incomplete relation)");
        }
        match (value, &mut col.data) {
            (Value::Boolean(v), ColumnData::Bools(b)) => {
                let folded = fold_i64(i64::from(*v), negate).expect("0/1 negation is safe");
                b.push(folded);
                Ok(())
            }
            (Value::Boolean(v), ColumnData::Pending) => {
                let folded = fold_i64(i64::from(*v), negate).expect("0/1 negation is safe");
                let mut b = vec![0i64; len];
                b.push(folded);
                col.data = ColumnData::Bools(b);
                Ok(())
            }
            (Value::Int64(v), ColumnData::Ints(b)) => {
                let folded = fold_i64(*v, negate).ok_or("i64::MIN under a MAX dimension")?;
                b.push(folded);
                Ok(())
            }
            (Value::Int64(v), ColumnData::Pending) => {
                let folded = fold_i64(*v, negate).ok_or("i64::MIN under a MAX dimension")?;
                let mut b = vec![0i64; len];
                b.push(folded);
                col.data = ColumnData::Ints(b);
                Ok(())
            }
            (Value::Int64(v), ColumnData::Floats(b)) => {
                if !int_is_f64_exact(*v) {
                    return Err("integer not exactly representable as f64");
                }
                b.push(fold_f64(*v as f64, negate));
                Ok(())
            }
            (Value::Float64(v), ColumnData::Floats(b)) => {
                b.push(fold_f64(*v, negate));
                Ok(())
            }
            (Value::Float64(v), ColumnData::Pending) => {
                let mut b = vec![0.0f64; len];
                b.push(fold_f64(*v, negate));
                col.data = ColumnData::Floats(b);
                Ok(())
            }
            (Value::Float64(v), ColumnData::Ints(ints)) => {
                // Upgrade the integer column to floats; every stored value
                // must convert exactly or lossless comparison is lost.
                if ints.iter().any(|&i| !int_is_f64_exact(i)) {
                    return Err("integer column not exactly convertible to f64");
                }
                let mut b: Vec<f64> = ints.iter().map(|&i| i as f64).collect();
                b.push(fold_f64(*v, negate));
                col.data = ColumnData::Floats(b);
                Ok(())
            }
            (Value::Utf8(_), _) => Err("non-numeric skyline dimension"),
            (Value::Boolean(_), _) | (_, ColumnData::Bools(_)) => {
                Err("BOOLEAN mixed with numeric values")
            }
            (Value::Null, _) => unreachable!("handled above"),
        }
    }

    /// Remove row `i`, shifting later rows down — the exact (order-
    /// preserving) eviction of the BNL window's `Vec::remove`, keeping
    /// block and row window index-aligned. Ordered eviction is what makes
    /// the BNL output "skyline members in arrival order" independently of
    /// which dominated tuples transiently entered the window — the
    /// property the flat/hierarchical merge and pre-filter byte-identity
    /// guarantees rest on.
    pub fn remove(&mut self, i: usize) {
        if self.is_fallback() {
            return;
        }
        debug_assert!(i < self.len);
        for col in &mut self.cols {
            match &mut col.data {
                ColumnData::Pending => {}
                ColumnData::Ints(b) | ColumnData::Bools(b) => {
                    b.remove(i);
                }
                ColumnData::Floats(b) => {
                    b.remove(i);
                }
            }
        }
        self.any_null.remove(i);
        self.len -= 1;
    }

    /// Keep only the rows `keep(i)` approves, preserving order — the
    /// batched equivalent of one [`remove`](Self::remove) per evicted
    /// row, but with a single compaction pass over every buffer instead
    /// of one tail shift per eviction.
    pub fn retain<F: FnMut(usize) -> bool>(&mut self, mut keep: F) {
        if self.is_fallback() {
            return;
        }
        let mask: Vec<bool> = (0..self.len).map(&mut keep).collect();
        fn compact<T>(buf: &mut Vec<T>, mask: &[bool]) {
            let mut i = 0;
            buf.retain(|_| {
                let k = mask[i];
                i += 1;
                k
            });
        }
        for col in &mut self.cols {
            match &mut col.data {
                ColumnData::Pending => {}
                ColumnData::Ints(b) | ColumnData::Bools(b) => compact(b, &mask),
                ColumnData::Floats(b) => compact(b, &mask),
            }
        }
        compact(&mut self.any_null, &mask);
        self.len = mask.iter().filter(|&&k| k).count();
    }

    /// Encode a candidate tuple against this block's column classes.
    ///
    /// `None` means this one tuple needs the scalar path (e.g. a
    /// non-integral float against an integer column); the block itself
    /// stays valid.
    pub fn encode(&self, row: &Row) -> Option<EncodedCandidate> {
        let mut cand = EncodedCandidate {
            dims: Vec::new(),
            all_incomparable: false,
        };
        self.encode_into(row, &mut cand).then_some(cand)
    }

    /// [`encode`](Self::encode) into a caller-owned buffer, avoiding the
    /// per-candidate allocation on the hot BNL/SFS loops. Returns `false`
    /// when this tuple needs the scalar path (`cand` is then unspecified).
    pub fn encode_into(&self, row: &Row, cand: &mut EncodedCandidate) -> bool {
        cand.dims.clear();
        cand.all_incomparable = false;
        if self.is_fallback() {
            return false;
        }
        for col in &self.cols {
            let value = row.get(col.index);
            let dim = if is_null_like(value) {
                if self.incomplete {
                    // Restricted relation: the dimension is skipped for
                    // every pair.
                    CandDim::Skip
                } else {
                    cand.all_incomparable = true;
                    return true;
                }
            } else {
                match (value, &col.data) {
                    // Unmaterialized column: all rows are NULL there, so
                    // the dimension never differentiates (complete mode
                    // forces Incomparable through `any_null` anyway).
                    (_, ColumnData::Pending) => CandDim::Skip,
                    (Value::Boolean(v), ColumnData::Bools(_)) => {
                        CandDim::Int(col.fold_i64(i64::from(*v)).expect("0/1 negation is safe"))
                    }
                    (Value::Int64(v), ColumnData::Ints(_)) => match col.fold_i64(*v) {
                        Some(folded) => CandDim::Int(folded),
                        None => return false,
                    },
                    (Value::Int64(v), ColumnData::Floats(_)) => {
                        if !int_is_f64_exact(*v) {
                            return false;
                        }
                        CandDim::Float(col.fold_f64(*v as f64))
                    }
                    (Value::Float64(v), ColumnData::Floats(_)) => CandDim::Float(col.fold_f64(*v)),
                    (Value::Float64(v), ColumnData::Ints(_)) => {
                        // Exact only when the float is an in-range integer;
                        // otherwise fall back to the scalar comparison.
                        if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v < i64::MAX as f64 + 1.0 {
                            match col.fold_i64(*v as i64) {
                                Some(folded) => CandDim::Int(folded),
                                None => return false,
                            }
                        } else {
                            return false;
                        }
                    }
                    // Any remaining combination compares `None` under
                    // `sql_compare` (Utf8 vs numeric, Boolean vs Int64, …):
                    // NULL-like for the pair, for every row of the column.
                    _ => {
                        if self.incomplete {
                            CandDim::Skip
                        } else {
                            cand.all_incomparable = true;
                            return true;
                        }
                    }
                }
            };
            cand.dims.push(dim);
        }
        true
    }

    /// Test `cand` against every row: `out` receives one [`Dominance`] per
    /// *tested* row, where `out[i]` is `compare(candidate, row_i)` of the
    /// scalar checker.
    ///
    /// With `stop_at_dominator`, scanning stops after the first chunk
    /// containing a row that dominates the candidate (`DominatedBy`) and
    /// its index is reported — the BNL/SFS early exit.
    pub fn compare_batch(
        &self,
        cand: &EncodedCandidate,
        out: &mut Vec<Dominance>,
        stop_at_dominator: bool,
    ) -> BatchResult {
        self.compare_batch_tuned(cand, out, stop_at_dominator, CANDIDATE_FIRST_CHUNK)
    }

    /// [`compare_batch`](Self::compare_batch) with an explicit first-chunk
    /// size — the tuning hook behind [`CANDIDATE_FIRST_CHUNK`] (the
    /// BENCH_PR6 sweep measures candidates through here; production code
    /// uses `compare_batch`).
    pub fn compare_batch_tuned(
        &self,
        cand: &EncodedCandidate,
        out: &mut Vec<Dominance>,
        stop_at_dominator: bool,
        first_chunk: usize,
    ) -> BatchResult {
        out.clear();
        debug_assert!(!self.is_fallback(), "compare_batch on a fallback block");
        if cand.all_incomparable {
            out.resize(self.len, Dominance::Incomparable);
            return BatchResult {
                tested: self.len as u64,
                dominated_at: None,
            };
        }
        let mut tested = 0u64;
        let mut dominated_at = None;
        let mut base = 0;
        let mut width = if stop_at_dominator {
            first_chunk.clamp(1, CHUNK)
        } else {
            CHUNK
        };
        while base < self.len {
            let m = width.min(self.len - base);
            width = (width * 2).min(CHUNK);
            let (a, b, neq) = self.chunk_masks(cand, base, m);
            for k in 0..m {
                let bit = 1u64 << k;
                let outcome = if (!self.incomplete && self.any_null[base + k]) || neq & bit != 0 {
                    Dominance::Incomparable
                } else {
                    match (a & bit != 0, b & bit != 0) {
                        (true, true) => Dominance::Incomparable,
                        (true, false) => Dominance::Dominates,
                        (false, true) => Dominance::DominatedBy,
                        (false, false) => Dominance::Equal,
                    }
                };
                if outcome == Dominance::DominatedBy && dominated_at.is_none() {
                    dominated_at = Some(base + k);
                }
                out.push(outcome);
            }
            tested += m as u64;
            if stop_at_dominator && dominated_at.is_some() {
                break;
            }
            base += m;
        }
        BatchResult {
            tested,
            dominated_at,
        }
    }

    /// Multi-candidate window pass: find, for every candidate lane, the
    /// first block row that strictly dominates it (`DominatedBy`, never
    /// `Equal`), walking the buffers chunk-major so each 64-row chunk is
    /// visited once for all live lanes. A lane goes dead once its
    /// dominator is found; the walk stops — chunk-granular — when every
    /// lane is dead.
    ///
    /// Callers use this as a *pre-pass* and must only rely on strict
    /// dominance being stable, which holds under a transitive relation
    /// (the complete relation, or the incomplete relation within one
    /// null-bitmap class).
    pub fn first_dominators(
        &self,
        cands: &[EncodedCandidate],
        dominated: &mut Vec<Option<usize>>,
    ) -> MultiBatchResult {
        debug_assert!(!self.is_fallback(), "first_dominators on a fallback block");
        dominated.clear();
        dominated.resize(cands.len(), None);
        // All-incomparable candidates (NULL-like under the complete
        // relation) are never dominated; their lanes start dead.
        let mut live = cands.iter().filter(|c| !c.all_incomparable).count();
        let mut tested = 0u64;
        let mut base = 0;
        while base < self.len && live > 0 {
            let m = CHUNK.min(self.len - base);
            // Complete relation: rows with NULL-like values dominate
            // nothing, whatever their placeholder buffers say.
            let mut nulls: u64 = 0;
            if !self.incomplete {
                for (k, &n) in self.any_null[base..base + m].iter().enumerate() {
                    nulls |= u64::from(n) << k;
                }
            }
            for (lane, cand) in cands.iter().enumerate() {
                if dominated[lane].is_some() || cand.all_incomparable {
                    continue;
                }
                let (a, b, neq) = self.chunk_masks(cand, base, m);
                tested += m as u64;
                // Strict dominators: row strictly better somewhere, the
                // candidate nowhere, equal on every DIFF dim, NULL-free.
                let dom = b & !a & !neq & !nulls & mask(m);
                if dom != 0 {
                    dominated[lane] = Some(base + dom.trailing_zeros() as usize);
                    live -= 1;
                }
            }
            base += m;
        }
        MultiBatchResult {
            tested,
            lanes: cands.len(),
        }
    }

    /// Candidate-better (`a`), row-better (`b`), and DIFF-inequality
    /// (`neq`) bits for rows `[base, base + m)`, dispatched to the block's
    /// compare tier.
    fn chunk_masks(&self, cand: &EncodedCandidate, base: usize, m: usize) -> (u64, u64, u64) {
        match self.tier {
            KernelTier::Chunked => self.chunk_masks_chunked(cand, base, m),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => self.chunk_masks_simd(cand, base, m, false),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => self.chunk_masks_simd(cand, base, m, true),
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.chunk_masks_chunked(cand, base, m),
        }
    }

    /// Portable chunked-scalar mask loop — the PR 2 kernel, kept verbatim
    /// per ranked column; the differential oracle for the SIMD tiers.
    fn chunk_masks_chunked(
        &self,
        cand: &EncodedCandidate,
        base: usize,
        m: usize,
    ) -> (u64, u64, u64) {
        // Candidate-better / row-better / DIFF-inequality bits,
        // accumulated per dim over the chunk's contiguous buffer slice.
        let mut a: u64 = 0;
        let mut b: u64 = 0;
        let mut neq: u64 = 0;
        for (col, dim) in self.cols.iter().zip(&cand.dims) {
            match (&col.data, dim) {
                (ColumnData::Ints(buf), CandDim::Int(v))
                | (ColumnData::Bools(buf), CandDim::Int(v)) => {
                    if col.is_diff {
                        for (k, &x) in buf[base..base + m].iter().enumerate() {
                            neq |= u64::from(x != *v) << k;
                        }
                    } else {
                        for (k, &x) in buf[base..base + m].iter().enumerate() {
                            a |= u64::from(*v < x) << k;
                            b |= u64::from(x < *v) << k;
                        }
                    }
                }
                (ColumnData::Floats(buf), CandDim::Float(v)) => {
                    if col.is_diff {
                        for (k, &x) in buf[base..base + m].iter().enumerate() {
                            neq |= u64::from(x != *v) << k;
                        }
                    } else {
                        for (k, &x) in buf[base..base + m].iter().enumerate() {
                            a |= u64::from(*v < x) << k;
                            b |= u64::from(x < *v) << k;
                        }
                    }
                }
                (_, CandDim::Skip) | (ColumnData::Pending, _) => {}
                mismatch => unreachable!("encode/class invariant violated: {mismatch:?}"),
            }
        }
        (a, b, neq)
    }

    /// SIMD mask computation: AVX2 four-lane compares when `avx2`,
    /// otherwise the SSE2 baseline tier (two-lane floats, chunked
    /// integers).
    #[cfg(target_arch = "x86_64")]
    fn chunk_masks_simd(
        &self,
        cand: &EncodedCandidate,
        base: usize,
        m: usize,
        avx2: bool,
    ) -> (u64, u64, u64) {
        let mut a: u64 = 0;
        let mut b: u64 = 0;
        let mut neq: u64 = 0;
        for (col, dim) in self.cols.iter().zip(&cand.dims) {
            match (&col.data, dim) {
                (ColumnData::Ints(buf), CandDim::Int(v))
                | (ColumnData::Bools(buf), CandDim::Int(v)) => {
                    let s = &buf[base..base + m];
                    if avx2 {
                        // SAFETY: the `Avx2` tier is only resolved after
                        // `is_x86_feature_detected!("avx2")`.
                        unsafe {
                            if col.is_diff {
                                simd::diff_i64_avx2(s, *v, &mut neq);
                            } else {
                                simd::ranked_i64_avx2(s, *v, &mut a, &mut b);
                            }
                        }
                    } else if col.is_diff {
                        for (k, &x) in s.iter().enumerate() {
                            neq |= u64::from(x != *v) << k;
                        }
                    } else {
                        for (k, &x) in s.iter().enumerate() {
                            a |= u64::from(*v < x) << k;
                            b |= u64::from(x < *v) << k;
                        }
                    }
                }
                (ColumnData::Floats(buf), CandDim::Float(v)) => {
                    let s = &buf[base..base + m];
                    if avx2 {
                        // SAFETY: as above — `Avx2` implies runtime
                        // detection succeeded.
                        unsafe {
                            if col.is_diff {
                                simd::diff_f64_avx2(s, *v, &mut neq);
                            } else {
                                simd::ranked_f64_avx2(s, *v, &mut a, &mut b);
                            }
                        }
                    } else if col.is_diff {
                        simd::diff_f64_sse2(s, *v, &mut neq);
                    } else {
                        simd::ranked_f64_sse2(s, *v, &mut a, &mut b);
                    }
                }
                (_, CandDim::Skip) | (ColumnData::Pending, _) => {}
                mismatch => unreachable!("encode/class invariant violated: {mismatch:?}"),
            }
        }
        (a, b, neq)
    }
}

/// Struct-of-arrays block of plain `f64` points in folded ("smaller is
/// better") space — the grid partitioner's cell corners live here, so the
/// corner-dominance pruning pass runs on the same chunked kernel as the
/// row windows.
#[derive(Debug, Clone)]
pub struct PointBlock {
    dims: usize,
    len: usize,
    cols: Vec<Vec<f64>>,
    tier: KernelTier,
}

impl PointBlock {
    /// Empty block of `dims`-dimensional points, tier auto-detected.
    pub fn new(dims: usize) -> Self {
        PointBlock::with_tier(dims, KernelTier::detect())
    }

    /// Empty block dispatching to the tier the `kernel` knob resolves to.
    pub fn with_kernel(dims: usize, kernel: DominanceKernel) -> Self {
        PointBlock::with_tier(dims, KernelTier::resolve(kernel))
    }

    /// Empty block pinned to an explicit compare tier.
    pub fn with_tier(dims: usize, tier: KernelTier) -> Self {
        PointBlock {
            dims,
            len: 0,
            cols: (0..dims).map(|_| Vec::new()).collect(),
            tier,
        }
    }

    /// Resolved compare tier of this block.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Whether comparisons run on a SIMD tier.
    pub fn is_simd(&self) -> bool {
        self.tier.is_simd()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one point.
    pub fn push(&mut self, point: &[f64]) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        for (col, &v) in self.cols.iter_mut().zip(point) {
            col.push(v);
        }
        self.len += 1;
    }

    /// First stored point that strictly dominates `point` (component-wise
    /// `<=` everywhere and `<` somewhere, smaller-is-better), plus the
    /// number of point-vs-point tests performed (chunk-granular early
    /// exit).
    pub fn first_dominator(&self, point: &[f64]) -> (u64, Option<usize>) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let mut tested = 0u64;
        let mut base = 0;
        while base < self.len {
            let m = CHUNK.min(self.len - base);
            let (a, b) = self.point_masks(point, base, m);
            tested += m as u64;
            // Dominator: never better on the candidate side, strictly
            // better somewhere on the stored side.
            let dominators = b & !a & mask(m);
            if dominators != 0 {
                return (tested, Some(base + dominators.trailing_zeros() as usize));
            }
            base += m;
        }
        (tested, None)
    }

    /// Multi-point variant of [`first_dominator`](Self::first_dominator):
    /// one chunk-major walk over the stored points serves every query
    /// point, with per-lane early exit and a chunk-granular stop once all
    /// lanes found a dominator. Returns the number of point-vs-point tests
    /// performed.
    pub fn first_dominators(&self, points: &[&[f64]], dominated: &mut Vec<Option<usize>>) -> u64 {
        for p in points {
            assert_eq!(p.len(), self.dims, "point dimensionality mismatch");
        }
        dominated.clear();
        dominated.resize(points.len(), None);
        let mut live = points.len();
        let mut tested = 0u64;
        let mut base = 0;
        while base < self.len && live > 0 {
            let m = CHUNK.min(self.len - base);
            for (lane, point) in points.iter().enumerate() {
                if dominated[lane].is_some() {
                    continue;
                }
                let (a, b) = self.point_masks(point, base, m);
                tested += m as u64;
                let dom = b & !a & mask(m);
                if dom != 0 {
                    dominated[lane] = Some(base + dom.trailing_zeros() as usize);
                    live -= 1;
                }
            }
            base += m;
        }
        tested
    }

    /// Query-better (`a`) / stored-better (`b`) bits for points
    /// `[base, base + m)`, dispatched to the block's compare tier.
    fn point_masks(&self, point: &[f64], base: usize, m: usize) -> (u64, u64) {
        let mut a: u64 = 0; // candidate strictly better somewhere
        let mut b: u64 = 0; // stored point strictly better somewhere
        match self.tier {
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => {
                for (col, &v) in self.cols.iter().zip(point) {
                    // SAFETY: the `Avx2` tier is only resolved after
                    // `is_x86_feature_detected!("avx2")`.
                    unsafe {
                        simd::ranked_f64_avx2(&col[base..base + m], v, &mut a, &mut b);
                    }
                }
            }
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => {
                for (col, &v) in self.cols.iter().zip(point) {
                    simd::ranked_f64_sse2(&col[base..base + m], v, &mut a, &mut b);
                }
            }
            _ => {
                for (col, &v) in self.cols.iter().zip(point) {
                    for (k, &x) in col[base..base + m].iter().enumerate() {
                        a |= u64::from(v < x) << k;
                        b |= u64::from(x < v) << k;
                    }
                }
            }
        }
        (a, b)
    }
}

fn mask(m: usize) -> u64 {
    if m >= 64 {
        u64::MAX
    } else {
        (1u64 << m) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::SkylineDim;

    fn spec_mm() -> SkylineSpec {
        SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::max(1)])
    }

    fn block_of(rows: &[Row], incomplete: bool) -> ColumnarBlock {
        let mut b = ColumnarBlock::new(&spec_mm(), incomplete);
        for r in rows {
            b.push(r);
        }
        b
    }

    fn int_row(a: i64, b: i64) -> Row {
        Row::new(vec![Value::Int64(a), Value::Int64(b)])
    }

    /// Oracle: batch outcomes must equal the scalar checker pairwise.
    fn assert_agrees(rows: &[Row], cand: &Row, incomplete: bool) {
        let checker = if incomplete {
            DominanceChecker::incomplete(spec_mm())
        } else {
            DominanceChecker::complete(spec_mm())
        };
        let block = block_of(rows, incomplete);
        assert!(!block.is_fallback(), "{:?}", block.fallback_reason());
        let enc = block.encode(cand).expect("encodable candidate");
        let mut out = Vec::new();
        let res = block.compare_batch(&enc, &mut out, false);
        assert_eq!(res.tested, rows.len() as u64);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                out[i],
                checker.compare(cand, row),
                "row {i}: cand={cand} row={row}"
            );
        }
    }

    #[test]
    fn batch_matches_scalar_on_ints() {
        let rows: Vec<Row> = (0..10).map(|i| int_row(i, 10 - i)).collect();
        for c in [int_row(0, 10), int_row(5, 5), int_row(9, 9), int_row(4, 2)] {
            assert_agrees(&rows, &c, false);
        }
    }

    #[test]
    fn batch_matches_scalar_on_floats_and_mixed() {
        let rows = vec![
            Row::new(vec![Value::Float64(1.5), Value::Int64(3)]),
            Row::new(vec![Value::Int64(2), Value::Int64(9)]),
            Row::new(vec![Value::Float64(0.25), Value::Float64(-2.0)]),
        ];
        let c = Row::new(vec![Value::Float64(1.0), Value::Float64(3.0)]);
        assert_agrees(&rows, &c, false);
    }

    #[test]
    fn complete_null_rows_are_incomparable() {
        let rows = vec![
            int_row(1, 1),
            Row::new(vec![Value::Null, Value::Int64(99)]),
            Row::new(vec![Value::Int64(0), Value::Float64(f64::NAN)]),
        ];
        // NaN promotes the second column to floats before the NaN row; use
        // a float column from the start.
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|r| {
                Row::new(
                    r.values()
                        .iter()
                        .map(|v| match v {
                            Value::Int64(i) => Value::Float64(*i as f64),
                            other => other.clone(),
                        })
                        .collect(),
                )
            })
            .collect();
        assert_agrees(
            &rows,
            &Row::new(vec![Value::Float64(0.0), Value::Float64(0.0)]),
            false,
        );
    }

    #[test]
    fn null_candidate_is_incomparable_to_everything() {
        let rows: Vec<Row> = (0..70).map(|i| int_row(i, i)).collect();
        let block = block_of(&rows, false);
        let cand = Row::new(vec![Value::Null, Value::Int64(5)]);
        let enc = block.encode(&cand).unwrap();
        let mut out = Vec::new();
        let res = block.compare_batch(&enc, &mut out, true);
        assert_eq!(res.dominated_at, None);
        assert!(out.iter().all(|&o| o == Dominance::Incomparable));
    }

    #[test]
    fn early_exit_stops_at_dominator_chunk() {
        // Row 3 dominates the candidate; with 200 rows, the scan must stop
        // after the first (progressively sized) chunk.
        let mut rows: Vec<Row> = vec![int_row(9, 1), int_row(8, 2), int_row(9, 3), int_row(0, 99)];
        rows.extend((0..200).map(|i| int_row(50 + i, 50)));
        let block = block_of(&rows, false);
        let enc = block.encode(&int_row(5, 5)).unwrap();
        let mut out = Vec::new();
        let res = block.compare_batch(&enc, &mut out, true);
        assert_eq!(res.dominated_at, Some(3));
        assert_eq!(res.tested, 4);
        assert_eq!(out.len(), 4);
        // Without the early exit the whole window is tested.
        let res = block.compare_batch(&enc, &mut out, false);
        assert_eq!(res.tested, rows.len() as u64);
        assert_eq!(out.len(), rows.len());
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let rows: Vec<Row> = (0..5).map(|i| int_row(i, i)).collect();
        let block = block_of(&rows, false);
        let mut cand = EncodedCandidate::new();
        assert!(block.encode_into(&int_row(2, 2), &mut cand));
        let mut out = Vec::new();
        block.compare_batch(&cand, &mut out, false);
        assert_eq!(out[2], Dominance::Equal);
        // A NULL candidate flips the buffer to all-incomparable.
        assert!(block.encode_into(&Row::new(vec![Value::Null, Value::Int64(1)]), &mut cand));
        block.compare_batch(&cand, &mut out, false);
        assert!(out.iter().all(|&o| o == Dominance::Incomparable));
    }

    #[test]
    fn retain_mirrors_vec_semantics() {
        let mut rows: Vec<Row> = (0..6).map(|i| int_row(i, 5 - i)).collect();
        let mut block = block_of(&rows, false);
        let mut k = 0;
        rows.retain(|_| {
            let keep = k % 2 == 0;
            k += 1;
            keep
        });
        block.retain(|i| i % 2 == 0);
        assert_eq!(block.len(), rows.len());
        let checker = DominanceChecker::complete(spec_mm());
        let cand = int_row(3, 3);
        let enc = block.encode(&cand).unwrap();
        let mut out = Vec::new();
        block.compare_batch(&enc, &mut out, false);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out[i], checker.compare(&cand, row));
        }
    }

    #[test]
    fn remove_mirrors_vec_semantics() {
        let mut rows: Vec<Row> = (0..5).map(|i| int_row(i, i)).collect();
        let mut block = block_of(&rows, false);
        rows.remove(1);
        block.remove(1);
        let checker = DominanceChecker::complete(spec_mm());
        let cand = int_row(2, 2);
        let enc = block.encode(&cand).unwrap();
        let mut out = Vec::new();
        block.compare_batch(&enc, &mut out, false);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out[i], checker.compare(&cand, row));
        }
    }

    #[test]
    fn empty_spec_falls_back() {
        let block = ColumnarBlock::new(&SkylineSpec::new(vec![]), false);
        assert!(block.is_fallback());
    }

    #[test]
    fn diff_dims_stay_on_fast_path() {
        let spec = SkylineSpec::new(vec![SkylineDim::diff(0), SkylineDim::min(1)]);
        let checker = DominanceChecker::complete(spec.clone());
        for tier in KernelTier::available() {
            let mut block = ColumnarBlock::with_tier(&spec, false, tier);
            let rows: Vec<Row> = (0..70)
                .map(|i| Row::new(vec![Value::Int64(i % 3), Value::Int64(70 - i)]))
                .collect();
            for r in &rows {
                block.push(r);
            }
            assert!(!block.is_fallback(), "{:?}", block.fallback_reason());
            let mut out = Vec::new();
            for c in 0..6 {
                let cand = Row::new(vec![Value::Int64(c % 3), Value::Int64(30 + c)]);
                let enc = block.encode(&cand).expect("encodable DIFF candidate");
                block.compare_batch(&enc, &mut out, false);
                for (i, row) in rows.iter().enumerate() {
                    assert_eq!(
                        out[i],
                        checker.compare(&cand, row),
                        "tier {tier:?} cand={cand} row={row}"
                    );
                }
            }
        }
    }

    #[test]
    fn float_diff_dims_match_scalar() {
        let spec = SkylineSpec::new(vec![SkylineDim::diff(0), SkylineDim::min(1)]);
        let checker = DominanceChecker::complete(spec.clone());
        for tier in KernelTier::available() {
            let mut block = ColumnarBlock::with_tier(&spec, false, tier);
            let rows: Vec<Row> = (0..9)
                .map(|i| {
                    Row::new(vec![
                        Value::Float64(f64::from(i % 2) * 0.5),
                        Value::Float64(f64::from(9 - i)),
                    ])
                })
                .collect();
            for r in &rows {
                block.push(r);
            }
            assert!(!block.is_fallback());
            let cand = Row::new(vec![Value::Float64(0.5), Value::Float64(4.0)]);
            let enc = block.encode(&cand).unwrap();
            let mut out = Vec::new();
            block.compare_batch(&enc, &mut out, false);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(out[i], checker.compare(&cand, row), "tier {tier:?}");
            }
        }
    }

    #[test]
    fn non_numeric_diff_demotes_block() {
        let spec = SkylineSpec::new(vec![SkylineDim::diff(0), SkylineDim::min(1)]);
        let mut block = ColumnarBlock::new(&spec, false);
        block.push(&Row::new(vec![Value::str("group-a"), Value::Int64(1)]));
        assert!(block.is_fallback());
    }

    /// Deterministic pseudo-random mixed dataset exercising ints, floats,
    /// NULLs, and ties across > 64 rows.
    fn mixed_rows(n: usize) -> Vec<Row> {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let a = next();
                let b = next();
                let v0 = if a % 11 == 0 {
                    Value::Null
                } else {
                    Value::Float64((a % 100) as f64 / 4.0)
                };
                let v1 = Value::Float64((b % 50) as f64);
                Row::new(vec![v0, v1])
            })
            .collect()
    }

    #[test]
    fn all_tiers_produce_identical_outcomes() {
        let rows = mixed_rows(150);
        let cands = mixed_rows(40);
        let mut oracle: Option<Vec<Vec<Dominance>>> = None;
        for tier in KernelTier::available() {
            let mut block = ColumnarBlock::with_tier(&spec_mm(), false, tier);
            for r in &rows {
                block.push(r);
            }
            assert!(!block.is_fallback());
            let mut all = Vec::new();
            let mut out = Vec::new();
            for c in &cands {
                let enc = block.encode(c).unwrap();
                block.compare_batch(&enc, &mut out, false);
                all.push(out.clone());
            }
            match &oracle {
                None => oracle = Some(all),
                Some(expected) => assert_eq!(expected, &all, "tier {tier:?} diverged"),
            }
        }
    }

    #[test]
    fn first_dominators_matches_single_candidate_scans() {
        let rows = mixed_rows(200);
        let cands = mixed_rows(20);
        for tier in KernelTier::available() {
            let mut block = ColumnarBlock::with_tier(&spec_mm(), false, tier);
            for r in &rows {
                block.push(r);
            }
            let encoded: Vec<EncodedCandidate> =
                cands.iter().map(|c| block.encode(c).unwrap()).collect();
            let mut dominated = Vec::new();
            let res = block.first_dominators(&encoded, &mut dominated);
            assert_eq!(res.lanes, cands.len());
            assert!(res.tested > 0);
            let mut out = Vec::new();
            for (lane, enc) in encoded.iter().enumerate() {
                block.compare_batch(enc, &mut out, false);
                let expected = out.iter().position(|&o| o == Dominance::DominatedBy);
                assert_eq!(dominated[lane], expected, "tier {tier:?} lane {lane}");
            }
        }
    }

    #[test]
    fn first_dominators_early_exits_when_all_lanes_die() {
        // Every candidate is dominated by row 0; the walk must stop after
        // the first chunk instead of scanning all 1000 rows.
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&int_row(0, 100));
        for i in 0..1000 {
            block.push(&int_row(50 + i, 50));
        }
        let cands: Vec<EncodedCandidate> = (0..8)
            .map(|i| block.encode(&int_row(10 + i, 10)).unwrap())
            .collect();
        let mut dominated = Vec::new();
        let res = block.first_dominators(&cands, &mut dominated);
        assert!(dominated.iter().all(|d| *d == Some(0)));
        assert_eq!(res.tested, 8 * CHUNK as u64);
    }

    #[test]
    fn first_dominators_never_reports_equal_rows() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&int_row(5, 5));
        let cands = vec![block.encode(&int_row(5, 5)).unwrap()];
        let mut dominated = Vec::new();
        block.first_dominators(&cands, &mut dominated);
        assert_eq!(dominated[0], None);
    }

    #[test]
    fn first_dominators_ignores_null_rows_and_null_candidates() {
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let mut block = ColumnarBlock::new(&spec, false);
        block.push(&Row::new(vec![Value::Null, Value::Float64(0.0)]));
        block.push(&Row::new(vec![Value::Float64(0.0), Value::Float64(0.0)]));
        let cands = vec![
            block
                .encode(&Row::new(vec![Value::Float64(5.0), Value::Float64(5.0)]))
                .unwrap(),
            block
                .encode(&Row::new(vec![Value::Null, Value::Float64(9.0)]))
                .unwrap(),
        ];
        let mut dominated = Vec::new();
        block.first_dominators(&cands, &mut dominated);
        // The NULL row (index 0) dominates nothing; row 1 dominates the
        // first candidate. The NULL candidate is incomparable to all.
        assert_eq!(dominated, vec![Some(1), None]);
    }

    #[test]
    fn kernel_labels_are_stable() {
        assert_eq!(kernel_label(DominanceKernel::Scalar), "scalar");
        assert_eq!(kernel_label(DominanceKernel::Chunked), "chunked");
        let auto = kernel_label(DominanceKernel::Auto);
        if KernelTier::detect().is_simd() {
            assert!(auto.starts_with("simd("), "{auto}");
            assert!(auto.ends_with(&format!("lanes={MULTI_LANES}")), "{auto}");
        } else {
            assert_eq!(auto, "chunked");
        }
        assert_eq!(auto, kernel_label(DominanceKernel::Simd));
    }

    #[test]
    fn utf8_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::str("x"), Value::Int64(1)]));
        assert!(block.is_fallback());
    }

    #[test]
    fn bool_int_mix_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::Boolean(true), Value::Int64(1)]));
        block.push(&int_row(3, 4));
        assert!(block.is_fallback());
    }

    #[test]
    fn huge_int_in_float_column_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::Float64(1.0), Value::Int64(0)]));
        block.push(&Row::new(vec![
            Value::Int64((1i64 << 60) + 1),
            Value::Int64(0),
        ]));
        assert!(block.is_fallback());
    }

    #[test]
    fn i64_max_in_float_column_demotes_block() {
        // `i64::MAX as f64` rounds up to 2^63 and the saturating cast back
        // hides it; the kernel must treat i64::MAX as inexact or it would
        // compare equal to Float64(2^63) where the scalar checker says
        // Incomparable-breaking Greater.
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::Float64(1.0e10), Value::Int64(0)]));
        block.push(&Row::new(vec![Value::Int64(i64::MAX), Value::Int64(0)]));
        assert!(block.is_fallback());
        // Same as an already-float column's candidate.
        let block = block_of(
            &[Row::new(vec![
                Value::Float64(9_223_372_036_854_775_808.0),
                Value::Int64(0),
            ])],
            false,
        );
        assert!(block
            .encode(&Row::new(vec![Value::Int64(i64::MAX), Value::Int64(0)]))
            .is_none());
        // End to end, batched must still equal scalar via the fallback.
        let rows = vec![
            Row::new(vec![Value::Float64(1.0e10), Value::Int64(100)]),
            Row::new(vec![Value::Int64(i64::MAX), Value::Int64(3)]),
            Row::new(vec![
                Value::Float64(9_223_372_036_854_775_808.0),
                Value::Int64(2),
            ]),
        ];
        let checker = DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
        ]));
        let mut s1 = crate::SkylineStats::default();
        let scalar = crate::bnl_skyline(rows.clone(), &checker, &mut s1);
        let mut s2 = crate::SkylineStats::default();
        let batched = crate::bnl_skyline_batched(rows, &checker, &mut s2);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn i64_min_under_max_dim_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), false);
        block.push(&Row::new(vec![Value::Int64(0), Value::Int64(i64::MIN)]));
        assert!(block.is_fallback());
    }

    #[test]
    fn incomplete_mixed_null_column_demotes_block() {
        let mut block = ColumnarBlock::new(&spec_mm(), true);
        block.push(&Row::new(vec![Value::Null, Value::Int64(1)]));
        block.push(&int_row(1, 2));
        assert!(block.is_fallback());
    }

    #[test]
    fn incomplete_all_null_column_is_skipped() {
        // One null-bitmap class: dim 0 NULL everywhere, dim 1 ranked MAX.
        let rows = vec![
            Row::new(vec![Value::Null, Value::Int64(5)]),
            Row::new(vec![Value::Null, Value::Int64(9)]),
        ];
        let checker = DominanceChecker::incomplete(spec_mm());
        let mut block = ColumnarBlock::new(&spec_mm(), true);
        for r in &rows {
            block.push(r);
        }
        assert!(!block.is_fallback());
        let cand = Row::new(vec![Value::Null, Value::Int64(7)]);
        let enc = block.encode(&cand).unwrap();
        let mut out = Vec::new();
        block.compare_batch(&enc, &mut out, false);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out[i], checker.compare(&cand, row));
        }
    }

    #[test]
    fn non_integral_float_candidate_on_int_column_needs_scalar() {
        let block = block_of(&[int_row(1, 1)], false);
        let cand = Row::new(vec![Value::Float64(1.5), Value::Int64(0)]);
        assert!(block.encode(&cand).is_none());
    }

    #[test]
    fn point_block_finds_first_dominator() {
        let mut pb = PointBlock::new(2);
        pb.push(&[5.0, 5.0]); // incomparable corner
        pb.push(&[2.0, 2.0]); // dominator
        pb.push(&[0.0, 0.0]); // also a dominator, but later
        let (tested, hit) = pb.first_dominator(&[3.0, 3.0]);
        assert_eq!(hit, Some(1));
        assert_eq!(tested, 3);
        // Equal corner is not a strict dominator.
        let (_, none) = pb.first_dominator(&[0.0, 0.0]);
        assert_eq!(none, None);
    }

    #[test]
    fn point_block_early_exits_between_chunks() {
        let mut pb = PointBlock::new(2);
        for i in 0..70 {
            pb.push(&[100.0 + i as f64, 100.0]);
        }
        pb.push(&[0.0, 0.0]);
        for _ in 0..70 {
            pb.push(&[100.0, 100.0]);
        }
        let (tested, hit) = pb.first_dominator(&[50.0, 50.0]);
        assert_eq!(hit, Some(70));
        assert_eq!(tested, 128);
    }

    #[test]
    fn point_block_tiers_and_multi_agree() {
        let mut points: Vec<Vec<f64>> = Vec::new();
        let mut state = 1u64;
        for _ in 0..150 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = (state >> 33) % 100;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let y = (state >> 33) % 100;
            points.push(vec![x as f64, y as f64]);
        }
        let queries: Vec<Vec<f64>> = points
            .iter()
            .take(30)
            .map(|p| vec![p[0] + 1.0, p[1] + 1.0])
            .collect();
        let mut oracle: Option<Vec<Option<usize>>> = None;
        for tier in KernelTier::available() {
            let mut pb = PointBlock::with_tier(2, tier);
            for p in &points {
                pb.push(p);
            }
            // Single-point scans agree across tiers...
            let singles: Vec<Option<usize>> =
                queries.iter().map(|q| pb.first_dominator(q).1).collect();
            match &oracle {
                None => oracle = Some(singles.clone()),
                Some(expected) => assert_eq!(expected, &singles, "tier {tier:?} diverged"),
            }
            // ...and the multi-point walk matches them lane for lane.
            let refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
            let mut dominated = Vec::new();
            let tested = pb.first_dominators(&refs, &mut dominated);
            assert!(tested > 0);
            assert_eq!(dominated, singles, "tier {tier:?}");
        }
    }
}
