//! Tuple dominance testing (paper Definition 3.1 and its incomplete-data
//! modification from §3).

use std::cmp::Ordering;

use sparkline_common::{Row, SkylineSpec, SkylineType, Value};

/// Outcome of comparing two tuples on the skyline dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// The left tuple dominates the right one (`l ≺ r`).
    Dominates,
    /// The right tuple dominates the left one (`r ≺ l`).
    DominatedBy,
    /// All *compared* dimensions are pairwise equal — neither tuple is
    /// strictly better. Relevant for `SKYLINE OF DISTINCT` handling.
    Equal,
    /// Neither tuple dominates the other.
    Incomparable,
}

/// Counters recorded while running a skyline algorithm. The paper uses the
/// number of dominance tests as the main cost factor of skyline
/// computation (§2); the benchmark harness reports them alongside time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkylineStats {
    /// Number of pairwise dominance tests performed.
    pub dominance_tests: u64,
    /// Largest window (complete BNL) or candidate set (incomplete global)
    /// observed, in tuples.
    pub max_window: usize,
    /// Dominance tests answered by the columnar batch kernel
    /// (`columnar::ColumnarBlock`). Always `<= dominance_tests`.
    pub batched_tests: u64,
    /// Dominance tests answered by the scalar [`DominanceChecker`] —
    /// either because the scalar path was selected or because the columnar
    /// kernel fell back. Always `<= dominance_tests`.
    pub scalar_tests: u64,
    /// Times `sfs_skyline` discarded its sort work and re-ran BNL because
    /// a row did not admit the monotone scoring function.
    pub sfs_fallbacks: u64,
    /// Dominance tests answered on an explicit-SIMD compare tier. Always
    /// `<= batched_tests` (SIMD tests are batched tests).
    pub simd_tests: u64,
    /// Multi-candidate window passes performed
    /// (`columnar::ColumnarBlock::first_dominators` and the `PointBlock`
    /// grid-corner variant): one walk over a block's buffers amortized
    /// across up to `columnar::MULTI_LANES` candidates.
    pub multi_candidate_passes: u64,
}

impl SkylineStats {
    /// Merge another stats record into this one (used when combining the
    /// per-partition statistics of the distributed local phase).
    pub fn merge(&mut self, other: &SkylineStats) {
        self.dominance_tests += other.dominance_tests;
        self.max_window = self.max_window.max(other.max_window);
        self.batched_tests += other.batched_tests;
        self.scalar_tests += other.scalar_tests;
        self.sfs_fallbacks += other.sfs_fallbacks;
        self.simd_tests += other.simd_tests;
        self.multi_candidate_passes += other.multi_candidate_passes;
    }

    /// Record `n` dominance tests performed by the columnar batch kernel
    /// on its portable (chunked) tier.
    pub fn add_batched(&mut self, n: u64) {
        self.dominance_tests += n;
        self.batched_tests += n;
    }

    /// Record `n` dominance tests performed by the columnar batch kernel,
    /// attributing them to the SIMD counter when the block's resolved
    /// tier is a SIMD one.
    pub fn add_block_tests(&mut self, n: u64, simd: bool) {
        self.dominance_tests += n;
        self.batched_tests += n;
        if simd {
            self.simd_tests += n;
        }
    }

    /// Record one multi-candidate window pass of `tested` pairwise tests.
    pub fn add_multi_pass(&mut self, tested: u64, simd: bool) {
        self.add_block_tests(tested, simd);
        self.multi_candidate_passes += 1;
    }

    /// Record one dominance test performed by the scalar checker.
    pub fn add_scalar(&mut self) {
        self.dominance_tests += 1;
        self.scalar_tests += 1;
    }
}

/// The dominance test of Definition 3.1, resolved against row positions.
///
/// The checker is constructed once per skyline operator and then applied to
/// every pair of tuples; it mirrors the paper's "new utility … which takes
/// as input the values and types of the skyline dimensions of two tuples
/// and checks if one tuple dominates the other" (§5.5). Comparisons match
/// on the value's type directly (no casting of column data).
///
/// With `incomplete` set, the comparison of two tuples is restricted to the
/// dimensions where **both** are non-NULL, which is the modified dominance
/// relation for incomplete data (§3). Note that this relation is *not*
/// transitive and admits cycles, so algorithms must not delete dominated
/// tuples prematurely (Appendix A).
#[derive(Debug, Clone)]
pub struct DominanceChecker {
    spec: SkylineSpec,
    incomplete: bool,
}

impl DominanceChecker {
    /// Checker using the complete-data dominance relation.
    pub fn complete(spec: SkylineSpec) -> Self {
        DominanceChecker {
            spec,
            incomplete: false,
        }
    }

    /// Checker using the incomplete-data (NULL-restricted) relation.
    pub fn incomplete(spec: SkylineSpec) -> Self {
        DominanceChecker {
            spec,
            incomplete: true,
        }
    }

    /// The skyline specification this checker implements.
    pub fn spec(&self) -> &SkylineSpec {
        &self.spec
    }

    /// Whether `SKYLINE OF DISTINCT` deduplication is requested.
    pub fn distinct(&self) -> bool {
        self.spec.distinct
    }

    /// Whether the incomplete-data relation is in effect.
    pub fn is_incomplete(&self) -> bool {
        self.incomplete
    }

    /// Compare tuples `a` and `b` on the skyline dimensions.
    pub fn compare(&self, a: &Row, b: &Row) -> Dominance {
        let mut a_better = false;
        let mut b_better = false;
        for dim in &self.spec.dims {
            let (va, vb) = (a.get(dim.index), b.get(dim.index));
            match va.sql_compare(vb) {
                None => {
                    if self.incomplete {
                        // At least one side is NULL: the comparison is
                        // restricted to dimensions where both are non-NULL,
                        // so this dimension is skipped entirely.
                        continue;
                    }
                    // Complete-data relation with a NULL (or incomparable
                    // types, which the analyzer rules out): the tuples are
                    // incomparable. This is the safe answer — it can only
                    // enlarge the skyline, never drop a valid tuple.
                    return Dominance::Incomparable;
                }
                Some(Ordering::Equal) => {}
                Some(ord) => match dim.ty {
                    SkylineType::Diff => return Dominance::Incomparable,
                    SkylineType::Min => {
                        if ord == Ordering::Less {
                            a_better = true;
                        } else {
                            b_better = true;
                        }
                    }
                    SkylineType::Max => {
                        if ord == Ordering::Greater {
                            a_better = true;
                        } else {
                            b_better = true;
                        }
                    }
                },
            }
            if a_better && b_better {
                return Dominance::Incomparable;
            }
        }
        match (a_better, b_better) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            (false, false) => Dominance::Equal,
            (true, true) => unreachable!("early return above"),
        }
    }

    /// `a ≺ b` under this checker's relation.
    pub fn dominates(&self, a: &Row, b: &Row) -> bool {
        self.compare(a, b) == Dominance::Dominates
    }

    /// Whether the two tuples have *identical* values in every skyline
    /// dimension (NULL counts as identical to NULL). This — not
    /// [`Dominance::Equal`], which only looks at the compared dimensions —
    /// is the condition under which `SKYLINE OF DISTINCT` keeps a single
    /// representative.
    pub fn identical_dims(&self, a: &Row, b: &Row) -> bool {
        self.spec
            .dims
            .iter()
            .all(|d| a.get(d.index) == b.get(d.index))
    }

    /// The grouping key for `DISTINCT` deduplication: the values of all
    /// skyline dimensions.
    pub fn dim_values(&self, row: &Row) -> Vec<Value> {
        self.spec
            .dims
            .iter()
            .map(|d| row.get(d.index).clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::SkylineDim;

    fn row(vals: &[Option<i64>]) -> Row {
        Row::new(
            vals.iter()
                .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
                .collect(),
        )
    }

    fn min_min() -> DominanceChecker {
        DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
        ]))
    }

    #[test]
    fn strictly_better_in_one_at_least_as_good_elsewhere() {
        let c = min_min();
        let a = row(&[Some(1), Some(2)]);
        let b = row(&[Some(1), Some(3)]);
        assert_eq!(c.compare(&a, &b), Dominance::Dominates);
        assert_eq!(c.compare(&b, &a), Dominance::DominatedBy);
        assert!(c.dominates(&a, &b));
        assert!(!c.dominates(&b, &a));
    }

    #[test]
    fn trade_off_is_incomparable() {
        let c = min_min();
        let a = row(&[Some(1), Some(5)]);
        let b = row(&[Some(2), Some(3)]);
        assert_eq!(c.compare(&a, &b), Dominance::Incomparable);
    }

    #[test]
    fn equal_tuples() {
        let c = min_min();
        let a = row(&[Some(1), Some(2)]);
        assert_eq!(c.compare(&a, &a.clone()), Dominance::Equal);
        assert!(c.identical_dims(&a, &a.clone()));
    }

    #[test]
    fn max_direction() {
        let c = DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::max(1),
        ]));
        // Cheaper and better rated dominates.
        let a = row(&[Some(50), Some(9)]);
        let b = row(&[Some(80), Some(7)]);
        assert_eq!(c.compare(&a, &b), Dominance::Dominates);
    }

    #[test]
    fn diff_dimension_partitions_comparability() {
        let c = DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::diff(0),
            SkylineDim::min(1),
        ]));
        let a = row(&[Some(1), Some(10)]);
        let b = row(&[Some(1), Some(20)]);
        let other_group = row(&[Some(2), Some(99)]);
        assert_eq!(c.compare(&a, &b), Dominance::Dominates);
        assert_eq!(c.compare(&a, &other_group), Dominance::Incomparable);
        assert_eq!(c.compare(&other_group, &b), Dominance::Incomparable);
    }

    #[test]
    fn complete_checker_treats_null_as_incomparable() {
        let c = min_min();
        let a = row(&[Some(1), None]);
        let b = row(&[Some(2), Some(3)]);
        assert_eq!(c.compare(&a, &b), Dominance::Incomparable);
    }

    #[test]
    fn incomplete_restricts_to_shared_non_null_dims() {
        let c = DominanceChecker::incomplete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::min(2),
        ]));
        // Paper §3 example: a=(1,*,10), b=(3,2,*), c=(*,5,3) forms a cycle.
        let a = row(&[Some(1), None, Some(10)]);
        let b = row(&[Some(3), Some(2), None]);
        let cc = row(&[None, Some(5), Some(3)]);
        assert_eq!(c.compare(&a, &b), Dominance::Dominates); // 1 < 3 on dim 0
        assert_eq!(c.compare(&b, &cc), Dominance::Dominates); // 2 < 5 on dim 1
        assert_eq!(c.compare(&cc, &a), Dominance::Dominates); // 3 < 10 on dim 2
        assert_eq!(c.compare(&a, &cc), Dominance::DominatedBy);
    }

    #[test]
    fn incomplete_no_shared_dims_is_equal_not_dominated() {
        let c = DominanceChecker::incomplete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
        ]));
        let a = row(&[Some(1), None]);
        let b = row(&[None, Some(1)]);
        // No dimension where both are non-NULL: restricted comparison is
        // vacuous, neither is strictly better anywhere.
        assert_eq!(c.compare(&a, &b), Dominance::Equal);
        assert!(!c.dominates(&a, &b));
        assert!(!c.dominates(&b, &a));
        // But the tuples are not identical for DISTINCT purposes.
        assert!(!c.identical_dims(&a, &b));
    }

    #[test]
    fn incomplete_diff_dim_restricted() {
        let c = DominanceChecker::incomplete(SkylineSpec::new(vec![
            SkylineDim::diff(0),
            SkylineDim::min(1),
        ]));
        // DIFF dim is NULL on one side: restriction skips it, dominance can
        // still arise from dim 1.
        let a = row(&[None, Some(1)]);
        let b = row(&[Some(7), Some(2)]);
        assert_eq!(c.compare(&a, &b), Dominance::Dominates);
        // DIFF dim present on both sides and different: incomparable.
        let a2 = row(&[Some(5), Some(1)]);
        assert_eq!(c.compare(&a2, &b), Dominance::Incomparable);
    }

    #[test]
    fn identical_dims_with_nulls() {
        let c = min_min();
        let a = row(&[Some(1), None]);
        let b = row(&[Some(1), None]);
        assert!(c.identical_dims(&a, &b));
        assert_eq!(c.dim_values(&a), vec![Value::Int64(1), Value::Null]);
    }

    #[test]
    fn dimension_order_does_not_change_outcome() {
        let fwd = DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::max(1),
        ]));
        let rev = DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::max(1),
            SkylineDim::min(0),
        ]));
        let a = row(&[Some(1), Some(5)]);
        let b = row(&[Some(2), Some(5)]);
        assert_eq!(fwd.compare(&a, &b), rev.compare(&a, &b));
    }

    #[test]
    fn mixed_int_float_dimensions() {
        let c = DominanceChecker::complete(SkylineSpec::new(vec![SkylineDim::min(0)]));
        let a = Row::new(vec![Value::Float64(1.5)]);
        let b = Row::new(vec![Value::Int64(2)]);
        assert_eq!(c.compare(&a, &b), Dominance::Dominates);
    }

    #[test]
    fn stats_merge() {
        let mut a = SkylineStats {
            dominance_tests: 10,
            max_window: 4,
            batched_tests: 6,
            scalar_tests: 4,
            sfs_fallbacks: 1,
            simd_tests: 3,
            multi_candidate_passes: 2,
        };
        let b = SkylineStats {
            dominance_tests: 5,
            max_window: 9,
            batched_tests: 0,
            scalar_tests: 5,
            sfs_fallbacks: 2,
            simd_tests: 0,
            multi_candidate_passes: 1,
        };
        a.merge(&b);
        assert_eq!(a.dominance_tests, 15);
        assert_eq!(a.max_window, 9);
        assert_eq!(a.batched_tests, 6);
        assert_eq!(a.scalar_tests, 9);
        assert_eq!(a.sfs_fallbacks, 3);
        assert_eq!(a.simd_tests, 3);
        assert_eq!(a.multi_candidate_passes, 3);
    }

    #[test]
    fn stats_kernel_helpers() {
        let mut s = SkylineStats::default();
        s.add_block_tests(10, false);
        assert_eq!(
            (s.dominance_tests, s.batched_tests, s.simd_tests),
            (10, 10, 0)
        );
        s.add_block_tests(5, true);
        assert_eq!(
            (s.dominance_tests, s.batched_tests, s.simd_tests),
            (15, 15, 5)
        );
        s.add_multi_pass(64, true);
        assert_eq!(s.multi_candidate_passes, 1);
        assert_eq!(s.simd_tests, 69);
        assert_eq!(s.dominance_tests, 79);
    }
}
