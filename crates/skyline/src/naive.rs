//! Naive O(n²) skyline oracle, straight from Definition 3.2:
//! `SKY(R) = { r ∈ R | ¬∃ s ∈ R : s ≺ r }`.
//!
//! Used as ground truth by unit, integration, and property-based tests.
//! It is deliberately unoptimized and handles both dominance relations
//! (complete and incomplete) because it never deletes anything during the
//! scan — each membership test quantifies over the *entire* input.

use std::collections::HashSet;

use sparkline_common::{Row, Value};

use crate::dominance::DominanceChecker;

/// Compute the skyline by testing every tuple against every other tuple.
///
/// With `checker.distinct()`, one representative is kept per distinct
/// combination of skyline-dimension values (the first in input order),
/// matching `SKYLINE OF DISTINCT`.
pub fn naive_skyline(rows: &[Row], checker: &DominanceChecker) -> Vec<Row> {
    let mut result: Vec<Row> = Vec::new();
    let mut seen_dims: HashSet<Vec<Value>> = HashSet::new();
    for (i, candidate) in rows.iter().enumerate() {
        let dominated = rows
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && checker.dominates(other, candidate));
        if dominated {
            continue;
        }
        if checker.distinct() && !seen_dims.insert(checker.dim_values(candidate)) {
            continue;
        }
        result.push(candidate.clone());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{SkylineDim, SkylineSpec};

    fn row(vals: &[Option<i64>]) -> Row {
        Row::new(
            vals.iter()
                .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
                .collect(),
        )
    }

    #[test]
    fn matches_definition_on_simple_input() {
        let checker = DominanceChecker::complete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
        ]));
        let rows = vec![
            row(&[Some(1), Some(3)]),
            row(&[Some(2), Some(2)]),
            row(&[Some(3), Some(1)]),
            row(&[Some(3), Some(3)]), // dominated by (2,2)
        ];
        let sky = naive_skyline(&rows, &checker);
        assert_eq!(sky.len(), 3);
    }

    #[test]
    fn identical_tuples_do_not_dominate_each_other() {
        let checker = DominanceChecker::complete(SkylineSpec::new(vec![SkylineDim::min(0)]));
        let rows = vec![row(&[Some(1)]), row(&[Some(1)])];
        assert_eq!(naive_skyline(&rows, &checker).len(), 2);
    }

    #[test]
    fn distinct_keeps_first_representative() {
        let checker = DominanceChecker::complete(SkylineSpec::distinct(vec![SkylineDim::min(0)]));
        let r1 = Row::new(vec![Value::Int64(1), Value::str("keep")]);
        let r2 = Row::new(vec![Value::Int64(1), Value::str("drop")]);
        let sky = naive_skyline(&[r1.clone(), r2], &checker);
        assert_eq!(sky, vec![r1]);
    }

    #[test]
    fn incomplete_cycle_is_empty() {
        let checker = DominanceChecker::incomplete(SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::min(2),
        ]));
        let rows = vec![
            row(&[Some(1), None, Some(10)]),
            row(&[Some(3), Some(2), None]),
            row(&[None, Some(5), Some(3)]),
        ];
        assert!(naive_skyline(&rows, &checker).is_empty());
    }
}
