#![warn(missing_docs)]

//! # sparkline-skyline
//!
//! Engine-independent skyline (Pareto-front) algorithms, implemented
//! directly from *"Integration of Skyline Queries into Spark SQL"*
//! (EDBT 2023):
//!
//! * [`dominance`] — the tuple dominance test of Definition 3.1, in both
//!   the complete and the incomplete (NULL-aware) variant, with
//!   type-matched comparisons.
//! * [`bnl`] — the Block-Nested-Loop skyline algorithm of Börzsönyi et
//!   al. used for local and global skylines on complete data (§5.6).
//! * [`columnar`] — the struct-of-arrays dominance kernel: row windows are
//!   transposed into sign-normalized `i64`/`f64` column buffers once, and
//!   candidates are tested against the whole window in chunked or
//!   explicit-SIMD passes (AVX2/SSE2, runtime-dispatched), one candidate
//!   at a time or [`columnar::MULTI_LANES`] at once; the batched BNL/SFS
//!   variants, the pre-filter, the incomplete family's class blocks, and
//!   the grid partitioner's corner pruning run on it.
//! * [`incomplete`] — null-bitmap partitioning and the all-pairs,
//!   deferred-deletion global skyline for incomplete data (§5.7 and
//!   Lemma 5.1); the mergeable bitmap-class-aware partial results that
//!   turn that global phase into a hierarchical tree merge (see the
//!   module docs for the soundness argument); plus the intentionally
//!   faulty premature-deletion variant of Appendix A used to demonstrate
//!   the cyclic-dominance pitfall.
//! * [`maintain`] — incremental skyline maintenance under INSERT/DELETE:
//!   a k-skyband of per-tuple dominator counts over the columnar kernel,
//!   applying each mutation as a delta and returning the skyline
//!   change-set (complete relations only — see the module docs for the
//!   erosion-budget soundness argument).
//! * [`prefilter`] — representative-point pre-filtering (Ciaccia &
//!   Martinenghi): the skyline of a seeded input sample, encoded once into
//!   the columnar kernel, discards strictly dominated tuples during the
//!   scan before they reach any BNL window (complete data only — see the
//!   module docs for the soundness argument).
//! * [`naive`] — an O(n²) oracle straight from Definition 3.2, used by the
//!   test suites as ground truth.
//!
//! All algorithms operate on plain [`sparkline_common::Row`]s and a
//! resolved [`sparkline_common::SkylineSpec`]; the physical operators in
//! `sparkline-physical` wire them into the distributed runtime.

pub mod bnl;
pub mod columnar;
pub mod dominance;
pub mod incomplete;
pub mod maintain;
pub mod naive;
pub mod prefilter;
pub mod sfs;

pub use bnl::{
    bnl_skyline, bnl_skyline_batched, bnl_skyline_into, bnl_skyline_into_batched,
    bnl_skyline_into_kernel, bnl_skyline_kernel, BnlBuilder,
};
pub use columnar::{
    kernel_label, BatchResult, ColumnarBlock, EncodedCandidate, KernelTier, MultiBatchResult,
    PointBlock, CANDIDATE_FIRST_CHUNK, CHUNK, MULTI_LANES,
};
pub use dominance::{Dominance, DominanceChecker, SkylineStats};
pub use incomplete::{
    incomplete_global_skyline, incomplete_skyline, merge_incomplete_partials,
    merge_incomplete_partials_kernel, null_bitmap, partition_by_null_bitmap,
    premature_deletion_global_skyline, GroupedBnlBuilder, IncompletePartial,
    IncompletePartialBuilder,
};
pub use maintain::{MaintainedSkyline, SkylineDelta};
pub use naive::naive_skyline;
pub use prefilter::{representative_points, RepresentativeFilter};
pub use sfs::{monotone_score, sfs_skyline, sfs_skyline_batched, sfs_skyline_kernel};
