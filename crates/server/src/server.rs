//! The TCP layer: an accept loop handing each connection its own
//! thread, speaking the line protocol over buffered reads/writes. All
//! semantics (admission, caches, cancellation) live in
//! [`QueryService`]; this module only frames bytes.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::protocol::{parse_request, sanitize_line, Request};
use crate::service::{QueryService, ServerConfig};

/// A running server: an accept-loop thread plus one thread per live
/// connection. Dropping it shuts the listener down.
pub struct SkylineServer {
    service: Arc<QueryService>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SkylineServer {
    /// Bind a loopback listener on an OS-chosen port and start serving
    /// a fresh service built from `config`.
    pub fn start(config: ServerConfig) -> std::io::Result<SkylineServer> {
        Self::start_with_service(QueryService::new(config))
    }

    /// Bind and serve an existing service (whose catalog may already
    /// hold tables).
    pub fn start_with_service(service: Arc<QueryService>) -> std::io::Result<SkylineServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_service = Arc::clone(&service);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // A line protocol sends many small writes (ACK, header,
                // rows); Nagle would hold each behind the peer's delayed
                // ACK, adding ~40 ms per flush.
                let _ = stream.set_nodelay(true);
                let service = Arc::clone(&accept_service);
                std::thread::spawn(move || {
                    // A vanished client is not a server error; any other
                    // I/O failure also just ends this connection.
                    let _ = handle_connection(&service, stream);
                });
            }
        });
        Ok(SkylineServer {
            service,
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (e.g. to register tables or read stats).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Stop accepting connections and join the accept loop. Existing
    /// connections finish on their own threads as their clients
    /// disconnect.
    pub fn shutdown(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SkylineServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one connection until `QUIT`, EOF, or an I/O error.
fn handle_connection(service: &QueryService, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(Request::Query(sql)) => {
                let id = service.register_query();
                // ACK first: the id must reach the client while the
                // query runs, or cancel-by-id could never race it.
                writeln!(writer, "ACK {id}")?;
                writer.flush()?;
                match service.run_query(id, &sql) {
                    Ok(reply) => {
                        writeln!(
                            writer,
                            "OK {id} rows={} plan={} result={}",
                            reply.rows.len(),
                            reply.plan.label(),
                            reply.result.label()
                        )?;
                        for row in reply.rows.iter() {
                            writeln!(writer, "{row}")?;
                        }
                        writeln!(writer, "END")?;
                    }
                    Err(e) => writeln!(writer, "ERR {id} {}", sanitize_line(&e.to_string()))?,
                }
            }
            Ok(Request::Cancel(id)) => {
                let delivered = service.cancel_query(id);
                writeln!(writer, "OK cancel {id} delivered={delivered}")?;
            }
            Ok(Request::Insert { table, rows }) => match service.insert(&table, &rows) {
                Ok(count) => writeln!(writer, "OK insert {table} rows={count}")?,
                Err(e) => writeln!(writer, "ERR - {}", sanitize_line(&e.to_string()))?,
            },
            Ok(Request::Delete { table, predicate }) => {
                match service.delete(&table, predicate.as_deref()) {
                    Ok(count) => writeln!(writer, "OK delete {table} rows={count}")?,
                    Err(e) => writeln!(writer, "ERR - {}", sanitize_line(&e.to_string()))?,
                }
            }
            Ok(Request::Drop(table)) => {
                let existed = service.drop_table(&table);
                writeln!(writer, "OK drop {table} existed={existed}")?;
            }
            Ok(Request::Tables) => {
                writeln!(writer, "OK tables {}", service.table_names().join(","))?;
            }
            Ok(Request::Stats) => writeln!(writer, "OK stats {}", service.stats_line())?,
            Ok(Request::Ping) => writeln!(writer, "OK pong")?,
            Ok(Request::Quit) => {
                writeln!(writer, "OK bye")?;
                writer.flush()?;
                break;
            }
            Err(e) => writeln!(writer, "ERR - {}", sanitize_line(&e.to_string()))?,
        }
        writer.flush()?;
    }
    Ok(())
}
