//! Request parsing, SQL normalization, and row rendering — the pure
//! (socket-free) half of the wire protocol, unit-testable without a
//! server.

use sparkline::{DataType, Error, QueryResult, Result, Row, Schema, Value};

/// A parsed client request (one wire line).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `QUERY <sql>` — execute SQL, answered with `ACK <id>` then the
    /// outcome.
    Query(String),
    /// `CANCEL <id>` — request cancellation of a running query.
    Cancel(u64),
    /// `INSERT <table> <row>[;<row>...]` — append literal rows.
    Insert {
        /// Target table name.
        table: String,
        /// Rows as unparsed literal strings (parsed against the table
        /// schema by the service).
        rows: Vec<Vec<String>>,
    },
    /// `DELETE <table> [<predicate>]` — delete the rows matching the
    /// predicate (all rows when absent).
    Delete {
        /// Target table name.
        table: String,
        /// Predicate text (parsed as a SQL expression by the service);
        /// `None` deletes every row.
        predicate: Option<String>,
    },
    /// `DROP <table>` — drop a table.
    Drop(String),
    /// `TABLES` — list registered tables.
    Tables,
    /// `STATS` — service counters.
    Stats,
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — close the connection.
    Quit,
}

/// Parse one request line. Errors are client-facing messages.
pub fn parse_request(line: &str) -> Result<Request> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" => {
            if rest.is_empty() {
                return Err(Error::plan("QUERY requires SQL text"));
            }
            Ok(Request::Query(rest.to_string()))
        }
        "CANCEL" => {
            let id = rest.parse::<u64>().map_err(|_| {
                Error::plan(format!("CANCEL requires a numeric query id, got '{rest}'"))
            })?;
            Ok(Request::Cancel(id))
        }
        "INSERT" => {
            let (table, rows_text) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| Error::plan("INSERT requires a table name and rows"))?;
            let rows = split_outside_literals(rows_text, ';')?
                .iter()
                .map(|row| {
                    Ok(split_outside_literals(row, ',')?
                        .iter()
                        .map(|v| v.trim().to_string())
                        .collect())
                })
                .collect::<Result<Vec<Vec<String>>>>()?;
            Ok(Request::Insert {
                table: table.to_string(),
                rows,
            })
        }
        "DELETE" => {
            if rest.is_empty() {
                return Err(Error::plan("DELETE requires a table name"));
            }
            let (table, predicate_text) = match rest.split_once(char::is_whitespace) {
                Some((t, p)) => (t, p.trim()),
                None => (rest, ""),
            };
            // The same literal-aware scanner that splits INSERT rows
            // validates the predicate: quotes must balance, and a
            // trailing `;` outside any literal is tolerated (stray text
            // after it is not).
            let parts = split_outside_literals(predicate_text, ';')?;
            if parts[1..].iter().any(|p| !p.trim().is_empty()) {
                return Err(Error::plan(
                    "DELETE predicate must be a single expression (stray ';')",
                ));
            }
            let predicate = parts[0].trim();
            Ok(Request::Delete {
                table: table.to_string(),
                predicate: (!predicate.is_empty()).then(|| predicate.to_string()),
            })
        }
        "DROP" => {
            if rest.is_empty() {
                return Err(Error::plan("DROP requires a table name"));
            }
            Ok(Request::Drop(rest.to_string()))
        }
        "TABLES" => Ok(Request::Tables),
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        other => Err(Error::plan(format!("unknown request verb '{other}'"))),
    }
}

/// Split `text` on the occurrences of `sep` *outside* single-quoted
/// string literals, with doubled-quote `''` escapes kept inside their
/// literal — the same literal scanning as [`normalize_sql`], so a value
/// like `'Hotel, The'` or `'a;b'` survives `INSERT` row splitting
/// intact. Always returns at least one (possibly empty) part; an
/// unterminated literal is a client error.
fn split_outside_literals(text: &str, sep: char) -> Result<Vec<String>> {
    let mut parts = vec![String::new()];
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == sep {
            parts.push(String::new());
        } else if c == '\'' {
            let part = parts.last_mut().expect("parts is never empty");
            part.push('\'');
            let mut closed = false;
            while let Some(lc) = chars.next() {
                part.push(lc);
                if lc == '\'' {
                    if chars.peek() == Some(&'\'') {
                        // Escaped quote: consume the second half and
                        // stay inside the literal.
                        part.push(chars.next().expect("peeked"));
                    } else {
                        closed = true;
                        break;
                    }
                }
            }
            if !closed {
                return Err(Error::plan(format!(
                    "unterminated string literal in '{text}'"
                )));
            }
        } else {
            parts.last_mut().expect("parts is never empty").push(c);
        }
    }
    Ok(parts)
}

/// Normalize SQL for cache keying: lowercase and collapse whitespace
/// runs *outside* string literals (doubled-quote `''` escapes kept
/// intact, so `'it''s'` stays one literal), trim, and drop trailing
/// semicolons. Two spellings of the same query share one cache entry;
/// queries differing only inside a literal do not collide.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if c == '\'' {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push('\'');
            while let Some(lc) = chars.next() {
                out.push(lc);
                if lc == '\'' {
                    if chars.peek() == Some(&'\'') {
                        // Escaped quote: consume the second half and
                        // stay inside the literal.
                        out.push(chars.next().unwrap());
                    } else {
                        break;
                    }
                }
            }
        } else if c.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.extend(c.to_lowercase());
        }
    }
    while out.ends_with(';') {
        out.pop();
        while out.ends_with(' ') {
            out.pop();
        }
    }
    out
}

/// Render result rows as the wire body: one line per row, values
/// tab-separated in their canonical `Display` form. The single
/// rendering used for live results, cached results, and the direct
/// `SessionContext` comparison in tests — byte-identity across cache
/// hits and misses holds by construction.
pub fn render_rows(result: &QueryResult) -> Vec<String> {
    render_plain_rows(&result.rows)
}

/// Render bare rows with the same formatting as [`render_rows`] — the
/// maintained-view layer uses this so a delta-refreshed cache entry is
/// rendered identically to an engine-produced one.
pub fn render_plain_rows(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .map(|row| {
            row.values()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

/// Parse `INSERT` literal rows against a table schema. Literals:
/// `NULL` (case-insensitive), integers, floats, `'quoted text'` (with
/// `''` escapes) or bare text for string columns, `true`/`false` for
/// booleans.
pub fn parse_literal_rows(table: &str, schema: &Schema, rows: &[Vec<String>]) -> Result<Vec<Row>> {
    rows.iter()
        .map(|literals| {
            if literals.len() != schema.len() {
                return Err(Error::plan(format!(
                    "table '{table}': INSERT row has {} values, schema has {} columns",
                    literals.len(),
                    schema.len()
                )));
            }
            let values = literals
                .iter()
                .zip(schema.fields())
                .map(|(lit, field)| parse_literal(lit, field.data_type(), field.name()))
                .collect::<Result<Vec<Value>>>()?;
            Ok(Row::new(values))
        })
        .collect()
}

fn parse_literal(lit: &str, ty: DataType, column: &str) -> Result<Value> {
    if lit.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    let parse_err =
        |lit: &str| Error::plan(format!("column '{column}': cannot parse '{lit}' as {ty}"));
    match ty {
        DataType::Int64 => lit
            .parse::<i64>()
            .map(Value::Int64)
            .map_err(|_| parse_err(lit)),
        DataType::Float64 => lit
            .parse::<f64>()
            .map(Value::Float64)
            .map_err(|_| parse_err(lit)),
        DataType::Boolean => match lit.to_ascii_lowercase().as_str() {
            "true" => Ok(Value::Boolean(true)),
            "false" => Ok(Value::Boolean(false)),
            _ => Err(parse_err(lit)),
        },
        DataType::Utf8 => {
            let text = if lit.len() >= 2 && lit.starts_with('\'') && lit.ends_with('\'') {
                lit[1..lit.len() - 1].replace("''", "'")
            } else {
                lit.to_string()
            };
            Ok(Value::str(text))
        }
        DataType::Null => Ok(Value::Null),
    }
}

/// Fold a (possibly multi-line) error message onto one wire line.
pub fn sanitize_line(message: &str) -> String {
    message.replace(['\r', '\n'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline::Field;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request("query SELECT 1 FROM t").unwrap(),
            Request::Query("SELECT 1 FROM t".to_string())
        );
        assert_eq!(parse_request("CANCEL 42").unwrap(), Request::Cancel(42));
        assert_eq!(
            parse_request("INSERT hotels 1,2.5,'x';3,NULL,'y'").unwrap(),
            Request::Insert {
                table: "hotels".to_string(),
                rows: vec![
                    vec!["1".into(), "2.5".into(), "'x'".into()],
                    vec!["3".into(), "NULL".into(), "'y'".into()],
                ],
            }
        );
        assert_eq!(
            parse_request("DROP hotels").unwrap(),
            Request::Drop("hotels".to_string())
        );
        assert_eq!(parse_request("tables").unwrap(), Request::Tables);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
        assert!(parse_request("EXPLODE now").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("CANCEL abc").is_err());
    }

    #[test]
    fn insert_splitting_is_quote_aware() {
        // Regression: a Utf8 literal containing ',' or ';' must not be
        // torn into extra values or rows.
        assert_eq!(
            parse_request("INSERT hotels 1,'Hotel, The';2,'a;b'").unwrap(),
            Request::Insert {
                table: "hotels".to_string(),
                rows: vec![
                    vec!["1".into(), "'Hotel, The'".into()],
                    vec!["2".into(), "'a;b'".into()],
                ],
            }
        );
        // Escaped quotes stay inside their literal.
        assert_eq!(
            parse_request("INSERT t 1,'it''s, fine'").unwrap(),
            Request::Insert {
                table: "t".to_string(),
                rows: vec![vec!["1".into(), "'it''s, fine'".into()]],
            }
        );
        // An unterminated literal is a client error, not a silent tear.
        assert!(parse_request("INSERT t 1,'oops").is_err());
    }

    #[test]
    fn delete_verb_parses() {
        assert_eq!(
            parse_request("DELETE hotels price > 100;").unwrap(),
            Request::Delete {
                table: "hotels".to_string(),
                predicate: Some("price > 100".to_string()),
            }
        );
        assert_eq!(
            parse_request("delete hotels").unwrap(),
            Request::Delete {
                table: "hotels".to_string(),
                predicate: None,
            }
        );
        // The predicate scanner is literal-aware: ';' inside a literal
        // is fine, a stray one outside is not, unbalanced quotes error.
        assert_eq!(
            parse_request("DELETE t name = 'a;b'").unwrap(),
            Request::Delete {
                table: "t".to_string(),
                predicate: Some("name = 'a;b'".to_string()),
            }
        );
        assert!(parse_request("DELETE t a = 1; b = 2").is_err());
        assert!(parse_request("DELETE t name = 'oops").is_err());
        assert!(parse_request("DELETE").is_err());
    }

    #[test]
    fn normalization_collapses_outside_literals_only() {
        assert_eq!(
            normalize_sql("  SELECT  *\n FROM   Hotels ; "),
            "select * from hotels"
        );
        // Literal content (case, spacing) is preserved.
        assert_eq!(
            normalize_sql("SELECT * FROM t WHERE city = 'Graz  AT'"),
            "select * from t where city = 'Graz  AT'"
        );
        // Doubled-quote escape does not end the literal: the AND here is
        // literal text and must keep its case.
        assert_eq!(
            normalize_sql("SELECT 'it''s  AND' FROM t"),
            "select 'it''s  AND' from t"
        );
        // Distinct literals must not collide after normalization.
        assert_ne!(
            normalize_sql("SELECT 'A' FROM t"),
            normalize_sql("SELECT 'a' FROM t")
        );
    }

    #[test]
    fn literal_row_parsing() {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("price", DataType::Float64, true),
            Field::new("name", DataType::Utf8, true),
        ]);
        let rows = parse_literal_rows(
            "t",
            &schema,
            &[vec!["7".into(), "null".into(), "'it''s'".into()]],
        )
        .unwrap();
        assert_eq!(
            rows[0].values(),
            &[Value::Int64(7), Value::Null, Value::str("it's")]
        );
        assert!(parse_literal_rows("t", &schema, &[vec!["7".into()]]).is_err());
        assert!(
            parse_literal_rows("t", &schema, &[vec!["x".into(), "1".into(), "y".into()]]).is_err()
        );
    }
}
