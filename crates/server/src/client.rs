//! A small blocking client for the wire protocol, used by the
//! integration tests and the ext10 bench harness (and handy from
//! examples). One `ServerClient` wraps one connection; it is not
//! thread-safe — open one per client thread, as a real tenant would.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use sparkline::{Error, Result};

/// A successful `QUERY` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// Server-assigned query id (from the `ACK`).
    pub id: u64,
    /// Rendered result rows (tab-separated values, one string per
    /// row) — the byte-identity payload.
    pub rows: Vec<String>,
    /// Plan-cache outcome: `hit`, `miss`, or `skip`.
    pub plan_cache: String,
    /// Result-cache outcome: `hit` or `miss`.
    pub result_cache: String,
}

/// One blocking protocol connection.
pub struct ServerClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServerClient {
    /// Connect to a running [`crate::SkylineServer`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<ServerClient> {
        let stream = TcpStream::connect(addr)?;
        // Line-protocol writes are small; without nodelay each one can
        // stall ~40 ms behind the peer's delayed ACK.
        stream.set_nodelay(true)?;
        Ok(ServerClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send_line(&mut self, line: &str) -> Result<()> {
        writeln!(self.writer, "{line}")
            .and_then(|_| self.writer.flush())
            .map_err(|e| Error::execution(format!("client write failed: {e}")))
    }

    fn read_line(&mut self) -> Result<String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| Error::execution(format!("client read failed: {e}")))?;
        if n == 0 {
            return Err(Error::execution("server closed the connection"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Send `QUERY <sql>` and read only the `ACK`, returning the query
    /// id while the query still runs. Pair with
    /// [`finish_query`](Self::finish_query); between the two, another
    /// connection may `CANCEL` this id.
    pub fn send_query(&mut self, sql: &str) -> Result<u64> {
        self.send_line(&format!("QUERY {sql}"))?;
        let ack = self.read_line()?;
        match ack.strip_prefix("ACK ") {
            Some(id) => id
                .trim()
                .parse::<u64>()
                .map_err(|_| Error::execution(format!("malformed ACK line: '{ack}'"))),
            None => Err(Error::execution(format!("expected ACK, got '{ack}'"))),
        }
    }

    /// Read the outcome of a query begun with
    /// [`send_query`](Self::send_query).
    pub fn finish_query(&mut self, id: u64) -> Result<QueryResponse> {
        let header = self.read_line()?;
        if let Some(rest) = header.strip_prefix("ERR ") {
            let message = rest.split_once(' ').map(|(_, m)| m).unwrap_or(rest);
            return Err(Error::execution(message.to_string()));
        }
        let fields: Vec<&str> = header.split_whitespace().collect();
        // "OK <id> rows=<n> plan=<p> result=<r>"
        if fields.len() != 5 || fields[0] != "OK" {
            return Err(Error::execution(format!("malformed header: '{header}'")));
        }
        let field = |prefix: &str, s: &str| -> Result<String> {
            s.strip_prefix(prefix)
                .map(str::to_string)
                .ok_or_else(|| Error::execution(format!("malformed header field: '{s}'")))
        };
        let n: usize = field("rows=", fields[2])?
            .parse()
            .map_err(|_| Error::execution(format!("malformed row count: '{header}'")))?;
        let plan_cache = field("plan=", fields[3])?;
        let result_cache = field("result=", fields[4])?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(self.read_line()?);
        }
        let end = self.read_line()?;
        if end != "END" {
            return Err(Error::execution(format!("expected END, got '{end}'")));
        }
        Ok(QueryResponse {
            id,
            rows,
            plan_cache,
            result_cache,
        })
    }

    /// Execute SQL and wait for the full response.
    pub fn query(&mut self, sql: &str) -> Result<QueryResponse> {
        let id = self.send_query(sql)?;
        self.finish_query(id)
    }

    /// `CANCEL <id>`: returns whether the server found the query live.
    pub fn cancel(&mut self, id: u64) -> Result<bool> {
        self.send_line(&format!("CANCEL {id}"))?;
        let line = self.read_line()?;
        self.expect_ok(&line)?;
        Ok(line.ends_with("delivered=true"))
    }

    /// `INSERT <table> <rows>`: returns the table's new row count.
    pub fn insert(&mut self, table: &str, rows: &str) -> Result<usize> {
        self.send_line(&format!("INSERT {table} {rows}"))?;
        let line = self.read_line()?;
        self.expect_ok(&line)?;
        line.rsplit_once("rows=")
            .and_then(|(_, n)| n.parse().ok())
            .ok_or_else(|| Error::execution(format!("malformed insert response: '{line}'")))
    }

    /// `DELETE <table> [<predicate>]`: returns the number of removed
    /// rows. `None` deletes every row.
    pub fn delete(&mut self, table: &str, predicate: Option<&str>) -> Result<usize> {
        match predicate {
            Some(pred) => self.send_line(&format!("DELETE {table} {pred}"))?,
            None => self.send_line(&format!("DELETE {table}"))?,
        }
        let line = self.read_line()?;
        self.expect_ok(&line)?;
        line.rsplit_once("rows=")
            .and_then(|(_, n)| n.parse().ok())
            .ok_or_else(|| Error::execution(format!("malformed delete response: '{line}'")))
    }

    /// `DROP <table>`: returns whether the table existed.
    pub fn drop_table(&mut self, table: &str) -> Result<bool> {
        self.send_line(&format!("DROP {table}"))?;
        let line = self.read_line()?;
        self.expect_ok(&line)?;
        Ok(line.ends_with("existed=true"))
    }

    /// `TABLES`: the registered table names.
    pub fn tables(&mut self) -> Result<Vec<String>> {
        self.send_line("TABLES")?;
        let line = self.read_line()?;
        self.expect_ok(&line)?;
        let names = line.strip_prefix("OK tables ").unwrap_or("");
        Ok(names
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect())
    }

    /// `STATS`: the raw counter payload (`key=value` pairs).
    pub fn stats(&mut self) -> Result<String> {
        self.send_line("STATS")?;
        let line = self.read_line()?;
        self.expect_ok(&line)?;
        Ok(line.strip_prefix("OK stats ").unwrap_or(&line).to_string())
    }

    /// `PING` → pong.
    pub fn ping(&mut self) -> Result<()> {
        self.send_line("PING")?;
        let line = self.read_line()?;
        if line == "OK pong" {
            Ok(())
        } else {
            Err(Error::execution(format!("expected pong, got '{line}'")))
        }
    }

    /// `QUIT`: say goodbye and drop the connection.
    pub fn quit(mut self) -> Result<()> {
        self.send_line("QUIT")?;
        let line = self.read_line()?;
        self.expect_ok(&line)
    }

    fn expect_ok(&self, line: &str) -> Result<()> {
        if line.starts_with("OK") {
            Ok(())
        } else {
            let message = line
                .strip_prefix("ERR - ")
                .or_else(|| line.strip_prefix("ERR "))
                .unwrap_or(line);
            Err(Error::execution(message.to_string()))
        }
    }
}
