#![warn(missing_docs)]

//! # sparkline-server
//!
//! A multi-tenant query service in front of the sparkline engine: a
//! long-lived process accepting concurrent SQL over a line-based TCP
//! wire protocol (std-only — the build environment vendors its few
//! external crates, so no async runtime or protocol library is pulled
//! in). Every connection gets its own session over one shared catalog;
//! queries are admitted onto a bounded worker pool with per-query
//! memory budgets, deadlines, and cancel-by-id.
//!
//! ## Wire protocol
//!
//! Requests are single lines, `\n`-terminated; the verb is
//! case-insensitive. Responses are lines too; multi-line responses end
//! with a terminator line so a client never needs length-prefix
//! framing.
//!
//! ```text
//! request   := query | cancel | insert | drop | tables | stats | ping | quit
//! query     := "QUERY" SP sql-text
//! cancel    := "CANCEL" SP query-id
//! insert    := "INSERT" SP table SP row *( ";" row )
//! row       := literal *( "," literal )       ; NULL | int | float | 'text'
//! drop      := "DROP" SP table
//! tables    := "TABLES"
//! stats     := "STATS"
//! ping      := "PING"
//! quit      := "QUIT"
//! ```
//!
//! A `QUERY` is answered with **two** messages: an immediate
//! `ACK <id>` carrying the query id (so another connection can
//! `CANCEL <id>` while it runs), then the outcome —
//!
//! ```text
//! ACK <id>
//! OK <id> rows=<n> plan=<hit|miss|skip> result=<hit|miss>
//! <tab-separated row> × n
//! END
//! ```
//!
//! or `ERR <id> <message>` on failure. All other verbs answer with a
//! single `OK ...` / `ERR - <message>` line. Row payloads render each
//! value with its canonical `Display` form, so a response body is
//! byte-identical to the same query executed directly on a
//! [`sparkline::SessionContext`], regardless of concurrency, retries,
//! or cache hits.
//!
//! ## Admission, budgets, cancellation
//!
//! Executing queries hold one of `max_concurrent_queries` admission
//! permits (result-cache hits are served without a permit — they do no
//! planning or execution). The wait for a permit is sliced and
//! cancel-aware, so a queued query can be cancelled without ever
//! occupying a worker. Each query runs on a session clone sharing the
//! catalog but owning a **fresh cancel flag** — `CANCEL <id>` reaches
//! exactly that query instead of poisoning the connection's session
//! with the sticky session-wide flag — and gets its own
//! `QueryControl` deadline and memory budget from the service's
//! session configuration. Mid-retry backoff waits observe the same
//! flag (`QueryControl::backoff_wait`), so cancellation lands within
//! milliseconds even while a query sleeps between retry attempts.
//!
//! ## Caching and invalidation
//!
//! Two bounded caches sit in front of the pipeline, both keyed on
//! `(normalized SQL, catalog version)`:
//!
//! - the **plan cache** stores analyzed logical plans, skipping
//!   parse + analysis on repeat shapes;
//! - the **result cache** stores fully rendered response bodies — a
//!   skyline is tiny relative to its input and changes only when the
//!   table does, so repeated dashboard-style queries are served
//!   without touching the engine at all.
//!
//! The catalog version is a monotone mutation counter bumped by every
//! `register_table` / `register_disk_table` / `drop_table` / insert /
//! foreign-key path (`SessionCatalog::version`), which makes
//! invalidation implicit: any mutation changes the key under every
//! cached entry. A result is only cached when the version observed
//! *after* execution equals the one the lookup was keyed on, so a
//! mutation racing a query can never pin a stale result under a live
//! key. Normalization lowercases and collapses whitespace **outside**
//! string literals (`''` escapes respected), so `SELECT * FROM t` and
//! `select  *  from  t` share one entry while `'Graz'` and `'graz'`
//! do not.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::{QueryResponse, ServerClient};
pub use protocol::{normalize_sql, render_rows, Request};
pub use server::SkylineServer;
pub use service::{CacheOutcome, QueryService, ServerConfig, ServiceStats};
