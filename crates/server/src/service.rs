//! The query service: shared catalog, admission control, per-query
//! control handles, and the plan/result caches. Socket-free — the TCP
//! layer ([`crate::server`]) and the bench harness both drive this
//! type directly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sparkline::{Error, LogicalPlan, Result, SessionConfig, SessionContext};

use crate::cache::BoundedCache;
use crate::protocol::{normalize_sql, parse_literal_rows, render_rows};

/// How long an admission waiter sleeps between cancellation checks.
const ADMISSION_CHECK_SLICE: Duration = Duration::from_millis(2);

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queries planning/executing at once; the rest queue in a
    /// cancel-aware admission wait. Result-cache hits bypass admission.
    pub max_concurrent_queries: usize,
    /// Entries in the plan cache (0 disables it).
    pub plan_cache_capacity: usize,
    /// Entries in the result cache (0 disables it).
    pub result_cache_capacity: usize,
    /// Per-query execution knobs: every query runs under this
    /// configuration's memory budget, deadline, retry policy, and
    /// executor count (on a session clone with a fresh cancel flag).
    pub session: SessionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent_queries: 4,
            plan_cache_capacity: 256,
            result_cache_capacity: 256,
            session: SessionConfig::default(),
        }
    }
}

/// What a cache did for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Looked up, absent, populated (when still valid).
    Miss,
    /// Never consulted (the plan cache on a result-cache hit).
    Skip,
}

impl CacheOutcome {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Skip => "skip",
        }
    }
}

/// A successful query outcome: the rendered body plus cache telemetry.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Rendered rows (shared with the result cache).
    pub rows: Arc<Vec<String>>,
    /// Plan-cache outcome.
    pub plan: CacheOutcome,
    /// Result-cache outcome.
    pub result: CacheOutcome,
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries finished (ok or error).
    pub queries: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Result-cache misses.
    pub result_misses: u64,
    /// Queries that finished with an error.
    pub errors: u64,
    /// Queries currently registered (queued or executing).
    pub active: u64,
}

#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    errors: AtomicU64,
}

/// Counting semaphore on std primitives (the vendored `parking_lot`
/// stub has no `Condvar`).
#[derive(Debug)]
struct Admission {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Admission {
    fn new(permits: usize) -> Self {
        Admission {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Wait for a permit, polling `cancelled` between short slices so a
    /// queued query can be cancelled without ever holding a worker.
    fn acquire(&self, cancelled: impl Fn() -> bool) -> Result<AdmissionPermit<'_>> {
        let mut permits = self.permits.lock().expect("admission lock poisoned");
        loop {
            if cancelled() {
                return Err(Error::Cancelled);
            }
            if *permits > 0 {
                *permits -= 1;
                return Ok(AdmissionPermit { admission: self });
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(permits, ADMISSION_CHECK_SLICE)
                .expect("admission lock poisoned");
            permits = guard;
        }
    }

    fn release(&self) {
        *self.permits.lock().expect("admission lock poisoned") += 1;
        self.available.notify_one();
    }
}

/// RAII admission permit.
struct AdmissionPermit<'a> {
    admission: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

/// The multi-tenant query service. Cheap to share behind an `Arc`;
/// every public method takes `&self`.
pub struct QueryService {
    base: SessionContext,
    config: ServerConfig,
    admission: Admission,
    next_id: AtomicU64,
    /// Per-query session clones (shared catalog, fresh cancel flag),
    /// registered from ACK until completion so `CANCEL <id>` can reach
    /// a queued or running query from any connection.
    running: Mutex<HashMap<u64, SessionContext>>,
    plan_cache: Mutex<BoundedCache<Arc<LogicalPlan>>>,
    result_cache: Mutex<BoundedCache<Arc<Vec<String>>>>,
    counters: Counters,
}

impl QueryService {
    /// Service over a fresh, empty catalog.
    pub fn new(config: ServerConfig) -> Arc<Self> {
        let base = SessionContext::with_config(config.session.clone());
        Self::with_session(base, config)
    }

    /// Service sharing an existing session's catalog — tests use this
    /// to compare wire responses against direct execution on the same
    /// data.
    pub fn with_session(base: SessionContext, config: ServerConfig) -> Arc<Self> {
        Arc::new(QueryService {
            admission: Admission::new(config.max_concurrent_queries),
            next_id: AtomicU64::new(0),
            running: Mutex::new(HashMap::new()),
            plan_cache: Mutex::new(BoundedCache::new(config.plan_cache_capacity)),
            result_cache: Mutex::new(BoundedCache::new(config.result_cache_capacity)),
            counters: Counters::default(),
            base,
            config,
        })
    }

    /// The session owning the shared catalog (register datasets through
    /// this before serving).
    pub fn session(&self) -> &SessionContext {
        &self.base
    }

    /// Allocate a query id and register its control handle (a session
    /// clone with a fresh cancel flag). Done *before* the `ACK` is
    /// written, so a `CANCEL <id>` racing the query's own execution
    /// always finds the handle.
    pub fn register_query(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let session = self.base.with_shared_catalog(self.config.session.clone());
        self.running
            .lock()
            .expect("running lock poisoned")
            .insert(id, session);
        id
    }

    /// Execute a registered query end-to-end: result cache → admission
    /// → plan cache → engine. Always deregisters the id and updates the
    /// counters, success or not.
    pub fn run_query(&self, id: u64, sql: &str) -> Result<QueryReply> {
        let outcome = self.execute(id, sql);
        self.running
            .lock()
            .expect("running lock poisoned")
            .remove(&id);
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        if outcome.is_err() {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    fn execute(&self, id: u64, sql: &str) -> Result<QueryReply> {
        let session = self
            .running
            .lock()
            .expect("running lock poisoned")
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::internal(format!("query {id} is not registered")))?;
        let normalized = normalize_sql(sql);
        let version = session.catalog_version();
        let key = (normalized, version);

        // A cancel delivered between ACK and here must win over a cache
        // hit — the client asked for the query not to run.
        if session.is_cancelled() {
            return Err(Error::Cancelled);
        }

        if let Some(rows) = self.result_cache.lock().expect("cache lock").get(&key) {
            self.counters.result_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(QueryReply {
                rows,
                plan: CacheOutcome::Skip,
                result: CacheOutcome::Hit,
            });
        }
        self.counters.result_misses.fetch_add(1, Ordering::Relaxed);

        let _permit = self.admission.acquire(|| session.is_cancelled())?;

        let (plan, plan_outcome) = {
            let cached = self.plan_cache.lock().expect("cache lock").get(&key);
            match cached {
                Some(plan) => {
                    self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                    (plan, CacheOutcome::Hit)
                }
                None => {
                    self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
                    let frame = session.sql(sql)?;
                    let plan = Arc::new(frame.logical_plan().clone());
                    // Re-check the version: a mutation may have landed
                    // while we parsed. Only cache a plan analyzed
                    // against the catalog state the key names.
                    if session.catalog_version() == version {
                        self.plan_cache
                            .lock()
                            .expect("cache lock")
                            .insert(key.clone(), Arc::clone(&plan));
                    }
                    (plan, CacheOutcome::Miss)
                }
            }
        };

        let result = session.execute_plan(&plan)?;
        let rows = Arc::new(render_rows(&result));

        // Cache the rendered body only if no mutation raced the
        // execution — otherwise a result computed at version v could be
        // pinned under a key whose version still looks current.
        if session.catalog_version() == version {
            self.result_cache
                .lock()
                .expect("cache lock")
                .insert(key, Arc::clone(&rows));
        }
        Ok(QueryReply {
            rows,
            plan: plan_outcome,
            result: CacheOutcome::Miss,
        })
    }

    /// Deliver a cancel to a queued or running query. Returns whether
    /// the id was live (false: already finished or never existed).
    pub fn cancel_query(&self, id: u64) -> bool {
        let running = self.running.lock().expect("running lock poisoned");
        match running.get(&id) {
            Some(session) => {
                session.cancel();
                true
            }
            None => false,
        }
    }

    /// Append literal rows to a table (parsed against its schema),
    /// bumping the catalog version and retiring stale cache entries.
    pub fn insert(&self, table: &str, literal_rows: &[Vec<String>]) -> Result<usize> {
        let schema = self.base.table(table)?.schema()?;
        let rows = parse_literal_rows(table, &schema, literal_rows)?;
        let count = self.base.insert_rows(table, rows)?;
        self.trim_caches();
        Ok(count)
    }

    /// Drop a table, retiring stale cache entries.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self.base.deregister_table(name);
        if existed {
            self.trim_caches();
        }
        existed
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        self.base.table_names()
    }

    /// Proactively drop cache entries from retired catalog versions.
    /// Correctness never depends on this — stale keys are unreachable
    /// by construction — it only frees their memory early.
    fn trim_caches(&self) {
        let version = self.base.catalog_version();
        self.plan_cache
            .lock()
            .expect("cache lock")
            .retain_version(version);
        self.result_cache
            .lock()
            .expect("cache lock")
            .retain_version(version);
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            plan_hits: self.counters.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.counters.plan_misses.load(Ordering::Relaxed),
            result_hits: self.counters.result_hits.load(Ordering::Relaxed),
            result_misses: self.counters.result_misses.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            active: self.running.lock().expect("running lock poisoned").len() as u64,
        }
    }

    /// The stats as the `OK stats ...` wire line payload.
    pub fn stats_line(&self) -> String {
        let s = self.stats();
        format!(
            "queries={} plan_hits={} plan_misses={} result_hits={} result_misses={} \
             errors={} active={}",
            s.queries,
            s.plan_hits,
            s.plan_misses,
            s.result_hits,
            s.result_misses,
            s.errors,
            s.active
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline::{DataType, Field, Row, Schema, Value};

    fn service() -> Arc<QueryService> {
        let svc = QueryService::new(ServerConfig::default());
        svc.session()
            .register_table(
                "hotels",
                Schema::new(vec![
                    Field::new("price", DataType::Int64, false),
                    Field::new("rating", DataType::Int64, false),
                ]),
                vec![
                    Row::new(vec![Value::Int64(50), Value::Int64(7)]),
                    Row::new(vec![Value::Int64(80), Value::Int64(9)]),
                    Row::new(vec![Value::Int64(90), Value::Int64(6)]),
                ],
            )
            .unwrap();
        svc
    }

    const SKY: &str = "SELECT price, rating FROM hotels SKYLINE OF price MIN, rating MAX";

    #[test]
    fn caches_progress_from_cold_to_hot() {
        let svc = service();
        let id = svc.register_query();
        let cold = svc.run_query(id, SKY).unwrap();
        assert_eq!(cold.plan, CacheOutcome::Miss);
        assert_eq!(cold.result, CacheOutcome::Miss);
        assert_eq!(cold.rows.len(), 2);

        let id = svc.register_query();
        let hot = svc.run_query(id, SKY).unwrap();
        assert_eq!(hot.plan, CacheOutcome::Skip);
        assert_eq!(hot.result, CacheOutcome::Hit);
        assert_eq!(hot.rows, cold.rows, "cached body must be byte-identical");

        // A different spelling of the same query shares the entry.
        let id = svc.register_query();
        let respelled = svc
            .run_query(
                id,
                "select  price,  rating from HOTELS skyline of price min, rating max",
            )
            .unwrap();
        assert_eq!(respelled.result, CacheOutcome::Hit);

        let stats = svc.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.result_hits, 2);
        assert_eq!(stats.result_misses, 1);
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn plan_cache_hit_without_result_hit_after_eviction() {
        let config = ServerConfig {
            result_cache_capacity: 0, // disable result caching
            ..ServerConfig::default()
        };
        let svc = QueryService::with_session(service().session().clone(), config);
        let id = svc.register_query();
        svc.run_query(id, SKY).unwrap();
        let id = svc.register_query();
        let second = svc.run_query(id, SKY).unwrap();
        assert_eq!(second.plan, CacheOutcome::Hit);
        assert_eq!(second.result, CacheOutcome::Miss);
    }

    #[test]
    fn mutations_invalidate_the_result_cache() {
        let svc = service();
        let id = svc.register_query();
        let before = svc.run_query(id, SKY).unwrap();
        assert_eq!(before.rows.len(), 2);

        // (60, 8) joins the Pareto front (incomparable with both current
        // members); the cached body must not survive the insert.
        svc.insert("hotels", &[vec!["60".into(), "8".into()]])
            .unwrap();
        let id = svc.register_query();
        let after = svc.run_query(id, SKY).unwrap();
        assert_eq!(after.result, CacheOutcome::Miss, "stale hit after insert");
        assert_eq!(after.rows.len(), 3);

        // Dropping the table invalidates again: the query now errors.
        assert!(svc.drop_table("hotels"));
        let id = svc.register_query();
        assert!(svc.run_query(id, SKY).is_err());
    }

    #[test]
    fn cancel_before_execution_wins_over_the_cache() {
        let svc = service();
        let id = svc.register_query();
        svc.run_query(id, SKY).unwrap(); // populate the cache
        let id = svc.register_query();
        assert!(svc.cancel_query(id));
        let err = svc.run_query(id, SKY).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        assert!(!svc.cancel_query(id), "finished id no longer cancellable");
    }

    #[test]
    fn errors_are_counted_and_deregistered() {
        let svc = service();
        let id = svc.register_query();
        assert!(svc.run_query(id, "SELECT nope FROM missing").is_err());
        let stats = svc.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.active, 0);
    }
}
