//! The query service: shared catalog, admission control, per-query
//! control handles, and the plan/result caches. Socket-free — the TCP
//! layer ([`crate::server`]) and the bench harness both drive this
//! type directly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sparkline::{Error, Expr, LogicalPlan, Result, Row, SessionConfig, SessionContext};
use sparkline_common::{SkylineDim, SkylineSpec};
use sparkline_skyline::MaintainedSkyline;

use crate::cache::BoundedCache;
use crate::protocol::{normalize_sql, parse_literal_rows, render_plain_rows, render_rows};

/// How long an admission waiter sleeps between cancellation checks.
const ADMISSION_CHECK_SLICE: Duration = Duration::from_millis(2);

/// Skyband depth of maintained views: a view survives up to `k` tracked
/// deletes between rebuilds (the erosion budget — see
/// `sparkline_skyline::maintain`). Deeper bands cost memory on every
/// insert; 8 keeps delete-heavy workloads off the rebuild path without
/// materially growing the band.
const VIEW_SKYBAND_K: u32 = 8;

/// Maximum number of maintained views (one per distinct skyline query
/// shape); installs beyond this are skipped, never evicted mid-flight.
const MAX_VIEWS: usize = 32;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queries planning/executing at once; the rest queue in a
    /// cancel-aware admission wait. Result-cache hits bypass admission.
    pub max_concurrent_queries: usize,
    /// Entries in the plan cache (0 disables it).
    pub plan_cache_capacity: usize,
    /// Entries in the result cache (0 disables it).
    pub result_cache_capacity: usize,
    /// Per-query execution knobs: every query runs under this
    /// configuration's memory budget, deadline, retry policy, and
    /// executor count (on a session clone with a fresh cancel flag).
    pub session: SessionConfig,
    /// Maintain k-skyband state for cached skyline queries so an
    /// INSERT/DELETE through the service refreshes their result-cache
    /// entries by delta instead of discarding the generation. Off, every
    /// mutation recomputes from scratch on the next query (the bench's
    /// comparison baseline).
    pub maintained_views: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent_queries: 4,
            plan_cache_capacity: 256,
            result_cache_capacity: 256,
            session: SessionConfig::default(),
            maintained_views: true,
        }
    }
}

/// What a cache did for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Looked up, absent, populated (when still valid).
    Miss,
    /// Never consulted (the plan cache on a result-cache hit).
    Skip,
}

impl CacheOutcome {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Skip => "skip",
        }
    }
}

/// A successful query outcome: the rendered body plus cache telemetry.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Rendered rows (shared with the result cache).
    pub rows: Arc<Vec<String>>,
    /// Plan-cache outcome.
    pub plan: CacheOutcome,
    /// Result-cache outcome.
    pub result: CacheOutcome,
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries finished (ok or error).
    pub queries: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Result-cache misses.
    pub result_misses: u64,
    /// Queries that finished with a real error (cancellations excluded).
    pub errors: u64,
    /// Queries that finished cancelled at the client's request — not
    /// failures, so they are kept out of `errors`.
    pub cancelled: u64,
    /// Queries currently registered (queued or executing).
    pub active: u64,
}

#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicU64,
}

/// Counting semaphore on std primitives (the vendored `parking_lot`
/// stub has no `Condvar`).
#[derive(Debug)]
struct Admission {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Admission {
    fn new(permits: usize) -> Self {
        Admission {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Wait for a permit, polling `cancelled` between short slices so a
    /// queued query can be cancelled without ever holding a worker.
    fn acquire(&self, cancelled: impl Fn() -> bool) -> Result<AdmissionPermit<'_>> {
        let mut permits = self.permits.lock().expect("admission lock poisoned");
        loop {
            if cancelled() {
                return Err(Error::Cancelled);
            }
            if *permits > 0 {
                *permits -= 1;
                return Ok(AdmissionPermit { admission: self });
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(permits, ADMISSION_CHECK_SLICE)
                .expect("admission lock poisoned");
            permits = guard;
        }
    }

    fn release(&self) {
        *self.permits.lock().expect("admission lock poisoned") += 1;
        self.available.notify_one();
    }
}

/// RAII admission permit.
struct AdmissionPermit<'a> {
    admission: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

/// The multi-tenant query service. Cheap to share behind an `Arc`;
/// every public method takes `&self`.
pub struct QueryService {
    base: SessionContext,
    config: ServerConfig,
    admission: Admission,
    next_id: AtomicU64,
    /// Per-query session clones (shared catalog, fresh cancel flag),
    /// registered from ACK until completion so `CANCEL <id>` can reach
    /// a queued or running query from any connection.
    running: Mutex<HashMap<u64, SessionContext>>,
    plan_cache: Mutex<BoundedCache<Arc<LogicalPlan>>>,
    result_cache: Mutex<BoundedCache<Arc<Vec<String>>>>,
    /// Maintained skyline views, keyed by normalized SQL. Each carries
    /// the k-skyband state that lets a mutation refresh the query's
    /// result-cache entry by delta (see [`MaintainedView`]).
    views: Mutex<HashMap<String, MaintainedView>>,
    /// Serializes service-level mutations (INSERT/DELETE/DROP) so view
    /// state and catalog versions advance in lock step.
    mutation: Mutex<()>,
    counters: Counters,
}

/// The k-skyband state of one cached skyline query, installed on a
/// result-cache miss when the analyzed plan is maintainable
/// (`Skyline` over a pure column projection of a single table scan,
/// complete data). `version` is the catalog version the state mirrors;
/// a mutation whose pre-version does not match (something mutated the
/// catalog behind the service's back) drops the view instead of
/// applying a delta to stale state.
///
/// Installation is self-validating: the view's own rendering of its
/// skyline must be byte-identical to the engine's rendered result
/// before the view is accepted, so a delta-refreshed cache entry can
/// never differ from what a cold recompute would have served.
struct MaintainedView {
    /// Lower-cased catalog table the query scans.
    table: String,
    /// Output column indices of the query's projection (applied to base
    /// rows before they enter the skyband).
    projection: Vec<usize>,
    /// The incremental skyline state over projected rows.
    skyband: MaintainedSkyline,
    /// Catalog version the skyband state corresponds to.
    version: u64,
}

/// What a service mutation did to a table, as the views see it.
enum ViewChange<'a> {
    /// Rows appended (base-table shape, not yet projected).
    Insert(&'a [Row]),
    /// Ascending pre-delete positions of removed rows.
    Delete(&'a [usize]),
    /// The table is gone.
    Drop,
}

impl QueryService {
    /// Service over a fresh, empty catalog.
    pub fn new(config: ServerConfig) -> Arc<Self> {
        let base = SessionContext::with_config(config.session.clone());
        Self::with_session(base, config)
    }

    /// Service sharing an existing session's catalog — tests use this
    /// to compare wire responses against direct execution on the same
    /// data.
    pub fn with_session(base: SessionContext, config: ServerConfig) -> Arc<Self> {
        Arc::new(QueryService {
            admission: Admission::new(config.max_concurrent_queries),
            next_id: AtomicU64::new(0),
            running: Mutex::new(HashMap::new()),
            plan_cache: Mutex::new(BoundedCache::new(config.plan_cache_capacity)),
            result_cache: Mutex::new(BoundedCache::new(config.result_cache_capacity)),
            views: Mutex::new(HashMap::new()),
            mutation: Mutex::new(()),
            counters: Counters::default(),
            base,
            config,
        })
    }

    /// The session owning the shared catalog (register datasets through
    /// this before serving).
    pub fn session(&self) -> &SessionContext {
        &self.base
    }

    /// Allocate a query id and register its control handle (a session
    /// clone with a fresh cancel flag). Done *before* the `ACK` is
    /// written, so a `CANCEL <id>` racing the query's own execution
    /// always finds the handle.
    pub fn register_query(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let session = self.base.with_shared_catalog(self.config.session.clone());
        self.running
            .lock()
            .expect("running lock poisoned")
            .insert(id, session);
        id
    }

    /// Execute a registered query end-to-end: result cache → admission
    /// → plan cache → engine. Always deregisters the id and updates the
    /// counters, success or not.
    pub fn run_query(&self, id: u64, sql: &str) -> Result<QueryReply> {
        let outcome = self.execute(id, sql);
        self.running
            .lock()
            .expect("running lock poisoned")
            .remove(&id);
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        match &outcome {
            // A client-requested cancel is not a failure: counting it in
            // `errors` would inflate the server's error rate.
            Err(e) if e.is_cancelled() => {
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {}
        }
        outcome
    }

    fn execute(&self, id: u64, sql: &str) -> Result<QueryReply> {
        let session = self
            .running
            .lock()
            .expect("running lock poisoned")
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::internal(format!("query {id} is not registered")))?;
        let normalized = normalize_sql(sql);
        let version = session.catalog_version();
        let key = (normalized, version);

        // A cancel delivered between ACK and here must win over a cache
        // hit — the client asked for the query not to run.
        if session.is_cancelled() {
            return Err(Error::Cancelled);
        }

        if let Some(rows) = self.result_cache.lock().expect("cache lock").get(&key) {
            self.counters.result_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(QueryReply {
                rows,
                plan: CacheOutcome::Skip,
                result: CacheOutcome::Hit,
            });
        }
        self.counters.result_misses.fetch_add(1, Ordering::Relaxed);

        let _permit = self.admission.acquire(|| session.is_cancelled())?;

        let (plan, plan_outcome) = {
            let cached = self.plan_cache.lock().expect("cache lock").get(&key);
            match cached {
                Some(plan) => {
                    self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                    (plan, CacheOutcome::Hit)
                }
                None => {
                    self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
                    let frame = session.sql(sql)?;
                    let plan = Arc::new(frame.logical_plan().clone());
                    // Re-check the version: a mutation may have landed
                    // while we parsed. Only cache a plan analyzed
                    // against the catalog state the key names.
                    if session.catalog_version() == version {
                        self.plan_cache
                            .lock()
                            .expect("cache lock")
                            .insert(key.clone(), Arc::clone(&plan));
                    }
                    (plan, CacheOutcome::Miss)
                }
            }
        };

        let result = session.execute_plan(&plan)?;
        let rows = Arc::new(render_rows(&result));

        // Cache the rendered body only if no mutation raced the
        // execution — otherwise a result computed at version v could be
        // pinned under a key whose version still looks current.
        if session.catalog_version() == version {
            self.result_cache
                .lock()
                .expect("cache lock")
                .insert(key.clone(), Arc::clone(&rows));
            if self.config.maintained_views {
                self.maybe_install_view(&session, &key.0, &plan, &rows, version);
            }
        }
        Ok(QueryReply {
            rows,
            plan: plan_outcome,
            result: CacheOutcome::Miss,
        })
    }

    /// Deliver a cancel to a queued or running query. Returns whether
    /// the id was live (false: already finished or never existed).
    pub fn cancel_query(&self, id: u64) -> bool {
        let running = self.running.lock().expect("running lock poisoned");
        match running.get(&id) {
            Some(session) => {
                session.cancel();
                true
            }
            None => false,
        }
    }

    /// Append literal rows to a table (parsed against its schema),
    /// bumping the catalog version, applying deltas to maintained
    /// views, and retiring stale cache entries.
    pub fn insert(&self, table: &str, literal_rows: &[Vec<String>]) -> Result<usize> {
        let _guard = self.mutation.lock().expect("mutation lock poisoned");
        let schema = self.base.table(table)?.schema()?;
        let rows = parse_literal_rows(table, &schema, literal_rows)?;
        let pre = self.base.catalog_version();
        let count = self.base.insert_rows(table, rows.clone())?;
        self.after_mutation(table, pre, ViewChange::Insert(&rows));
        self.trim_caches();
        Ok(count)
    }

    /// `DELETE FROM table [WHERE predicate]`: parse the predicate text
    /// as a SQL expression, remove the matching rows (all rows when
    /// `None`), apply deltas to maintained views, and retire stale cache
    /// entries. Returns the number of removed rows.
    pub fn delete(&self, table: &str, predicate: Option<&str>) -> Result<usize> {
        let _guard = self.mutation.lock().expect("mutation lock poisoned");
        let predicate = predicate
            .map(sparkline_parser::parse_expression)
            .transpose()?;
        let pre = self.base.catalog_version();
        let positions = self.base.delete_where(table, predicate.as_ref())?;
        self.after_mutation(table, pre, ViewChange::Delete(&positions));
        self.trim_caches();
        Ok(positions.len())
    }

    /// Drop a table, dropping its maintained views and retiring stale
    /// cache entries.
    pub fn drop_table(&self, name: &str) -> bool {
        let _guard = self.mutation.lock().expect("mutation lock poisoned");
        let pre = self.base.catalog_version();
        let existed = self.base.deregister_table(name);
        if existed {
            self.after_mutation(name, pre, ViewChange::Drop);
            self.trim_caches();
        }
        existed
    }

    /// Number of live maintained views (test/bench observability).
    pub fn view_count(&self) -> usize {
        self.views.lock().expect("views lock poisoned").len()
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        self.base.table_names()
    }

    /// Try to install a maintained view for a query that just missed the
    /// result cache. Only maintainable plans qualify (see
    /// [`match_maintainable`]); the install is self-validating — the
    /// skyband's own rendering must be byte-identical to the engine's
    /// `rows` — and is skipped entirely if any mutation raced the
    /// snapshot (the view would start from inconsistent state).
    fn maybe_install_view(
        &self,
        session: &SessionContext,
        normalized: &str,
        plan: &LogicalPlan,
        rows: &Arc<Vec<String>>,
        version: u64,
    ) {
        let Some((table, projection, spec)) = match_maintainable(plan) else {
            return;
        };
        let mut views = self.views.lock().expect("views lock poisoned");
        if let Some(existing) = views.get(normalized) {
            if existing.version == version {
                return; // Fresh view already installed.
            }
        } else if views.len() >= MAX_VIEWS {
            return;
        }
        let Some(base_rows) = session.table_rows_snapshot(&table) else {
            return; // Disk-resident or concurrently dropped.
        };
        // Monotone versions: if the version still reads `version` after
        // the snapshot, the snapshot is exactly the state the executed
        // query (and its cached rendering) saw.
        if session.catalog_version() != version {
            return;
        }
        let projected: Vec<Row> = base_rows
            .iter()
            .map(|r| Row::new(projection.iter().map(|&i| r.values()[i].clone()).collect()))
            .collect();
        let Ok(skyband) = MaintainedSkyline::new(spec, VIEW_SKYBAND_K, &projected) else {
            return;
        };
        if render_plain_rows(&skyband.skyline_rows()) != **rows {
            // The engine's output order (or content, under a config this
            // layer doesn't model) differs from the maintained order —
            // serving from this view could change bytes, so don't.
            return;
        }
        views.insert(
            normalized.to_string(),
            MaintainedView {
                table,
                projection,
                skyband,
                version,
            },
        );
    }

    /// Advance maintained views past a service mutation on `table` whose
    /// pre-mutation catalog version was `pre`. Views whose version is
    /// not `pre` mirror a catalog that was mutated behind the service's
    /// back — dropped, not delta-patched. Views on the mutated table
    /// absorb the change through their skyband; every surviving view
    /// then re-renders its (possibly unchanged) skyline into the result
    /// cache under the new version, which is what keeps post-mutation
    /// queries on the cache-hit path.
    fn after_mutation(&self, table: &str, pre: u64, change: ViewChange<'_>) {
        if !self.config.maintained_views {
            return;
        }
        let post = self.base.catalog_version();
        let mut views = self.views.lock().expect("views lock poisoned");
        views.retain(|_, v| v.version == pre);
        if post == pre {
            return; // Mutation was a no-op (e.g. DELETE matched nothing).
        }
        let table_key = table.to_ascii_lowercase();
        let mut dead = Vec::new();
        for (sql, view) in views.iter_mut() {
            if view.table == table_key {
                let applied = match &change {
                    ViewChange::Insert(rows) => {
                        for row in rows.iter() {
                            let projected = Row::new(
                                view.projection
                                    .iter()
                                    .map(|&i| row.values()[i].clone())
                                    .collect(),
                            );
                            view.skyband.apply_insert(projected);
                        }
                        true
                    }
                    ViewChange::Delete(positions) => positions
                        .iter()
                        .rev()
                        .all(|&p| view.skyband.apply_delete(p).is_ok()),
                    ViewChange::Drop => false,
                };
                if !applied {
                    dead.push(sql.clone());
                    continue;
                }
            }
            view.version = post;
            self.result_cache.lock().expect("cache lock").insert(
                (sql.clone(), post),
                Arc::new(render_plain_rows(&view.skyband.skyline_rows())),
            );
        }
        for sql in dead {
            views.remove(&sql);
        }
    }

    /// Proactively drop cache entries from retired catalog versions.
    /// Correctness never depends on this — stale keys are unreachable
    /// by construction — it only frees their memory early.
    fn trim_caches(&self) {
        let version = self.base.catalog_version();
        self.plan_cache
            .lock()
            .expect("cache lock")
            .retain_version(version);
        self.result_cache
            .lock()
            .expect("cache lock")
            .retain_version(version);
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            plan_hits: self.counters.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.counters.plan_misses.load(Ordering::Relaxed),
            result_hits: self.counters.result_hits.load(Ordering::Relaxed),
            result_misses: self.counters.result_misses.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            active: self.running.lock().expect("running lock poisoned").len() as u64,
        }
    }

    /// The stats as the `OK stats ...` wire line payload.
    pub fn stats_line(&self) -> String {
        let s = self.stats();
        format!(
            "queries={} plan_hits={} plan_misses={} result_hits={} result_misses={} \
             errors={} cancelled={} active={}",
            s.queries,
            s.plan_hits,
            s.plan_misses,
            s.result_hits,
            s.result_misses,
            s.errors,
            s.cancelled,
            s.active
        )
    }
}

/// Decide whether an analyzed plan is maintainable, returning the
/// scanned table (lower-cased), the projection's column indices, and
/// the resolved skyline spec over the projected row.
///
/// Maintainable means exactly: `Skyline` (non-DISTINCT) over a
/// projection of plain columns over a single table scan, with every
/// dimension a plain column that is either covered by the `COMPLETE`
/// assertion or non-nullable by schema — the shape for which the
/// k-skyband's complete-relation dominance matches the engine's. Any
/// other plan (joins, filters, aggregates, expressions, DISTINCT,
/// potentially incomplete dimensions) is left to ordinary
/// recompute-on-mutation caching.
fn match_maintainable(plan: &LogicalPlan) -> Option<(String, Vec<usize>, SkylineSpec)> {
    let LogicalPlan::Skyline {
        distinct: false,
        complete,
        dims,
        input,
    } = plan
    else {
        return None;
    };
    let LogicalPlan::Projection { exprs, input: scan } = input.as_ref() else {
        return None;
    };
    let LogicalPlan::TableScan { name, .. } = scan.as_ref() else {
        return None;
    };
    let mut projection = Vec::with_capacity(exprs.len());
    for expr in exprs {
        let Expr::BoundColumn(c) = expr else {
            return None;
        };
        projection.push(c.index);
    }
    let mut spec_dims = Vec::with_capacity(dims.len());
    for dim in dims {
        // The dimension is bound against the skyline's input — the
        // projection output — so its index addresses the projected row.
        let Expr::BoundColumn(c) = &dim.child else {
            return None;
        };
        if !*complete && c.field.nullable() {
            return None;
        }
        if c.index >= projection.len() {
            return None;
        }
        spec_dims.push(SkylineDim::new(c.index, dim.ty));
    }
    Some((
        name.to_ascii_lowercase(),
        projection,
        SkylineSpec {
            dims: spec_dims,
            distinct: false,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline::{DataType, Field, Row, Schema, Value};

    fn service() -> Arc<QueryService> {
        let svc = QueryService::new(ServerConfig::default());
        svc.session()
            .register_table(
                "hotels",
                Schema::new(vec![
                    Field::new("price", DataType::Int64, false),
                    Field::new("rating", DataType::Int64, false),
                ]),
                vec![
                    Row::new(vec![Value::Int64(50), Value::Int64(7)]),
                    Row::new(vec![Value::Int64(80), Value::Int64(9)]),
                    Row::new(vec![Value::Int64(90), Value::Int64(6)]),
                ],
            )
            .unwrap();
        svc
    }

    const SKY: &str = "SELECT price, rating FROM hotels SKYLINE OF price MIN, rating MAX";

    #[test]
    fn caches_progress_from_cold_to_hot() {
        let svc = service();
        let id = svc.register_query();
        let cold = svc.run_query(id, SKY).unwrap();
        assert_eq!(cold.plan, CacheOutcome::Miss);
        assert_eq!(cold.result, CacheOutcome::Miss);
        assert_eq!(cold.rows.len(), 2);

        let id = svc.register_query();
        let hot = svc.run_query(id, SKY).unwrap();
        assert_eq!(hot.plan, CacheOutcome::Skip);
        assert_eq!(hot.result, CacheOutcome::Hit);
        assert_eq!(hot.rows, cold.rows, "cached body must be byte-identical");

        // A different spelling of the same query shares the entry.
        let id = svc.register_query();
        let respelled = svc
            .run_query(
                id,
                "select  price,  rating from HOTELS skyline of price min, rating max",
            )
            .unwrap();
        assert_eq!(respelled.result, CacheOutcome::Hit);

        let stats = svc.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.result_hits, 2);
        assert_eq!(stats.result_misses, 1);
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn plan_cache_hit_without_result_hit_after_eviction() {
        let config = ServerConfig {
            result_cache_capacity: 0, // disable result caching
            ..ServerConfig::default()
        };
        let svc = QueryService::with_session(service().session().clone(), config);
        let id = svc.register_query();
        svc.run_query(id, SKY).unwrap();
        let id = svc.register_query();
        let second = svc.run_query(id, SKY).unwrap();
        assert_eq!(second.plan, CacheOutcome::Hit);
        assert_eq!(second.result, CacheOutcome::Miss);
    }

    #[test]
    fn mutations_never_serve_stale_bytes() {
        let svc = service();
        let id = svc.register_query();
        let before = svc.run_query(id, SKY).unwrap();
        assert_eq!(before.rows.len(), 2);
        assert_eq!(svc.view_count(), 1, "skyline query should install a view");

        // (60, 8) joins the Pareto front (incomparable with both current
        // members); the cached body must not survive the insert. With
        // maintained views the entry is *refreshed* by delta — a hit
        // with fresh bytes — instead of discarded.
        svc.insert("hotels", &[vec!["60".into(), "8".into()]])
            .unwrap();
        let id = svc.register_query();
        let after = svc.run_query(id, SKY).unwrap();
        assert_eq!(after.result, CacheOutcome::Hit, "view should refresh");
        assert_eq!(after.rows.len(), 3);

        // Dropping the table invalidates again: the query now errors.
        assert!(svc.drop_table("hotels"));
        assert_eq!(svc.view_count(), 0, "drop must discard the view");
        let id = svc.register_query();
        assert!(svc.run_query(id, SKY).is_err());
    }

    #[test]
    fn mutations_invalidate_the_result_cache_without_views() {
        let config = ServerConfig {
            maintained_views: false,
            ..ServerConfig::default()
        };
        let svc = QueryService::with_session(service().session().clone(), config);
        let id = svc.register_query();
        let before = svc.run_query(id, SKY).unwrap();
        assert_eq!(before.rows.len(), 2);
        assert_eq!(svc.view_count(), 0);

        svc.insert("hotels", &[vec!["60".into(), "8".into()]])
            .unwrap();
        let id = svc.register_query();
        let after = svc.run_query(id, SKY).unwrap();
        assert_eq!(after.result, CacheOutcome::Miss, "stale hit after insert");
        assert_eq!(after.rows.len(), 3);
    }

    #[test]
    fn delete_refreshes_maintained_views() {
        let svc = service();
        let id = svc.register_query();
        let before = svc.run_query(id, SKY).unwrap();
        assert_eq!(before.rows.len(), 2);

        // Delete the cheap front member (50, 7). (90, 6) stays dominated
        // by (80, 9), so the new front is (80, 9) alone.
        let removed = svc.delete("hotels", Some("price = 50")).unwrap();
        assert_eq!(removed, 1);
        let id = svc.register_query();
        let after = svc.run_query(id, SKY).unwrap();
        assert_eq!(after.result, CacheOutcome::Hit, "view should refresh");
        assert_eq!(after.rows, Arc::new(vec!["80\t9".to_string()]));

        // A delete matching nothing keeps version and caches untouched.
        assert_eq!(svc.delete("hotels", Some("price = 9999")).unwrap(), 0);
        let id = svc.register_query();
        let again = svc.run_query(id, SKY).unwrap();
        assert_eq!(again.result, CacheOutcome::Hit);
    }

    #[test]
    fn cancel_before_execution_wins_over_the_cache() {
        let svc = service();
        let id = svc.register_query();
        svc.run_query(id, SKY).unwrap(); // populate the cache
        let id = svc.register_query();
        assert!(svc.cancel_query(id));
        let err = svc.run_query(id, SKY).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        assert!(!svc.cancel_query(id), "finished id no longer cancellable");
    }

    #[test]
    fn errors_are_counted_and_deregistered() {
        let svc = service();
        let id = svc.register_query();
        assert!(svc.run_query(id, "SELECT nope FROM missing").is_err());
        let stats = svc.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.active, 0);
    }
}
