//! A small bounded cache keyed on `(normalized SQL, catalog version)`,
//! shared by the plan cache and the result cache.
//!
//! Eviction is FIFO by insertion order — simple, allocation-light, and
//! good enough here because version bumps already retire whole key
//! generations at once (see [`BoundedCache::retain_version`]); an LRU
//! would only matter under a working set larger than the capacity at a
//! *single* catalog version.

use std::collections::{HashMap, VecDeque};

/// Cache key: normalized SQL text + the catalog version it was
/// observed at. Any catalog mutation bumps the version, so stale
/// entries become unreachable rather than wrong.
pub type CacheKey = (String, u64);

/// Bounded FIFO-evicting map.
#[derive(Debug)]
pub struct BoundedCache<V> {
    capacity: usize,
    map: HashMap<CacheKey, V>,
    order: VecDeque<CacheKey>,
}

impl<V: Clone> BoundedCache<V> {
    /// Cache holding at most `capacity` entries (capacity 0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        BoundedCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Clone out the value under `key`, if present.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        self.map.get(key).cloned()
    }

    /// Insert `value` under `key`, evicting the oldest entry when full.
    pub fn insert(&mut self, key: CacheKey, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_some() {
            return; // replaced in place; insertion order unchanged
        }
        self.order.push_back(key);
        while self.map.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
        }
    }

    /// Drop every entry keyed at a version other than `version` — the
    /// proactive half of invalidation, run after catalog mutations so
    /// retired generations free their memory immediately instead of
    /// waiting to age out.
    pub fn retain_version(&mut self, version: u64) {
        self.map.retain(|(_, v), _| *v == version);
        self.order.retain(|(_, v)| *v == version);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str, v: u64) -> CacheKey {
        (s.to_string(), v)
    }

    #[test]
    fn fifo_eviction_bounds_the_size() {
        let mut c = BoundedCache::new(2);
        c.insert(key("a", 1), 1);
        c.insert(key("b", 1), 2);
        c.insert(key("c", 1), 3);
        assert_eq!(c.len(), 2);
        assert!(c.get(&key("a", 1)).is_none(), "oldest entry evicted");
        assert_eq!(c.get(&key("c", 1)), Some(3));
    }

    #[test]
    fn replacement_keeps_one_entry() {
        let mut c = BoundedCache::new(2);
        c.insert(key("a", 1), 1);
        c.insert(key("a", 1), 9);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key("a", 1)), Some(9));
    }

    #[test]
    fn retain_version_clears_stale_generations() {
        let mut c = BoundedCache::new(8);
        c.insert(key("a", 1), 1);
        c.insert(key("b", 1), 2);
        c.insert(key("a", 2), 3);
        c.retain_version(2);
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("a", 1)).is_none());
        assert_eq!(c.get(&key("a", 2)), Some(3));
        // Eviction bookkeeping survives the purge.
        c.insert(key("c", 2), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = BoundedCache::new(0);
        c.insert(key("a", 1), 1);
        assert!(c.get(&key("a", 1)).is_none());
        assert!(c.is_empty());
    }
}
